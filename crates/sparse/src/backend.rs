//! The `KernelBackend` seam: every matvec in the workspace flows through
//! this trait, so swapping kernel families (generic CSR, structure
//! specialized, a future SoA-walk or GPU backend) is a construction-time
//! choice instead of a call-site rewrite.
//!
//! Two implementations ship today:
//! - every [`Csr`] *is* a backend (the extracted generic path — literally
//!   [`Csr::spmv_auto`]/[`Csr::spmm_auto`], bit-identical to the
//!   pre-seam call sites at any thread count);
//! - [`SpecializedBackend`] runs [`crate::structure::detect_structure`]
//!   once at construction and dispatches every subsequent apply to a
//!   banded, stencil, or generic kernel, reusing one cached nnz-balanced
//!   row partition for the parallel arm (the PR-4 cached-partition slot,
//!   now also caching the detected form).
//!
//! ## Bit-reproducibility contract
//!
//! All kernels here perform, per output element, exactly the operations of
//! [`Csr::spmv`]'s row kernel in exactly its order (4 lane accumulators
//! combined `(a0+a1)+(a2+a3)`, then the in-order remainder) — only the
//! *addressing* of `x` changes (streamed column indices, a contiguous band
//! window, or a tiny offset table). Specialized results are therefore
//! bit-identical to the generic path on any accepted matrix, serial or
//! parallel, at every thread count.

use crate::csr::{partition_covers, Csr};
use crate::scalar::Scalar;
use crate::structure::{detect_structure, Structure};
use rayon::prelude::*;
use std::ops::Range;
use std::sync::{Arc, RwLock};

/// The single seam through which all matvec work flows. `spmv`/`spmm` are
/// auto-dispatching (serial vs parallel by the shared
/// [`crate::csr::par_threshold`] rule) and bit-identical whichever arm
/// runs, so callers keep full determinism without knowing the kernel
/// family.
pub trait KernelBackend: Sync {
    /// Number of rows of the operator.
    fn nrows(&self) -> usize;
    /// Number of columns of the operator.
    fn ncols(&self) -> usize;
    /// Stored non-zeros (the work measure for dispatch decisions).
    fn nnz(&self) -> usize;
    /// `y ← A·x`, auto-dispatched, bit-identical at every thread count.
    fn spmv(&self, x: &[f64], y: &mut [f64]);
    /// `Y ← A·X` for a row-major `ncols×k` block `X`, auto-dispatched;
    /// column `c` is bit-identical to `spmv` on the extracted column.
    fn spmm(&self, x: &[f64], k: usize, y: &mut [f64]);
    /// Kernel-family label: `"generic-csr"`, `"banded"`, or `"stencil"`.
    fn kernel_name(&self) -> &'static str {
        "generic-csr"
    }
}

/// The extracted generic-CSR backend: the exact `spmv_auto`/`spmm_auto`
/// dispatch every call site used before the seam existed.
impl<T: Scalar> KernelBackend for Csr<T> {
    fn nrows(&self) -> usize {
        Csr::nrows(self)
    }
    fn ncols(&self) -> usize {
        Csr::ncols(self)
    }
    fn nnz(&self) -> usize {
        Csr::nnz(self)
    }
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_auto(x, y);
    }
    fn spmm(&self, x: &[f64], k: usize, y: &mut [f64]) {
        self.spmm_auto(x, k, y);
    }
}

/// `(parts, partition)` cache slot: the row partition last used by the
/// parallel apply path, keyed by the thread count it was built for.
type RangeCache = RwLock<Option<(usize, Arc<Vec<Range<usize>>>)>>;

/// A structure-specialized backend: owns the matrix, the detected
/// [`Structure`], and the cached row partition, and dispatches every apply
/// to the matching kernel family. Built once per session/preconditioner
/// (detection is `O(nnz)` with early bail), applied many times.
#[derive(Debug)]
pub struct SpecializedBackend<T: Scalar = f64> {
    a: Csr<T>,
    structure: Structure,
    /// Lazily computed `(parts, nnz_balanced_row_ranges(parts))` for the
    /// thread count the parallel apply path last ran under — the PR-4
    /// cached-partition slot, hoisted out of `SparsePrecond` so every
    /// backend consumer shares it. Only populated when the parallel arm is
    /// actually taken, rebuilt (not abandoned) on thread-count change; the
    /// partition sits behind an `Arc` so readers detach it and drop the
    /// lock before entering the kernel.
    ranges: RangeCache,
}

impl<T: Scalar> Clone for SpecializedBackend<T> {
    fn clone(&self) -> Self {
        // The detected structure is a property of the matrix — carry it
        // over rather than re-scanning; the partition cache is
        // thread-count-derived state, so let the clone rebuild it lazily.
        Self {
            a: self.a.clone(),
            structure: self.structure.clone(),
            ranges: RwLock::new(None),
        }
    }
}

impl<T: Scalar> SpecializedBackend<T> {
    /// Detect the structure of `a` and build the matching backend.
    pub fn detect(a: Csr<T>) -> Self {
        let structure = detect_structure(&a);
        Self {
            a,
            structure,
            ranges: RwLock::new(None),
        }
    }

    /// Force the generic-CSR kernels regardless of structure (the escape
    /// hatch documented in the README; also the cheap constructor when the
    /// caller knows the operator is unstructured).
    pub fn generic(a: Csr<T>) -> Self {
        Self {
            a,
            structure: Structure::General,
            ranges: RwLock::new(None),
        }
    }

    /// Borrow the underlying matrix.
    pub fn csr(&self) -> &Csr<T> {
        &self.a
    }

    /// Recover the underlying matrix, dropping the detected form.
    pub fn into_csr(self) -> Csr<T> {
        self.a
    }

    /// The detected structure this backend dispatches on.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// Is a specialized (non-generic) kernel family active?
    pub fn is_specialized(&self) -> bool {
        self.structure.is_specialized()
    }

    /// Diagnostics: the thread count the cached partition was built for,
    /// or `None` while the cache is cold (the serial arm never builds it).
    pub fn cached_partition_threads(&self) -> Option<usize> {
        self.ranges
            .read()
            .unwrap()
            .as_ref()
            .map(|(parts, _)| *parts)
    }

    /// Run `f` with the cached row partition for the current thread count,
    /// (re)building the cache on first use or after a thread-count change.
    /// Any in-order disjoint cover yields bit-identical results, so the
    /// cache is a pure perf artifact. No lock is held across the O(nnz)
    /// kernel — readers detach the `Arc` and drop the guard; the rebuild
    /// path runs on a local partition and takes the write lock only for
    /// the O(parts) swap.
    fn with_ranges<R>(&self, f: impl FnOnce(&[Range<usize>]) -> R) -> R {
        let parts = rayon::current_num_threads();
        let cached = {
            let guard = self.ranges.read().unwrap();
            guard.as_ref().and_then(|(cached_parts, ranges)| {
                (*cached_parts == parts).then(|| Arc::clone(ranges))
            })
        };
        if let Some(ranges) = cached {
            return f(&ranges);
        }
        let ranges = self.a.nnz_balanced_row_ranges(parts);
        let out = f(&ranges);
        *self.ranges.write().unwrap() = Some((parts, Arc::new(ranges)));
        out
    }

    /// Take the parallel arm for `work` weighted non-zeros? Mirrors
    /// [`Csr::spmv_par`]'s `parts <= 1` short-circuit *before* touching
    /// the partition cache or the Rayon scheduler: on a single-thread
    /// pool the serial row loop is the same computation without the
    /// per-call dispatch overhead. Bit-identical either way.
    fn par_apply(&self, work: usize) -> bool {
        self.a.par_pays_off(work) && self.a.nrows() >= 2 && rayon::current_num_threads() > 1
    }

    /// Serial apply over a contiguous row range, writing
    /// `y[i - rows.start]`, dispatched on the detected structure. The one
    /// row loop shared by the serial and parallel arms — sharing it is
    /// what makes them bit-identical.
    fn spmv_rows_dispatch(&self, rows: Range<usize>, x: &[f64], y: &mut [f64]) {
        let base = rows.start;
        match &self.structure {
            Structure::Banded { lower, .. } => {
                for i in rows {
                    let vals = self.a.row_values(i);
                    let j0 = i.saturating_sub(*lower);
                    y[i - base] = row_dot_window(vals, &x[j0..j0 + vals.len()]);
                }
            }
            Structure::Stencil(map) => {
                // Batch maximal runs of equal-pattern rows (on structured
                // grids the whole interior is one run), hoisting the offset
                // table — and for common stencil widths, the offsets
                // themselves — out of the row loop.
                let mut i = rows.start;
                while i < rows.end {
                    let pid = map.pattern_id(i);
                    let mut end = i + 1;
                    while end < rows.end && map.pattern_id(end) == pid {
                        end += 1;
                    }
                    let offs = map.offsets_of(pid);
                    spmv_stencil_run(&self.a, x, &mut y[i - base..end - base], i, offs);
                    i = end;
                }
            }
            Structure::General => self.a.spmv_rows(rows, x, y),
        }
    }

    /// Block counterpart of [`SpecializedBackend::spmv_rows_dispatch`].
    fn spmm_rows_dispatch(&self, rows: Range<usize>, x: &[f64], k: usize, y: &mut [f64]) {
        let base = rows.start;
        match &self.structure {
            Structure::Banded { lower, .. } => {
                for i in rows {
                    let vals = self.a.row_values(i);
                    let j0 = i.saturating_sub(*lower);
                    let yrow = &mut y[(i - base) * k..(i - base + 1) * k];
                    // The whole band maps to one contiguous x block
                    // (rows j0..j0+len of the row-major n×k operand).
                    row_block_window(vals, &x[j0 * k..(j0 + vals.len()) * k], k, yrow);
                }
            }
            Structure::Stencil(map) => {
                // Run-batched like the SpMV arm: one offset-table lookup
                // per maximal equal-pattern run, not per row.
                let mut i = rows.start;
                while i < rows.end {
                    let pid = map.pattern_id(i);
                    let mut end = i + 1;
                    while end < rows.end && map.pattern_id(end) == pid {
                        end += 1;
                    }
                    let offs = map.offsets_of(pid);
                    let yrun = &mut y[(i - base) * k..(end - base) * k];
                    spmm_stencil_run(&self.a, x, k, yrun, i, offs);
                    i = end;
                }
            }
            Structure::General => self.a.spmm_rows(rows, x, k, y),
        }
    }

    /// Parallel SpMV over a caller-provided partition (same contract as
    /// [`Csr::spmv_in_ranges`]) through the dispatched row kernel.
    fn spmv_in_ranges_dispatch(&self, ranges: &[Range<usize>], x: &[f64], y: &mut [f64]) {
        assert!(
            partition_covers(ranges, self.a.nrows()),
            "SpecializedBackend: ranges must cover 0..nrows in order"
        );
        let mut tasks: Vec<(Range<usize>, &mut [f64])> = Vec::with_capacity(ranges.len());
        let mut rest = y;
        for r in ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            rest = tail;
            tasks.push((r.clone(), head));
        }
        tasks
            .into_par_iter()
            .for_each(|(r, ys)| self.spmv_rows_dispatch(r, x, ys));
    }

    /// Parallel SpMM over a caller-provided partition.
    fn spmm_in_ranges_dispatch(&self, ranges: &[Range<usize>], x: &[f64], k: usize, y: &mut [f64]) {
        assert!(
            partition_covers(ranges, self.a.nrows()),
            "SpecializedBackend: ranges must cover 0..nrows in order"
        );
        let mut tasks: Vec<(Range<usize>, &mut [f64])> = Vec::with_capacity(ranges.len());
        let mut rest = y;
        for r in ranges {
            let (head, tail) = rest.split_at_mut(r.len() * k);
            rest = tail;
            tasks.push((r.clone(), head));
        }
        tasks
            .into_par_iter()
            .for_each(|(r, ys)| self.spmm_rows_dispatch(r, x, k, ys));
    }
}

impl<T: Scalar> KernelBackend for SpecializedBackend<T> {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }
    fn ncols(&self) -> usize {
        self.a.ncols()
    }
    fn nnz(&self) -> usize {
        self.a.nnz()
    }
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.a.ncols(), "backend spmv: x length mismatch");
        assert_eq!(y.len(), self.a.nrows(), "backend spmv: y length mismatch");
        if self.par_apply(self.a.nnz()) {
            self.with_ranges(|ranges| self.spmv_in_ranges_dispatch(ranges, x, y));
        } else {
            self.spmv_rows_dispatch(0..self.a.nrows(), x, y);
        }
    }
    fn spmm(&self, x: &[f64], k: usize, y: &mut [f64]) {
        assert!(k > 0, "backend spmm: k must be positive");
        assert_eq!(
            x.len(),
            self.a.ncols() * k,
            "backend spmm: x block size mismatch"
        );
        assert_eq!(
            y.len(),
            self.a.nrows() * k,
            "backend spmm: y block size mismatch"
        );
        if self.par_apply(self.a.nnz().saturating_mul(k)) {
            self.with_ranges(|ranges| self.spmm_in_ranges_dispatch(ranges, x, k, y));
        } else {
            self.spmm_rows_dispatch(0..self.a.nrows(), x, k, y);
        }
    }
    fn kernel_name(&self) -> &'static str {
        self.structure.kernel_name()
    }
}

/// Contiguous-window row dot for banded rows: `vals · xw`, where `xw` is
/// the clipped band window `x[j0 .. j0 + vals.len()]`. Exactly
/// [`Csr::spmv`]'s row kernel with the index gather replaced by a second
/// streamed operand — same 4 lane accumulators, same `(a0+a1)+(a2+a3)`
/// combination, same in-order remainder, hence bit-identical. Streaming
/// two contiguous slices is what the compiler can vectorize where the
/// generic gather cannot, and the 8-byte-per-nnz column stream disappears
/// entirely.
#[inline]
fn row_dot_window<T: Scalar>(vals: &[T], xw: &[f64]) -> f64 {
    let split = vals.len() & !3;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (v, xc) in vals[..split]
        .chunks_exact(4)
        .zip(xw[..split].chunks_exact(4))
    {
        a0 += v[0].to_f64() * xc[0];
        a1 += v[1].to_f64() * xc[1];
        a2 += v[2].to_f64() * xc[2];
        a3 += v[3].to_f64() * xc[3];
    }
    let mut s = (a0 + a1) + (a2 + a3);
    for (&v, &xv) in vals[split..].iter().zip(&xw[split..]) {
        s += v.to_f64() * xv;
    }
    s
}

/// SpMV over one run of rows sharing a stencil pattern, `y` pre-positioned
/// (`y[ri] = row r0 + ri`). Common stencil widths (3/5/7/9-point) get a
/// const-width body whose offsets live in registers and whose per-row loop
/// fully unrolls with no bounds checks; other widths fall back to the
/// sliced kernel with the offset table still hoisted out of the row loop.
#[inline]
fn spmv_stencil_run<T: Scalar>(a: &Csr<T>, x: &[f64], y: &mut [f64], r0: usize, offs: &[i64]) {
    match offs.len() {
        3 => spmv_stencil_run_w::<T, 3>(a, x, y, r0, offs),
        5 => spmv_stencil_run_w::<T, 5>(a, x, y, r0, offs),
        7 => spmv_stencil_run_w::<T, 7>(a, x, y, r0, offs),
        9 => spmv_stencil_run_w::<T, 9>(a, x, y, r0, offs),
        _ => {
            for (ri, yv) in y.iter_mut().enumerate() {
                let i = r0 + ri;
                *yv = row_dot_offsets(a.row_values(i), x, i as i64, offs);
            }
        }
    }
}

/// Const-width body of [`spmv_stencil_run`]. The whole run's values are
/// one contiguous `M·run` slice (equal-pattern rows all store `M`
/// entries), and each stencil point `t` becomes one contiguous `x`
/// *stream* — `xs[t][ri]` is `x[(r0 + ri) + offs[t]]` — so the row loop
/// does `M` value loads and `M` stream reads per row with no per-row
/// `indptr` loads and no index arithmetic. Per row it performs exactly
/// [`Csr::spmv`]'s row-kernel operations in its order for a length-`M`
/// row — 4 lane accumulators combined `(a0+a1)+(a2+a3)`, in-order
/// remainder — hence bit-identical to the generic path.
#[inline]
fn spmv_stencil_run_w<T: Scalar, const M: usize>(
    a: &Csr<T>,
    x: &[f64],
    y: &mut [f64],
    r0: usize,
    offs: &[i64],
) {
    let o: &[i64; M] = offs.try_into().expect("run width matches pattern");
    let run = y.len();
    let vals = a.rows_values(r0..r0 + run);
    // Every `i + offs[t]` is in bounds because the offsets came from the
    // run's own columns, so each stream is a valid slice of `x`.
    let mut xs: [&[f64]; M] = [&x[..0]; M];
    for (t, s) in xs.iter_mut().enumerate() {
        let start = (r0 as i64 + o[t]) as usize;
        *s = &x[start..start + run];
    }
    let split = M & !3;
    for (ri, (yv, v)) in y.iter_mut().zip(vals.chunks_exact(M)).enumerate() {
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut t = 0usize;
        while t < split {
            a0 += v[t].to_f64() * xs[t][ri];
            a1 += v[t + 1].to_f64() * xs[t + 1][ri];
            a2 += v[t + 2].to_f64() * xs[t + 2][ri];
            a3 += v[t + 3].to_f64() * xs[t + 3][ri];
            t += 4;
        }
        let mut s = (a0 + a1) + (a2 + a3);
        while t < M {
            s += v[t].to_f64() * xs[t][ri];
            t += 1;
        }
        *yv = s;
    }
}

/// SpMM over one run of rows sharing a stencil pattern (`y` holds the
/// run's block rows). Common widths get the const-`M` streamed body;
/// other widths fall back to the per-row offset-table block kernel.
#[inline]
fn spmm_stencil_run<T: Scalar>(
    a: &Csr<T>,
    x: &[f64],
    k: usize,
    y: &mut [f64],
    r0: usize,
    offs: &[i64],
) {
    match offs.len() {
        3 => spmm_stencil_run_w::<T, 3>(a, x, k, y, r0, offs),
        5 => spmm_stencil_run_w::<T, 5>(a, x, k, y, r0, offs),
        7 => spmm_stencil_run_w::<T, 7>(a, x, k, y, r0, offs),
        9 => spmm_stencil_run_w::<T, 9>(a, x, k, y, r0, offs),
        _ => {
            for (ri, yrow) in y.chunks_exact_mut(k).enumerate() {
                let r = r0 + ri;
                row_block_offsets(a.row_values(r), x, k, r as i64, offs, yrow);
            }
        }
    }
}

/// Const-width body of [`spmm_stencil_run`]: the block counterpart of
/// [`spmv_stencil_run_w`]. Stream `t` is the row-major block
/// `x[(r0 + offs[t])·k ..][.. run·k]`, so lane `t` of block row `ri`
/// reads the contiguous window `xs[t][ri·k + c ..][.. W]` — no index
/// loads, no per-row `indptr` loads. Columns are tiled 8/4/2/1 exactly
/// like `Csr::spmm_rows`, each tile using [`Csr::spmv`]'s lane
/// association, so every column stays bit-identical to the generic path.
#[inline]
fn spmm_stencil_run_w<T: Scalar, const M: usize>(
    a: &Csr<T>,
    x: &[f64],
    k: usize,
    y: &mut [f64],
    r0: usize,
    offs: &[i64],
) {
    let o: &[i64; M] = offs.try_into().expect("run width matches pattern");
    let run = y.len() / k;
    let vals = a.rows_values(r0..r0 + run);
    let mut xs: [&[f64]; M] = [&x[..0]; M];
    for (t, s) in xs.iter_mut().enumerate() {
        let start = (r0 as i64 + o[t]) as usize * k;
        *s = &x[start..start + run * k];
    }
    for (ri, (yrow, v)) in y.chunks_exact_mut(k).zip(vals.chunks_exact(M)).enumerate() {
        let mut c = 0usize;
        while c + 8 <= k {
            stencil_tile::<T, M, 8>(v, &xs, ri, k, c, &mut yrow[c..c + 8]);
            c += 8;
        }
        while c + 4 <= k {
            stencil_tile::<T, M, 4>(v, &xs, ri, k, c, &mut yrow[c..c + 4]);
            c += 4;
        }
        while c + 2 <= k {
            stencil_tile::<T, M, 2>(v, &xs, ri, k, c, &mut yrow[c..c + 2]);
            c += 2;
        }
        while c < k {
            yrow[c] = stencil_tile_col::<T, M>(v, &xs, ri, k, c);
            c += 1;
        }
    }
}

/// `W`-column tile of one stencil block row read from the per-offset
/// streams (mirrors `Csr`'s `row_dot_cols` association per column).
#[inline]
fn stencil_tile<T: Scalar, const M: usize, const W: usize>(
    v: &[T],
    xs: &[&[f64]; M],
    ri: usize,
    k: usize,
    c: usize,
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), W);
    let b = ri * k + c;
    let split = M & !3;
    let mut acc = [[0.0f64; W]; 4];
    let mut t = 0usize;
    while t < split {
        for lane in 0..4 {
            let xr = &xs[t + lane][b..b + W];
            let vl = v[t + lane].to_f64();
            for w in 0..W {
                acc[lane][w] += vl * xr[w];
            }
        }
        t += 4;
    }
    for (w, o) in out.iter_mut().enumerate() {
        let mut s = (acc[0][w] + acc[1][w]) + (acc[2][w] + acc[3][w]);
        let mut t = split;
        while t < M {
            s += v[t].to_f64() * xs[t][b + w];
            t += 1;
        }
        *o = s;
    }
}

/// Strided single-column counterpart of [`stencil_tile`] (mirrors `Csr`'s
/// `row_dot_col` operation-for-operation).
#[inline]
fn stencil_tile_col<T: Scalar, const M: usize>(
    v: &[T],
    xs: &[&[f64]; M],
    ri: usize,
    k: usize,
    c: usize,
) -> f64 {
    let b = ri * k + c;
    let split = M & !3;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut t = 0usize;
    while t < split {
        a0 += v[t].to_f64() * xs[t][b];
        a1 += v[t + 1].to_f64() * xs[t + 1][b];
        a2 += v[t + 2].to_f64() * xs[t + 2][b];
        a3 += v[t + 3].to_f64() * xs[t + 3][b];
        t += 4;
    }
    let mut s = (a0 + a1) + (a2 + a3);
    while t < M {
        s += v[t].to_f64() * xs[t][b];
        t += 1;
    }
    s
}

/// Offset-table row dot for stencil rows: exactly the generic row kernel
/// with the streamed 8-byte-per-nnz column indices replaced by the
/// L1-resident pattern offsets (`x[i + offs[t]]`). `offs.len()` always
/// equals `vals.len()` (detection guarantees it), and every `i + offs[t]`
/// is in bounds because the offsets came from this row's own columns.
#[inline]
fn row_dot_offsets<T: Scalar>(vals: &[T], x: &[f64], i: i64, offs: &[i64]) -> f64 {
    let split = vals.len() & !3;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (v, o) in vals[..split]
        .chunks_exact(4)
        .zip(offs[..split].chunks_exact(4))
    {
        a0 += v[0].to_f64() * x[(i + o[0]) as usize];
        a1 += v[1].to_f64() * x[(i + o[1]) as usize];
        a2 += v[2].to_f64() * x[(i + o[2]) as usize];
        a3 += v[3].to_f64() * x[(i + o[3]) as usize];
    }
    let mut s = (a0 + a1) + (a2 + a3);
    for (&v, &o) in vals[split..].iter().zip(&offs[split..]) {
        s += v.to_f64() * x[(i + o) as usize];
    }
    s
}

/// `W`-column block kernel over a contiguous band window: `xw` is the
/// row-major block `x[j0·k .. (j0 + vals.len())·k]`, so lane `t + lane`
/// reads `xw[(t+lane)·k + c ..][..W]` — no index loads at all. Mirrors
/// `Csr`'s `row_dot_cols` association per column exactly.
#[inline]
fn row_dot_cols_window<T: Scalar, const W: usize>(
    vals: &[T],
    xw: &[f64],
    k: usize,
    c: usize,
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), W);
    let split = vals.len() & !3;
    // acc[lane][col]: lane = position within the 4-wide nnz chunk.
    let mut acc = [[0.0f64; W]; 4];
    for (tc, v) in vals[..split].chunks_exact(4).enumerate() {
        let t = tc * 4;
        for lane in 0..4 {
            let base = (t + lane) * k + c;
            let xr = &xw[base..base + W];
            let vl = v[lane].to_f64();
            for w in 0..W {
                acc[lane][w] += vl * xr[w];
            }
        }
    }
    for (w, o) in out.iter_mut().enumerate() {
        let mut s = (acc[0][w] + acc[1][w]) + (acc[2][w] + acc[3][w]);
        for (r, &v) in (split..vals.len()).zip(&vals[split..]) {
            s += v.to_f64() * xw[r * k + c + w];
        }
        *o = s;
    }
}

/// Strided single-column counterpart of [`row_dot_cols_window`] (mirrors
/// `Csr`'s `row_dot_col` operation-for-operation).
#[inline]
fn row_dot_col_window<T: Scalar>(vals: &[T], xw: &[f64], k: usize, c: usize) -> f64 {
    let split = vals.len() & !3;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (tc, v) in vals[..split].chunks_exact(4).enumerate() {
        let t = tc * 4;
        a0 += v[0].to_f64() * xw[t * k + c];
        a1 += v[1].to_f64() * xw[(t + 1) * k + c];
        a2 += v[2].to_f64() * xw[(t + 2) * k + c];
        a3 += v[3].to_f64() * xw[(t + 3) * k + c];
    }
    let mut s = (a0 + a1) + (a2 + a3);
    for (t, &v) in (split..vals.len()).zip(&vals[split..]) {
        s += v.to_f64() * xw[t * k + c];
    }
    s
}

/// `W`-column block kernel with offset addressing (the stencil SpMM form
/// of `Csr`'s `row_dot_cols`).
#[inline]
fn row_dot_cols_offsets<T: Scalar, const W: usize>(
    vals: &[T],
    x: &[f64],
    k: usize,
    c: usize,
    i: i64,
    offs: &[i64],
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), W);
    let split = vals.len() & !3;
    let mut acc = [[0.0f64; W]; 4];
    for (v, o) in vals[..split]
        .chunks_exact(4)
        .zip(offs[..split].chunks_exact(4))
    {
        for lane in 0..4 {
            let j = (i + o[lane]) as usize;
            let xr = &x[j * k + c..j * k + c + W];
            let vl = v[lane].to_f64();
            for w in 0..W {
                acc[lane][w] += vl * xr[w];
            }
        }
    }
    for (w, o) in out.iter_mut().enumerate() {
        let mut s = (acc[0][w] + acc[1][w]) + (acc[2][w] + acc[3][w]);
        for (&v, &d) in vals[split..].iter().zip(&offs[split..]) {
            s += v.to_f64() * x[(i + d) as usize * k + c + w];
        }
        *o = s;
    }
}

/// Strided single-column counterpart of [`row_dot_cols_offsets`].
#[inline]
fn row_dot_col_offsets<T: Scalar>(
    vals: &[T],
    x: &[f64],
    k: usize,
    c: usize,
    i: i64,
    offs: &[i64],
) -> f64 {
    let split = vals.len() & !3;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (v, o) in vals[..split]
        .chunks_exact(4)
        .zip(offs[..split].chunks_exact(4))
    {
        a0 += v[0].to_f64() * x[(i + o[0]) as usize * k + c];
        a1 += v[1].to_f64() * x[(i + o[1]) as usize * k + c];
        a2 += v[2].to_f64() * x[(i + o[2]) as usize * k + c];
        a3 += v[3].to_f64() * x[(i + o[3]) as usize * k + c];
    }
    let mut s = (a0 + a1) + (a2 + a3);
    for (&v, &o) in vals[split..].iter().zip(&offs[split..]) {
        s += v.to_f64() * x[(i + o) as usize * k + c];
    }
    s
}

/// One banded output block row, with the same 8/4/2/1 column tiling as
/// `Csr::spmm_rows` — keeping every column bit-identical to the generic
/// block path.
#[inline]
fn row_block_window<T: Scalar>(vals: &[T], xw: &[f64], k: usize, yrow: &mut [f64]) {
    let mut c = 0usize;
    while c + 8 <= k {
        row_dot_cols_window::<T, 8>(vals, xw, k, c, &mut yrow[c..c + 8]);
        c += 8;
    }
    while c + 4 <= k {
        row_dot_cols_window::<T, 4>(vals, xw, k, c, &mut yrow[c..c + 4]);
        c += 4;
    }
    while c + 2 <= k {
        row_dot_cols_window::<T, 2>(vals, xw, k, c, &mut yrow[c..c + 2]);
        c += 2;
    }
    while c < k {
        yrow[c] = row_dot_col_window(vals, xw, k, c);
        c += 1;
    }
}

/// One stencil output block row, 8/4/2/1-tiled like `Csr::spmm_rows`.
#[inline]
fn row_block_offsets<T: Scalar>(
    vals: &[T],
    x: &[f64],
    k: usize,
    i: i64,
    offs: &[i64],
    yrow: &mut [f64],
) {
    let mut c = 0usize;
    while c + 8 <= k {
        row_dot_cols_offsets::<T, 8>(vals, x, k, c, i, offs, &mut yrow[c..c + 8]);
        c += 8;
    }
    while c + 4 <= k {
        row_dot_cols_offsets::<T, 4>(vals, x, k, c, i, offs, &mut yrow[c..c + 4]);
        c += 4;
    }
    while c + 2 <= k {
        row_dot_cols_offsets::<T, 2>(vals, x, k, c, i, offs, &mut yrow[c..c + 2]);
        c += 2;
    }
    while c < k {
        yrow[c] = row_dot_col_offsets(vals, x, k, c, i, offs);
        c += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn band(n: usize, lower: usize, upper: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            let first = i.saturating_sub(lower);
            let last = (i + upper).min(n - 1);
            for j in first..=last {
                coo.push(i, j, (1 + (i * 13 + j * 7) % 11) as f64 * 0.3 - 1.1);
            }
        }
        coo.to_csr()
    }

    fn spread(n: usize, s: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.5 + (i % 7) as f64 * 0.1);
            if i >= s {
                coo.push(i, i - s, -1.0);
            }
            if i + s < n {
                coo.push(i, i + s, -0.5);
            }
        }
        coo.to_csr()
    }

    fn x_of(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.37).sin() + 0.1).collect()
    }

    #[test]
    fn banded_backend_bit_identical_to_generic_serial() {
        for (lower, upper) in [(1usize, 1usize), (0, 3), (4, 2)] {
            let a = band(97, lower, upper);
            let b = SpecializedBackend::detect(a.clone());
            assert_eq!(b.kernel_name(), "banded");
            let x = x_of(97);
            let want = a.spmv_alloc(&x);
            let mut got = vec![0.0; 97];
            b.spmv(&x, &mut got);
            assert_eq!(got, want, "band ({lower},{upper})");
        }
    }

    #[test]
    fn stencil_backend_bit_identical_to_generic_serial() {
        let a = spread(131, 6);
        let b = SpecializedBackend::detect(a.clone());
        assert_eq!(b.kernel_name(), "stencil");
        let x = x_of(131);
        let want = a.spmv_alloc(&x);
        let mut got = vec![0.0; 131];
        b.spmv(&x, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn spmm_bit_identical_for_every_tile_width() {
        // k chosen to cover the 8-, 4-, 2-wide tiles and the scalar
        // remainder column.
        let a = band(60, 2, 2);
        let s = spread(60, 4);
        for k in [1usize, 2, 3, 4, 5, 7, 8, 9, 11, 16] {
            for (m, label) in [(&a, "banded"), (&s, "stencil")] {
                let b = SpecializedBackend::detect((*m).clone());
                assert_eq!(b.kernel_name(), label);
                let xb: Vec<f64> = (0..60 * k).map(|t| (t as f64 * 0.013).cos()).collect();
                let mut want = vec![0.0; 60 * k];
                m.spmm(&xb, k, &mut want);
                let mut got = vec![0.0; 60 * k];
                b.spmm(&xb, k, &mut got);
                assert_eq!(got, want, "{label} k={k}");
            }
        }
    }

    #[test]
    fn general_backend_delegates_to_csr_kernels() {
        let mut coo = Coo::new(50, 50);
        for i in 0..50usize {
            coo.push(i, i, 2.0);
            let j = (i * 17 + 3) % 50;
            if j != i {
                coo.push(i, j, -0.25);
            }
        }
        let a = coo.to_csr();
        let b = SpecializedBackend::detect(a.clone());
        assert_eq!(b.kernel_name(), "generic-csr");
        assert!(!b.is_specialized());
        let x = x_of(50);
        let want = a.spmv_alloc(&x);
        let mut got = vec![0.0; 50];
        b.spmv(&x, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn generic_constructor_forces_generic_on_structured_matrix() {
        let a = band(40, 1, 1);
        let b = SpecializedBackend::generic(a.clone());
        assert_eq!(b.kernel_name(), "generic-csr");
        let x = x_of(40);
        let want = a.spmv_alloc(&x);
        let mut got = vec![0.0; 40];
        b.spmv(&x, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn clone_preserves_structure_without_rescan() {
        let b = SpecializedBackend::detect(band(30, 2, 1));
        let c = b.clone();
        assert_eq!(b.structure(), c.structure());
        assert_eq!(c.cached_partition_threads(), None);
    }

    #[test]
    fn f32_storage_specialized_matches_f32_generic_bitwise() {
        let a32: Csr<f32> = band(80, 3, 3).to_precision();
        let b = SpecializedBackend::detect(a32.clone());
        assert_eq!(b.kernel_name(), "banded");
        let x = x_of(80);
        let want = a32.spmv_alloc(&x);
        let mut got = vec![0.0; 80];
        b.spmv(&x, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn parallel_arm_bit_identical_and_caches_partition() {
        let _guard = crate::csr::THRESHOLD_TEST_LOCK.lock().unwrap();
        crate::csr::set_par_threshold_for_tests(Some(1));
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                crate::csr::set_par_threshold_for_tests(None);
            }
        }
        let _restore = Restore;
        for (m, label) in [
            (band(140, 2, 3), "banded"),
            (spread(140, 5), "stencil"),
            (
                SpecializedBackend::generic(band(140, 1, 1)).into_csr(),
                "any",
            ),
        ] {
            let b = SpecializedBackend::detect(m.clone());
            let x = x_of(140);
            let want = m.spmv_alloc(&x);
            let k = 5usize;
            let xb: Vec<f64> = (0..140 * k).map(|t| (t as f64 * 0.017).sin()).collect();
            let mut wantb = vec![0.0; 140 * k];
            m.spmm(&xb, k, &mut wantb);
            for threads in [2usize, 8] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let mut got = vec![0.0; 140];
                pool.install(|| b.spmv(&x, &mut got));
                assert_eq!(got, want, "{label} spmv threads={threads}");
                assert_eq!(b.cached_partition_threads(), Some(threads));
                let mut gotb = vec![0.0; 140 * k];
                pool.install(|| b.spmm(&xb, k, &mut gotb));
                assert_eq!(gotb, wantb, "{label} spmm threads={threads}");
            }
        }
    }
}
