//! Property-based tests for structure detection and the specialized
//! kernel backend: detection never misclassifies a generated operator,
//! a single perturbed entry demotes a stencil to the generic path, and
//! the specialized SpMV/SpMM kernels are bit-identical to the generic
//! CSR kernels at 1 and 8 threads.

use mcmcmi_sparse::{
    detect_structure, set_par_threshold_for_tests, Coo, Csr, KernelBackend, SpecializedBackend,
    Structure,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Deterministic nonzero value for entry `(i, j)` under `seed`.
fn val(i: usize, j: usize, seed: u64) -> f64 {
    let h = (i as u64)
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add((j as u64).wrapping_mul(0xc2b2ae3d27d4eb4f))
        .wrapping_add(seed);
    // Stays in [1.0, 2.0): never zero, so no entry is dropped in CSR
    // conversion and the generated pattern is exactly the intended one.
    1.5 + ((h % 1000) as f64 - 500.0) / 1000.0
}

/// Full-band matrix: every row stores exactly the clipped
/// `i-lower ..= i+upper` window.
fn band_matrix(n: usize, lower: usize, upper: usize, seed: u64) -> Csr {
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        for j in i.saturating_sub(lower)..=(i + upper).min(n - 1) {
            coo.push(i, j, val(i, j, seed));
        }
    }
    coo.to_csr()
}

/// Stencil matrix: every row stores `i + d` for each offset `d` that
/// lands in bounds (boundary rows hold clipped subsets of the mode).
fn stencil_matrix(n: usize, offsets: &[i64], seed: u64) -> Csr {
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        for &d in offsets {
            let j = i as i64 + d;
            if (0..n as i64).contains(&j) {
                coo.push(i, j as usize, val(i, j as usize, seed));
            }
        }
    }
    coo.to_csr()
}

/// Offsets drawn from −3..=3, always containing 0; the paired flag bits
/// select which non-zero offsets are present.
fn decode_offsets(mask: u8) -> Vec<i64> {
    let mut offs = vec![0i64];
    for (bit, d) in [(0u8, -3i64), (1, -2), (2, -1), (3, 1), (4, 2), (5, 3)] {
        if mask & (1 << bit) != 0 {
            offs.push(d);
        }
    }
    offs.sort_unstable();
    offs
}

/// Ground truth for a stencil offset set: a contiguous run `−a..=b` is a
/// band (detection precedence prefers the banded kernel), anything with
/// gaps is a genuine stencil.
fn contiguous_widths(offs: &[i64]) -> Option<(usize, usize)> {
    let lo = *offs.first().unwrap();
    let hi = *offs.last().unwrap();
    (offs.len() as i64 == hi - lo + 1).then(|| ((-lo) as usize, hi as usize))
}

fn pool(threads: usize) -> &'static rayon::ThreadPool {
    static POOLS: OnceLock<[rayon::ThreadPool; 2]> = OnceLock::new();
    let pools = POOLS.get_or_init(|| {
        [1, 8].map(|t| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .expect("test pool")
        })
    });
    match threads {
        1 => &pools[0],
        8 => &pools[1],
        _ => unreachable!("only 1- and 8-thread pools are built"),
    }
}

/// Restores the default parallel threshold even on panic.
struct RestoreThreshold;
impl Drop for RestoreThreshold {
    fn drop(&mut self) {
        set_par_threshold_for_tests(None);
    }
}

proptest! {
    /// Random full-band matrices always detect as exactly their band.
    #[test]
    fn banded_matrices_detect_their_widths(
        (n, lower, upper, seed) in (8usize..48, 0usize..4, 0usize..4, 0u64..1_000_000)
    ) {
        let a = band_matrix(n, lower, upper, seed);
        match detect_structure(&a) {
            Structure::Banded { lower: l, upper: u } => {
                prop_assert_eq!((l, u), (lower, upper));
            }
            other => {
                return Err(TestCaseError::fail(format!(
                    "band ({lower},{upper}) misclassified as {}", other.kernel_name()
                )));
            }
        }
    }

    /// Random stencil matrices detect as their offset pattern — or, when
    /// the offsets happen to form a contiguous run, as the (preferred)
    /// band with the same coverage. Never as generic.
    #[test]
    fn stencil_matrices_detect_their_offsets(
        (n, mask, seed) in (24usize..64, 0u8..64, 0u64..1_000_000)
    ) {
        let offs = decode_offsets(mask);
        let a = stencil_matrix(n, &offs, seed);
        let detected = detect_structure(&a);
        match contiguous_widths(&offs) {
            Some((lo, up)) => match detected {
                Structure::Banded { lower, upper } => {
                    prop_assert_eq!((lower, upper), (lo, up));
                }
                other => {
                    return Err(TestCaseError::fail(format!(
                        "contiguous offsets {offs:?} misclassified as {}", other.kernel_name()
                    )));
                }
            },
            None => match &detected {
                Structure::Stencil(map) => {
                    prop_assert_eq!(map.mode_offsets(), offs.as_slice());
                    prop_assert!(map.mode_coverage() >= 0.5);
                }
                other => {
                    return Err(TestCaseError::fail(format!(
                        "gapped offsets {offs:?} misclassified as {}", other.kernel_name()
                    )));
                }
            },
        }
    }

    /// One entry outside the stencil's offset pattern demotes the whole
    /// matrix to the generic path — specialization never guesses.
    #[test]
    fn one_perturbed_entry_demotes_to_generic(
        (n, mask, seed) in (24usize..64, 0u8..64, 0u64..1_000_000)
    ) {
        let offs = decode_offsets(mask);
        let clean = stencil_matrix(n, &offs, seed);
        prop_assert!(detect_structure(&clean).is_specialized());
        // Rebuild with a single far coupling at an interior row: offset 5
        // is outside the ±3 menu, so no pattern containing it can be a
        // subset of the mode, and the clipped-band check fails too.
        let mut coo = Coo::new(n, n);
        for (i, j, v) in clean.triplets() {
            coo.push(i, j, v);
        }
        let r = n / 2;
        coo.push(r, r + 5, 1e-9);
        let perturbed = coo.to_csr();
        prop_assert_eq!(detect_structure(&perturbed).kernel_name(), "generic-csr");
    }

    /// The specialized backend's SpMV and SpMM are bit-identical to the
    /// generic CSR kernels — serial and on 1- and 8-thread pools with the
    /// parallel arm forced.
    #[test]
    fn specialized_kernels_bit_identical_to_generic(
        (n, mask, seed) in (24usize..48, 0u8..64, 0u64..1_000_000),
        (lower, upper, use_band) in (0usize..4, 0usize..4, 0u8..2)
    ) {
        let a = if use_band == 1 {
            band_matrix(n, lower, upper, seed)
        } else {
            stencil_matrix(n, &decode_offsets(mask), seed)
        };
        let op = SpecializedBackend::detect(a.clone());
        prop_assert!(op.is_specialized());
        let x: Vec<f64> = (0..n).map(|i| val(i, 7, seed ^ 0xabcd)).collect();
        let mut want = vec![0.0; n];
        a.spmv(&x, &mut want);
        for k in [1usize, 8] {
            let b: Vec<f64> = (0..n * k).map(|i| val(i, 11, seed ^ 0x1234)).collect();
            let mut want_blk = vec![0.0; n * k];
            a.spmm(&b, k, &mut want_blk);
            // Serial dispatch.
            let mut y = vec![0.0; n];
            op.spmv(&x, &mut y);
            prop_assert_eq!(&y, &want);
            let mut yb = vec![0.0; n * k];
            op.spmm(&b, k, &mut yb);
            prop_assert_eq!(&yb, &want_blk);
            // Parallel dispatch under both pools, threshold forced to 1.
            let _restore = RestoreThreshold;
            set_par_threshold_for_tests(Some(1));
            for threads in [1usize, 8] {
                pool(threads).install(|| {
                    let mut y = vec![0.0; n];
                    op.spmv(&x, &mut y);
                    assert_eq!(y, want, "{threads}-thread spmv");
                    let mut yb = vec![0.0; n * k];
                    op.spmm(&b, k, &mut yb);
                    assert_eq!(yb, want_blk, "{threads}-thread spmm k={k}");
                });
            }
        }
    }
}

/// The generic-forced backend and the detected backend agree bitwise even
/// on an operator that detects as specialized (spot check, not a property:
/// one deterministic instance keeps the suite fast).
#[test]
fn forced_generic_agrees_with_detected() {
    let a = stencil_matrix(40, &[-3, 0, 1, 3], 99);
    let det = SpecializedBackend::detect(a.clone());
    let gen = SpecializedBackend::generic(a.clone());
    assert!(det.is_specialized());
    assert_eq!(gen.kernel_name(), "generic-csr");
    let x: Vec<f64> = (0..40).map(|i| val(i, 3, 5)).collect();
    let mut y1 = vec![0.0; 40];
    let mut y2 = vec![0.0; 40];
    det.spmv(&x, &mut y1);
    gen.spmv(&x, &mut y2);
    assert_eq!(y1, y2);
}
