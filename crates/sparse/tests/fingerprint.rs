//! `Csr::fingerprint` contract: a deterministic 64-bit identity over
//! structure + value bits. Equal matrices fingerprint equal (including
//! across serde round trips and thread counts); any single perturbed
//! value or moved index changes the digest.

use mcmcmi_sparse::{Coo, Csr};
use proptest::prelude::*;

/// Deterministic pseudo-random sparse matrix with a guaranteed diagonal.
fn random_csr(n: usize, extra_per_row: usize, seed: u64) -> Csr {
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(i, i, 2.0 + (i as f64 * 0.37 + seed as f64 * 0.11).sin());
        for e in 0..extra_per_row {
            let h = (i as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(e as u64)
                .wrapping_mul(0xc2b2ae3d27d4eb4f)
                .wrapping_add(seed);
            let j = (h % n as u64) as usize;
            if j != i {
                // Duplicate pushes accumulate in COO→CSR; fine for identity
                // testing — the built CSR is still deterministic.
                coo.push(i, j, -0.25 + ((h >> 8) % 100) as f64 * 1e-3);
            }
        }
    }
    coo.to_csr()
}

#[test]
fn equal_matrices_equal_fingerprints() {
    let a = random_csr(40, 3, 7);
    let b = random_csr(40, 3, 7);
    assert_eq!(a, b);
    assert_eq!(a.fingerprint(), b.fingerprint());
    // A clone is trivially byte-equal.
    assert_eq!(a.clone().fingerprint(), a.fingerprint());
}

#[test]
fn fingerprint_survives_serde_round_trip() {
    let a = random_csr(32, 4, 99);
    let json = serde_json::to_string(&a).unwrap();
    let back: Csr = serde_json::from_str(&json).unwrap();
    assert_eq!(back, a);
    assert_eq!(back.fingerprint(), a.fingerprint());
}

#[test]
fn value_perturbation_changes_fingerprint() {
    let a = random_csr(24, 2, 3);
    let mut b = a.clone();
    // Flip the least significant mantissa bit of one stored value: far
    // below any numeric tolerance, still a different operator identity.
    let v = b.row_values_mut(5);
    v[0] = f64::from_bits(v[0].to_bits() ^ 1);
    assert_ne!(a.fingerprint(), b.fingerprint());
}

#[test]
fn structure_perturbation_changes_fingerprint() {
    // Same dimensions, same value multiset, one entry at a moved column.
    let mut coo1 = Coo::new(8, 8);
    let mut coo2 = Coo::new(8, 8);
    for i in 0..8 {
        coo1.push(i, i, 1.0 + i as f64);
        coo2.push(i, i, 1.0 + i as f64);
    }
    coo1.push(2, 4, 0.5);
    coo2.push(2, 5, 0.5);
    assert_ne!(coo1.to_csr().fingerprint(), coo2.to_csr().fingerprint());
}

#[test]
fn negative_zero_and_nan_payloads_are_distinct_identities() {
    let mk = |v: f64| Csr::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![v, 1.0]);
    assert_ne!(mk(0.0).fingerprint(), mk(-0.0).fingerprint());
    let q = f64::from_bits(0x7ff8_0000_0000_0001);
    let r = f64::from_bits(0x7ff8_0000_0000_0002);
    assert_ne!(mk(q).fingerprint(), mk(r).fingerprint());
}

#[test]
fn precision_is_part_of_the_identity() {
    let a = random_csr(16, 2, 1);
    let demoted = a.to_precision::<f32>();
    // Different storage scalar ⇒ different identity even if every value
    // were exactly representable.
    assert_ne!(a.fingerprint(), demoted.fingerprint());
}

#[test]
fn storage_bytes_accounts_all_three_arrays() {
    let a = random_csr(16, 2, 1);
    let expect = (a.indptr().len() + a.nnz()) * std::mem::size_of::<usize>() + a.nnz() * 8;
    assert_eq!(a.storage_bytes(), expect);
    let f32_bytes = a.to_precision::<f32>().storage_bytes();
    assert_eq!(f32_bytes, expect - 4 * a.nnz());
}

proptest! {
    /// Equal matrices ⇒ equal fingerprints, and the digest survives a
    /// JSON round trip bit-for-bit.
    #[test]
    fn fingerprint_is_a_function_of_the_bytes(
        (n, extra, seed) in (4usize..40, 0usize..4, 0u64..1_000_000)
    ) {
        let a = random_csr(n, extra, seed);
        let b = random_csr(n, extra, seed);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        let back: Csr = serde_json::from_str(&serde_json::to_string(&a).unwrap()).unwrap();
        prop_assert_eq!(back.fingerprint(), a.fingerprint());
    }

    /// One perturbed value (ULP flip) or one extra stored entry always
    /// changes the digest.
    #[test]
    fn any_perturbation_changes_the_digest(
        (n, seed, row_pick) in (4usize..32, 0u64..1_000_000, 0usize..32)
    ) {
        let a = random_csr(n, 2, seed);
        let mut b = a.clone();
        let row = row_pick % n;
        let vals = b.row_values_mut(row);
        vals[0] = f64::from_bits(vals[0].to_bits() ^ 1);
        prop_assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
