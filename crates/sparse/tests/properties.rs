//! Property-based tests for the sparse substrate.

use mcmcmi_sparse::{csr_add, Coo, Csc, Csr};
use proptest::prelude::*;

/// Strategy: a random sparse matrix as (nrows, ncols, triplets).
fn arb_matrix() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1usize..20, 1usize..20).prop_flat_map(|(m, n)| {
        let triplet = (0..m, 0..n, -10.0f64..10.0);
        proptest::collection::vec(triplet, 0..60).prop_map(move |ts| (m, n, ts))
    })
}

fn build(m: usize, n: usize, ts: &[(usize, usize, f64)]) -> Csr {
    let mut coo = Coo::new(m, n);
    for &(i, j, v) in ts {
        coo.push(i, j, v);
    }
    coo.to_csr()
}

fn arb_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-5.0f64..5.0, len..=len)
}

proptest! {
    /// CSR invariants hold after COO conversion regardless of input order.
    #[test]
    fn coo_to_csr_invariants((m, n, ts) in arb_matrix()) {
        let a = build(m, n, &ts);
        prop_assert!(a.check_invariants().is_ok());
    }

    /// SpMV agrees with the dense reference implementation.
    #[test]
    fn spmv_matches_dense(((m, n, ts), seed) in (arb_matrix(), 0u64..1000)) {
        let a = build(m, n, &ts);
        let x: Vec<f64> = (0..n).map(|k| ((k as u64 * 2654435761 + seed) % 17) as f64 - 8.0).collect();
        let dense = a.to_dense();
        let y_sparse = a.spmv_alloc(&x);
        let y_dense = dense.matvec_alloc(&x);
        for (p, q) in y_sparse.iter().zip(&y_dense) {
            prop_assert!((p - q).abs() < 1e-9);
        }
    }

    /// Parallel SpMV is bit-identical to serial SpMV.
    #[test]
    fn spmv_par_identical((m, n, ts) in arb_matrix()) {
        let a = build(m, n, &ts);
        let x: Vec<f64> = (0..n).map(|k| (k as f64).sin()).collect();
        let mut y1 = vec![0.0; m];
        let mut y2 = vec![0.0; m];
        a.spmv(&x, &mut y1);
        a.spmv_par(&x, &mut y2);
        prop_assert_eq!(y1, y2);
    }

    /// Adjointness: ⟨Ax, y⟩ = ⟨x, Aᵀy⟩.
    #[test]
    fn transpose_adjointness((m, n, ts) in arb_matrix()) {
        let a = build(m, n, &ts);
        let x: Vec<f64> = (0..n).map(|k| ((k * 7 + 3) % 11) as f64 - 5.0).collect();
        let y: Vec<f64> = (0..m).map(|k| ((k * 5 + 1) % 13) as f64 - 6.0).collect();
        let ax = a.spmv_alloc(&x);
        let mut aty = vec![0.0; n];
        a.spmv_transpose(&y, &mut aty);
        let lhs: f64 = ax.iter().zip(&y).map(|(p, q)| p * q).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(p, q)| p * q).sum();
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs().max(rhs.abs())));
    }

    /// Transpose is an involution.
    #[test]
    fn transpose_involution((m, n, ts) in arb_matrix()) {
        let a = build(m, n, &ts);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    /// CSC round-trips through CSR without loss.
    #[test]
    fn csc_roundtrip((m, n, ts) in arb_matrix()) {
        let a = build(m, n, &ts);
        prop_assert_eq!(Csc::from_csr(&a).to_csr(), a);
    }

    /// Matrix Market write→read is lossless.
    #[test]
    fn matrix_market_roundtrip((m, n, ts) in arb_matrix()) {
        let a = build(m, n, &ts);
        let mut buf = Vec::new();
        mcmcmi_sparse::io::write_matrix_market(&a, &mut buf).unwrap();
        let b = mcmcmi_sparse::io::read_matrix_market(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(a, b);
    }

    /// A − A = 0 and (A + A) = 2A under csr_add.
    #[test]
    fn add_linearity((m, n, ts) in arb_matrix()) {
        let a = build(m, n, &ts);
        let zero = csr_add(1.0, &a, -1.0, &a);
        prop_assert_eq!(zero.nnz(), 0);
        let double = csr_add(1.0, &a, 1.0, &a);
        for (i, j, v) in a.triplets() {
            prop_assert!((double.get(i, j) - 2.0 * v).abs() < 1e-12);
        }
    }

    /// Symmetry score is 1 exactly for A + Aᵀ.
    #[test]
    fn symmetrised_matrix_scores_one((n0, ts) in (1usize..15).prop_flat_map(|n| {
        (Just(n), proptest::collection::vec((0..n, 0..n, -4.0f64..4.0), 0..40))
    })) {
        let a = build(n0, n0, &ts);
        let sym = csr_add(0.5, &a, 0.5, &a.transpose());
        prop_assert!(sym.is_symmetric(1e-12));
        prop_assert!((sym.symmetry_score() - 1.0).abs() < 1e-9);
    }

    /// x ↦ Ax with vectors of mismatched length panics (shape safety).
    #[test]
    fn spmv_vec_arithmetic((m, n, ts) in arb_matrix(), s in -3.0f64..3.0) {
        // SpMV is linear: A(s·x) = s·(Ax).
        let a = build(m, n, &ts);
        let x: Vec<f64> = (0..n).map(|k| (k as f64 * 0.37).cos()).collect();
        let sx: Vec<f64> = x.iter().map(|v| s * v).collect();
        let lhs = a.spmv_alloc(&sx);
        let rhs: Vec<f64> = a.spmv_alloc(&x).iter().map(|v| s * v).collect();
        for (p, q) in lhs.iter().zip(&rhs) {
            prop_assert!((p - q).abs() < 1e-9);
        }
    }
}

#[test]
fn arb_vec_strategy_compiles() {
    // Keep the helper exercised even though individual tests inline vectors.
    let _ = arb_vec(4);
}
