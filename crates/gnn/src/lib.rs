//! Graph neural surrogate model for MCMC preconditioning performance
//! (paper §3.1).
//!
//! Pipeline: the sparse matrix `A` becomes a weighted directed graph
//! (vertices = rows, edge `(j → i)` iff `a_ij ≠ 0`, node feature = row
//! degree); a stack of message-passing layers produces a graph embedding
//! `h_g`; fully-connected stacks embed the cheap matrix features `x_A` and
//! the MCMC parameters `x_M`; the concatenation goes through FC layers with
//! dropout into two heads, `μ̂ = ReLU(W_μ h + b_μ)` and
//! `σ̂ = softplus(W_σ h + b_σ)` (Eq. 1), trained with the joint MSE loss of
//! Eq. (2).
//!
//! The paper's HPO-selected architecture (1 EdgeConv layer, mean
//! aggregation, 256-dim graph embedding, 1×64 FC for `x_A`, 3×16 FC for
//! `x_M`, 2×128 combined layers) is [`SurrogateConfig::paper`]; a smaller
//! [`SurrogateConfig::lite`] preset keeps CPU wall-clock down. EdgeConv,
//! GINE (edge-weight aware) and a weighted-GCN layer are all implemented —
//! the trio the ablation bench sweeps.

pub mod graph_data;
pub mod layers;
pub mod params;
pub mod surrogate;
pub mod train;

pub use graph_data::MatrixGraph;
pub use layers::{ConvKind, EdgeConvLayer, GatV2Layer, GcnLayer, GineLayer, Mlp, PnaLayer};
pub use params::{BoundParams, ParamSet};
pub use surrogate::{Surrogate, SurrogateConfig};
pub use train::{train_surrogate, GraphSample, SurrogateDataset, TrainConfig, TrainReport};
