//! Conversion of a sparse matrix into message-passing-ready graph data.

use mcmcmi_autodiff::Tensor;
use mcmcmi_sparse::Csr;
use serde::{Deserialize, Serialize};

/// A weighted directed graph derived from a sparse matrix (paper §3.1):
/// vertex `i` per row, edge `(j → i)` for every stored `a_ij ≠ 0` (so
/// messages flow from the columns row `i` depends on into `i`), edge weight
/// `a_ij`, node feature = unweighted row degree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MatrixGraph {
    /// Number of vertices (matrix order).
    pub n_nodes: usize,
    /// Message sender per edge (the column index `j`).
    pub edge_src: Vec<usize>,
    /// Message receiver per edge (the row index `i`).
    pub edge_dst: Vec<usize>,
    /// Raw edge weights `a_ij`, rescaled to max-|w| = 1 per graph.
    pub edge_weight: Vec<f64>,
    /// Node features: z-scored row degree (n × 1).
    pub node_feat: Tensor,
    /// Symmetric-normalised coupling per edge for the GCN layer:
    /// `|a_ij| / sqrt(s_i · s_j)` with `s_i = Σ_j |a_ij| + 1` (self loop).
    pub gcn_norm: Vec<f64>,
}

impl MatrixGraph {
    /// Build from a square sparse matrix. Diagonal entries do not create
    /// self-edges (self information enters EdgeConv through the receiver
    /// feature and GCN through an explicit self-loop term).
    ///
    /// # Panics
    /// Panics if `a` is not square.
    pub fn from_csr(a: &Csr) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "MatrixGraph: matrix must be square");
        let n = a.nrows();
        let nnz = a.nnz();
        let mut edge_src = Vec::with_capacity(nnz);
        let mut edge_dst = Vec::with_capacity(nnz);
        let mut edge_weight = Vec::with_capacity(nnz);
        let mut max_w = 0.0f64;
        let mut strength = vec![1.0f64; n]; // self-loop mass
        for i in 0..n {
            for (&j, &v) in a.row_indices(i).iter().zip(a.row_values(i)) {
                if i == j {
                    continue;
                }
                edge_src.push(j);
                edge_dst.push(i);
                edge_weight.push(v);
                max_w = max_w.max(v.abs());
                strength[i] += v.abs();
                strength[j] += v.abs();
            }
        }
        if max_w > 0.0 {
            for w in &mut edge_weight {
                *w /= max_w;
            }
        }
        let gcn_norm: Vec<f64> = edge_src
            .iter()
            .zip(&edge_dst)
            .zip(&edge_weight)
            .map(|((&s, &d), &w)| w.abs() / (strength[s] * strength[d]).sqrt())
            .collect();

        // Node features: z-scored degrees (constant-degree graphs map to 0).
        let degs: Vec<f64> = a.row_degrees().iter().map(|&d| d as f64).collect();
        let mean = degs.iter().sum::<f64>() / n as f64;
        let var = degs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        let std = if var.sqrt() > 1e-12 { var.sqrt() } else { 1.0 };
        let feat: Vec<f64> = degs.iter().map(|d| (d - mean) / std).collect();
        Self {
            n_nodes: n,
            edge_src,
            edge_dst,
            edge_weight,
            node_feat: Tensor::from_vec(n, 1, feat),
            gcn_norm,
        }
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.edge_src.len()
    }

    /// Edge weights as an `E × 1` tensor.
    pub fn edge_weight_tensor(&self) -> Tensor {
        Tensor::from_vec(self.n_edges(), 1, self.edge_weight.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmcmi_matgen::{fd_laplace_2d, laplace_1d};

    #[test]
    fn laplacian_graph_shape() {
        let a = laplace_1d(5); // 13 nnz, 5 diagonal ⇒ 8 off-diagonal edges
        let g = MatrixGraph::from_csr(&a);
        assert_eq!(g.n_nodes, 5);
        assert_eq!(g.n_edges(), 8);
        assert_eq!(g.node_feat.rows(), 5);
        assert_eq!(g.node_feat.cols(), 1);
    }

    #[test]
    fn edge_weights_normalised_to_unit_max() {
        let a = fd_laplace_2d(8);
        let g = MatrixGraph::from_csr(&a);
        let max = g.edge_weight.iter().fold(0.0f64, |m, w| m.max(w.abs()));
        assert!((max - 1.0).abs() < 1e-12);
        // Sign preserved: Laplacian off-diagonals are negative.
        assert!(g.edge_weight.iter().all(|&w| w < 0.0));
    }

    #[test]
    fn node_features_are_zscored() {
        let a = fd_laplace_2d(8);
        let g = MatrixGraph::from_csr(&a);
        let vals = g.node_feat.data();
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 1e-10);
        // Corner nodes (degree 3) differ from interior (degree 5).
        assert!(vals.iter().any(|&v| v < 0.0) && vals.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn constant_degree_graph_maps_to_zero_features() {
        // Periodic ring: every row has the same degree.
        let mut coo = mcmcmi_sparse::Coo::new(6, 6);
        for i in 0..6usize {
            coo.push(i, i, 2.0);
            coo.push(i, (i + 1) % 6, -1.0);
            coo.push(i, (i + 5) % 6, -1.0);
        }
        let g = MatrixGraph::from_csr(&coo.to_csr());
        assert!(g.node_feat.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn direction_follows_row_dependency() {
        // A = [[1, 5], [0, 1]]: row 0 depends on column 1 ⇒ edge 1 → 0 only.
        let mut coo = mcmcmi_sparse::Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 5.0);
        coo.push(1, 1, 1.0);
        let g = MatrixGraph::from_csr(&coo.to_csr());
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.edge_src, vec![1]);
        assert_eq!(g.edge_dst, vec![0]);
    }

    #[test]
    fn gcn_norms_are_positive_and_bounded() {
        let a = fd_laplace_2d(6);
        let g = MatrixGraph::from_csr(&a);
        assert!(g.gcn_norm.iter().all(|&v| v > 0.0 && v <= 1.0));
    }
}
