//! Surrogate training on the paper's dataset format (§3.1, Eq. 2).

use crate::graph_data::MatrixGraph;
use crate::surrogate::Surrogate;
use mcmcmi_autodiff::{Adam, AdamConfig, GradClip, Graph, Tensor};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One labelled datum: `(G_i, x_A,i, x_M,i, ȳ_i, s_i)` — the sample mean and
/// sample standard deviation of repeated solver runs for this input.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphSample {
    /// Index into the dataset's matrix list.
    pub matrix_idx: usize,
    /// MCMC parameter vector (already standardised).
    pub xm: Vec<f64>,
    /// Sample mean of the performance metric y (Eq. 4).
    pub y_mean: f64,
    /// Sample standard deviation of y.
    pub y_std: f64,
}

/// The training dataset: shared matrix graphs + features, and per-sample
/// labels.
#[derive(Clone, Debug, Default)]
pub struct SurrogateDataset {
    /// Matrix graphs (one per distinct system).
    pub graphs: Vec<MatrixGraph>,
    /// Standardised cheap features `x_A`, parallel to `graphs`.
    pub xa: Vec<Vec<f64>>,
    /// Labelled samples.
    pub samples: Vec<GraphSample>,
}

impl SurrogateDataset {
    /// Register a matrix; returns its index for samples.
    pub fn add_matrix(&mut self, graph: MatrixGraph, xa: Vec<f64>) -> usize {
        self.graphs.push(graph);
        self.xa.push(xa);
        self.graphs.len() - 1
    }

    /// Add a labelled sample.
    pub fn push_sample(&mut self, s: GraphSample) {
        assert!(
            s.matrix_idx < self.graphs.len(),
            "sample references unknown matrix"
        );
        self.samples.push(s);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Split sample indices into train/validation deterministically.
    pub fn split(&self, val_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
        let mut idx: Vec<usize> = (0..self.samples.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let n_val = ((self.samples.len() as f64) * val_fraction).round() as usize;
        let val = idx.split_off(self.samples.len() - n_val.min(self.samples.len()));
        (idx, val)
    }
}

/// Training configuration (paper §4.3/4.4 settings are the defaults).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Max epochs (paper: up to 150 with ASHA early stopping).
    pub epochs: usize,
    /// Batch size (paper: 128).
    pub batch_size: usize,
    /// Adam settings (paper lr: 1.848e-3).
    pub adam: AdamConfig,
    /// Global-norm gradient clip (0 disables).
    pub clip: f64,
    /// Validation fraction (paper: 20%).
    pub val_fraction: f64,
    /// Early-stopping patience in epochs (0 disables).
    pub patience: usize,
    /// Shuffling/split seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 60,
            batch_size: 128,
            adam: AdamConfig {
                lr: 1.848e-3,
                weight_decay: 1e-4,
                ..Default::default()
            },
            clip: 5.0,
            val_fraction: 0.2,
            patience: 12,
            seed: 7,
        }
    }
}

/// Loss/metric trajectory of one training run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss per epoch (Eq. 2).
    pub train_loss: Vec<f64>,
    /// Validation loss per epoch.
    pub val_loss: Vec<f64>,
    /// Epoch whose weights were kept (early stopping).
    pub best_epoch: usize,
    /// Best validation loss.
    pub best_val_loss: f64,
}

/// Eq.-2 loss over a set of samples, without gradient tracking.
pub fn evaluate_loss(surrogate: &mut Surrogate, ds: &SurrogateDataset, indices: &[usize]) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    // Group by matrix to reuse embeddings.
    let mut by_matrix: Vec<Vec<usize>> = vec![Vec::new(); ds.graphs.len()];
    for &i in indices {
        by_matrix[ds.samples[i].matrix_idx].push(i);
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for (m, rows) in by_matrix.iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        let h_g = surrogate.embed_graph(&ds.graphs[m]);
        for &i in rows {
            let s = &ds.samples[i];
            let (mu, sigma) = surrogate.predict(&h_g, &ds.xa[m], &s.xm);
            total += (mu - s.y_mean).powi(2) + (sigma - s.y_std).powi(2);
            count += 1;
        }
    }
    total / count as f64
}

/// Train the surrogate with the Eq.-2 MSE objective. Returns the trajectory;
/// the surrogate is left with the best-validation weights.
pub fn train_surrogate(
    surrogate: &mut Surrogate,
    ds: &SurrogateDataset,
    cfg: TrainConfig,
) -> TrainReport {
    assert!(!ds.is_empty(), "train_surrogate: empty dataset");
    let (train_idx, val_idx) = ds.split(cfg.val_fraction, cfg.seed);
    let mut adam = Adam::new(cfg.adam, surrogate.params().tensors());
    let clip = GradClip {
        max_norm: if cfg.clip > 0.0 {
            cfg.clip
        } else {
            f64::INFINITY
        },
    };
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xabcd);

    let mut report = TrainReport {
        best_val_loss: f64::INFINITY,
        ..Default::default()
    };
    let mut best_params: Option<Vec<Tensor>> = None;
    let mut since_best = 0usize;

    let xm_dim = ds.samples.first().map_or(0, |s| s.xm.len());

    for _epoch in 0..cfg.epochs {
        // Group shuffled train indices by matrix, then emit batches.
        let mut order = train_idx.clone();
        order.shuffle(&mut rng);
        let mut by_matrix: Vec<Vec<usize>> = vec![Vec::new(); ds.graphs.len()];
        for &i in &order {
            by_matrix[ds.samples[i].matrix_idx].push(i);
        }
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for (m, rows) in by_matrix.iter().enumerate() {
            for chunk in rows.chunks(cfg.batch_size.max(1)) {
                let b = chunk.len();
                // Assemble batch tensors.
                let mut xm_data = Vec::with_capacity(b * xm_dim);
                let mut y_data = Vec::with_capacity(b);
                let mut s_data = Vec::with_capacity(b);
                for &i in chunk {
                    xm_data.extend_from_slice(&ds.samples[i].xm);
                    y_data.push(ds.samples[i].y_mean);
                    s_data.push(ds.samples[i].y_std);
                }
                let mut g = Graph::new();
                let bound = surrogate.params().bind(&mut g);
                let xm_var = g.leaf(Tensor::from_vec(b, xm_dim, xm_data));
                let (mu, sigma) =
                    surrogate.forward(&mut g, &bound, &ds.graphs[m], &ds.xa[m], xm_var, b, true);
                let y = g.leaf(Tensor::from_vec(b, 1, y_data));
                let s = g.leaf(Tensor::from_vec(b, 1, s_data));
                let l_mu = g.mse(mu, y);
                let l_sigma = g.mse(sigma, s);
                let loss = g.add(l_mu, l_sigma);
                epoch_loss += g.value(loss).scalar();
                batches += 1;
                let grads = g.backward(loss);
                let mut param_grads = surrogate.params().collect_grads(&bound, &grads);
                clip.clip(&mut param_grads);
                let decay_mask = surrogate.params().decay_mask().to_vec();
                adam.step(
                    surrogate.params_mut().tensors_mut(),
                    &param_grads,
                    Some(&decay_mask),
                );
            }
        }
        report.train_loss.push(if batches > 0 {
            epoch_loss / batches as f64
        } else {
            0.0
        });

        let vl = if val_idx.is_empty() {
            *report.train_loss.last().unwrap()
        } else {
            evaluate_loss(surrogate, ds, &val_idx)
        };
        report.val_loss.push(vl);
        if vl < report.best_val_loss {
            report.best_val_loss = vl;
            report.best_epoch = report.val_loss.len() - 1;
            best_params = Some(surrogate.params().tensors().to_vec());
            since_best = 0;
        } else {
            since_best += 1;
            if cfg.patience > 0 && since_best >= cfg.patience {
                break;
            }
        }
    }
    if let Some(best) = best_params {
        surrogate
            .params_mut()
            .tensors_mut()
            .iter_mut()
            .zip(best)
            .for_each(|(p, b)| *p = b);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surrogate::SurrogateConfig;
    use mcmcmi_matgen::{laplace_1d, pdd_real_sparse};

    /// A synthetic dataset with a learnable signal: y depends smoothly on
    /// the first xm component, different offset per matrix.
    fn synthetic_dataset() -> SurrogateDataset {
        let mut ds = SurrogateDataset::default();
        let m0 = ds.add_matrix(MatrixGraph::from_csr(&laplace_1d(8)), vec![0.0, 1.0, -1.0]);
        let m1 = ds.add_matrix(
            MatrixGraph::from_csr(&pdd_real_sparse(10, 3)),
            vec![1.0, -1.0, 0.5],
        );
        for k in 0..60 {
            let t = k as f64 / 59.0; // in [0,1]
            let xm = vec![t, 1.0 - t, 0.5];
            ds.push_sample(GraphSample {
                matrix_idx: if k % 2 == 0 { m0 } else { m1 },
                xm,
                y_mean: 0.4 + 0.5 * t + if k % 2 == 0 { 0.0 } else { 0.2 },
                y_std: 0.05,
            });
        }
        ds
    }

    fn tiny_surrogate() -> Surrogate {
        Surrogate::new(SurrogateConfig {
            gnn_hidden: 8,
            xa_hidden: 4,
            xm_hidden: 4,
            comb_hidden: 8,
            dropout: 0.0,
            ..SurrogateConfig::lite(3, 3)
        })
    }

    #[test]
    fn training_reduces_loss() {
        let ds = synthetic_dataset();
        let mut s = tiny_surrogate();
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 16,
            patience: 0,
            adam: AdamConfig {
                lr: 5e-3,
                weight_decay: 0.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let report = train_surrogate(&mut s, &ds, cfg);
        let first = report.train_loss[0];
        let last = *report.train_loss.last().unwrap();
        assert!(
            last < 0.5 * first,
            "training did not reduce loss: {first} → {last}"
        );
    }

    #[test]
    fn trained_model_tracks_signal_direction() {
        let ds = synthetic_dataset();
        let mut s = tiny_surrogate();
        let cfg = TrainConfig {
            epochs: 80,
            batch_size: 16,
            patience: 0,
            adam: AdamConfig {
                lr: 5e-3,
                weight_decay: 0.0,
                ..Default::default()
            },
            ..Default::default()
        };
        train_surrogate(&mut s, &ds, cfg);
        // y grows with xm[0]: prediction at t=0.9 must exceed t=0.1 on the
        // same matrix.
        let h_g = s.embed_graph(&ds.graphs[0]);
        let (lo, _) = s.predict(&h_g, &ds.xa[0], &[0.1, 0.9, 0.5]);
        let (hi, _) = s.predict(&h_g, &ds.xa[0], &[0.9, 0.1, 0.5]);
        assert!(
            hi > lo,
            "prediction not increasing in the signal: {lo} vs {hi}"
        );
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        let ds = synthetic_dataset();
        let mut s = tiny_surrogate();
        let cfg = TrainConfig {
            epochs: 30,
            patience: 3,
            ..Default::default()
        };
        let report = train_surrogate(&mut s, &ds, cfg);
        // Validation loss of the restored model equals the recorded best.
        let (_, val_idx) = ds.split(cfg.val_fraction, cfg.seed);
        let vl = evaluate_loss(&mut s, &ds, &val_idx);
        assert!(
            (vl - report.best_val_loss).abs() < 1e-9,
            "restored {vl} vs best {}",
            report.best_val_loss
        );
    }

    #[test]
    fn split_is_deterministic_and_disjoint() {
        let ds = synthetic_dataset();
        let (t1, v1) = ds.split(0.2, 9);
        let (t2, v2) = ds.split(0.2, 9);
        assert_eq!(t1, t2);
        assert_eq!(v1, v2);
        assert_eq!(t1.len() + v1.len(), ds.len());
        for i in &v1 {
            assert!(!t1.contains(i));
        }
    }

    #[test]
    #[should_panic(expected = "unknown matrix")]
    fn sample_with_bad_matrix_index_rejected() {
        let mut ds = SurrogateDataset::default();
        ds.push_sample(GraphSample {
            matrix_idx: 0,
            xm: vec![],
            y_mean: 0.0,
            y_std: 0.0,
        });
    }
}
