//! Neural building blocks: MLP stacks and five message-passing layers from
//! the paper's §4.3 sweep (EdgeConv — the HPO pick — GINE, weighted GCN,
//! GATv2 attention, and PNA multi-aggregation).

use crate::graph_data::MatrixGraph;
use crate::params::{BoundParams, ParamSet};
use mcmcmi_autodiff::{xavier_uniform, AggKind, Graph, Var};
use serde::{Deserialize, Serialize};

/// Message-passing layer family (the paper's §4.3 sweep covered six; the
/// four with materially different mechanisms are implemented here, plus the
/// paper's GINE).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConvKind {
    /// EdgeConv (DGCNN): message `MLP([x_i ‖ x_j − x_i])`. The paper's
    /// selected architecture.
    EdgeConv,
    /// GINE-style: messages `ReLU(x_j + W_e·w_ij)`, summed, then MLP —
    /// incorporates the edge weights explicitly.
    Gine,
    /// Weighted GCN: symmetric-normalised weighted mean then linear.
    Gcn,
    /// GATv2-style single-head attention: per-edge scores
    /// `aᵀ·LeakyReLU(W[x_i ‖ x_j])`, softmax-normalised over each
    /// receiver's neighbourhood.
    GatV2,
    /// PNA-style: concatenated {mean, max, sum} neighbourhood aggregations
    /// followed by a linear tower.
    Pna,
}

/// A stack of `Linear → [LayerNorm] → ReLU` blocks (last layer linear unless
/// `activate_last`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    weights: Vec<usize>,
    biases: Vec<usize>,
    layer_norm: bool,
    activate_last: bool,
    dims: Vec<usize>,
}

impl Mlp {
    /// Allocate an MLP with the given layer dimensions
    /// (`dims = [in, h1, …, out]`).
    ///
    /// # Panics
    /// Panics if fewer than two dims are given.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        dims: &[usize],
        layer_norm: bool,
        activate_last: bool,
        seed: u64,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp: need at least [in, out] dims");
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for (l, w) in dims.windows(2).enumerate() {
            let (d_in, d_out) = (w[0], w[1]);
            let wseed = seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(l as u64 + 1);
            weights.push(ps.register(
                format!("{name}.w{l}"),
                xavier_uniform(d_out, d_in, wseed),
                true,
            ));
            biases.push(ps.register(
                format!("{name}.b{l}"),
                mcmcmi_autodiff::Tensor::zeros(1, d_out),
                false,
            ));
        }
        Self {
            weights,
            biases,
            layer_norm,
            activate_last,
            dims: dims.to_vec(),
        }
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        *self.dims.last().unwrap()
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.dims[0]
    }

    /// Forward pass over a batch (rows = samples).
    pub fn forward(&self, g: &mut Graph, bound: &BoundParams, mut x: Var) -> Var {
        let n_layers = self.weights.len();
        for l in 0..n_layers {
            let w = bound.var(self.weights[l]);
            let b = bound.var(self.biases[l]);
            x = g.linear(x, w, b);
            let is_last = l + 1 == n_layers;
            if !is_last || self.activate_last {
                if self.layer_norm && self.dims[l + 1] > 1 {
                    x = g.layer_norm(x, 1e-5);
                }
                x = g.relu(x);
            }
        }
        x
    }
}

/// EdgeConv message-passing layer (paper's selected architecture).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EdgeConvLayer {
    mlp: Mlp,
    agg: AggKind,
}

impl EdgeConvLayer {
    /// Allocate with message MLP `[2·d_in, d_out]` (single affine + norm +
    /// ReLU, as in DGCNN).
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        d_in: usize,
        d_out: usize,
        agg: AggKind,
        seed: u64,
    ) -> Self {
        let mlp = Mlp::new(ps, name, &[2 * d_in, d_out], true, true, seed);
        Self { mlp, agg }
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.mlp.out_dim()
    }

    /// One round of message passing over the matrix graph.
    pub fn forward(&self, g: &mut Graph, bound: &BoundParams, data: &MatrixGraph, x: Var) -> Var {
        // Receiver and sender features per edge.
        let xi = g.row_gather(x, &data.edge_dst);
        let xj = g.row_gather(x, &data.edge_src);
        let diff = g.sub(xj, xi);
        let msg_in = g.concat_cols(xi, diff);
        let msg = self.mlp.forward(g, bound, msg_in);
        g.scatter_agg(msg, &data.edge_dst, data.n_nodes, self.agg)
    }
}

/// GINE-style layer: uses the edge weights explicitly.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GineLayer {
    edge_w: usize,
    edge_b: usize,
    mlp: Mlp,
    eps: f64,
    d_in: usize,
}

impl GineLayer {
    /// Allocate: edge-weight embedding `1 → d_in`, update MLP
    /// `[d_in, d_out]`.
    pub fn new(ps: &mut ParamSet, name: &str, d_in: usize, d_out: usize, seed: u64) -> Self {
        let edge_w = ps.register(
            format!("{name}.edge_w"),
            xavier_uniform(d_in, 1, seed ^ 0xabcdef),
            true,
        );
        let edge_b = ps.register(
            format!("{name}.edge_b"),
            mcmcmi_autodiff::Tensor::zeros(1, d_in),
            false,
        );
        let mlp = Mlp::new(ps, name, &[d_in, d_out], true, true, seed);
        Self {
            edge_w,
            edge_b,
            mlp,
            eps: 0.1,
            d_in,
        }
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.mlp.out_dim()
    }

    /// Forward: `MLP((1+ε)·x_i + Σ_j ReLU(x_j + W_e·w_ij + b_e))`.
    pub fn forward(&self, g: &mut Graph, bound: &BoundParams, data: &MatrixGraph, x: Var) -> Var {
        let xj = g.row_gather(x, &data.edge_src);
        // Edge embedding: (E×1)·(1×d_in) + b.
        let ew = g.leaf(data.edge_weight_tensor());
        let wt = g.transpose(bound.var(self.edge_w)); // 1×d_in
        let emb = g.matmul(ew, wt);
        let emb = g.add_broadcast_row(emb, bound.var(self.edge_b));
        let summed = g.add(xj, emb);
        let msg = g.relu(summed);
        let agg = g.scatter_agg(msg, &data.edge_dst, data.n_nodes, AggKind::Sum);
        let self_term = g.scale(x, 1.0 + self.eps);
        let combined = g.add(self_term, agg);
        self.mlp.forward(g, bound, combined)
    }
}

/// Weighted-GCN layer: `ReLU(LN(W·(Â x)))` with `Â` the symmetric-normalised
/// |weight| coupling from [`MatrixGraph::gcn_norm`] plus a self loop.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GcnLayer {
    w: usize,
    b: usize,
    d_out: usize,
}

impl GcnLayer {
    /// Allocate the layer.
    pub fn new(ps: &mut ParamSet, name: &str, d_in: usize, d_out: usize, seed: u64) -> Self {
        let w = ps.register(format!("{name}.w"), xavier_uniform(d_out, d_in, seed), true);
        let b = ps.register(
            format!("{name}.b"),
            mcmcmi_autodiff::Tensor::zeros(1, d_out),
            false,
        );
        Self { w, b, d_out }
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.d_out
    }

    /// Forward pass.
    pub fn forward(&self, g: &mut Graph, bound: &BoundParams, data: &MatrixGraph, x: Var) -> Var {
        // Propagate: gather sender features, scale by per-edge norm, scatter.
        let xj = g.row_gather(x, &data.edge_src);
        let norm = g.leaf(mcmcmi_autodiff::Tensor::from_vec(
            data.n_edges(),
            1,
            data.gcn_norm.clone(),
        ));
        // Broadcast the E×1 norm across feature columns via repeat+mul.
        let d = g.value(xj).cols();
        let norm_wide = if d > 1 {
            let mut cols = norm;
            for _ in 1..d {
                cols = g.concat_cols(cols, norm);
            }
            cols
        } else {
            norm
        };
        let scaled = g.mul_elem(xj, norm_wide);
        let agg = g.scatter_agg(scaled, &data.edge_dst, data.n_nodes, AggKind::Sum);
        let with_self = g.add(agg, x);
        let h = g.linear(with_self, bound.var(self.w), bound.var(self.b));
        let h = g.layer_norm(h, 1e-5);
        g.relu(h)
    }
}

/// GATv2-style single-head attention layer: per-edge scores
/// `aᵀ·LeakyReLU(W[x_i ‖ x_j] + b)`, softmax-normalised over each
/// receiver's incoming edges, weighting projected sender features.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GatV2Layer {
    w_att: usize,
    b_att: usize,
    a_vec: usize,
    a_bias: usize,
    w_proj: usize,
    b_proj: usize,
    d_out: usize,
}

impl GatV2Layer {
    /// Allocate: attention tower `2·d_in → d_out`, score head `d_out → 1`,
    /// sender projection `d_in → d_out`.
    pub fn new(ps: &mut ParamSet, name: &str, d_in: usize, d_out: usize, seed: u64) -> Self {
        let w_att = ps.register(
            format!("{name}.w_att"),
            xavier_uniform(d_out, 2 * d_in, seed ^ 0x11),
            true,
        );
        let b_att = ps.register(
            format!("{name}.b_att"),
            mcmcmi_autodiff::Tensor::zeros(1, d_out),
            false,
        );
        let a_vec = ps.register(
            format!("{name}.a"),
            xavier_uniform(1, d_out, seed ^ 0x22),
            true,
        );
        let a_bias = ps.register(
            format!("{name}.a_b"),
            mcmcmi_autodiff::Tensor::zeros(1, 1),
            false,
        );
        let w_proj = ps.register(
            format!("{name}.w_proj"),
            xavier_uniform(d_out, d_in, seed ^ 0x33),
            true,
        );
        let b_proj = ps.register(
            format!("{name}.b_proj"),
            mcmcmi_autodiff::Tensor::zeros(1, d_out),
            false,
        );
        Self {
            w_att,
            b_att,
            a_vec,
            a_bias,
            w_proj,
            b_proj,
            d_out,
        }
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.d_out
    }

    /// Forward pass.
    pub fn forward(&self, g: &mut Graph, bound: &BoundParams, data: &MatrixGraph, x: Var) -> Var {
        let xi = g.row_gather(x, &data.edge_dst);
        let xj = g.row_gather(x, &data.edge_src);
        let cat = g.concat_cols(xi, xj);
        let h = g.linear(cat, bound.var(self.w_att), bound.var(self.b_att));
        // LeakyReLU(0.2) from existing ops: relu(x) − 0.2·relu(−x).
        let pos = g.relu(h);
        let negated = g.scale(h, -1.0);
        let negpart = g.relu(negated);
        let scaled_neg = g.scale(negpart, -0.2);
        let lrelu = g.add(pos, scaled_neg);
        // E×1 attention logits.
        let score = g.linear(lrelu, bound.var(self.a_vec), bound.var(self.a_bias));
        // Numerically stable segment softmax: subtract the per-receiver max
        // as a constant (softmax is shift-invariant, so treating the max as
        // detached leaves gradients exact).
        let n_edges = data.n_edges();
        let mut seg_max = vec![f64::NEG_INFINITY; data.n_nodes];
        for (e, &d) in data.edge_dst.iter().enumerate() {
            seg_max[d] = seg_max[d].max(g.value(score).get(e, 0));
        }
        let shift: Vec<f64> = data
            .edge_dst
            .iter()
            .map(|&d| {
                if seg_max[d].is_finite() {
                    -seg_max[d]
                } else {
                    0.0
                }
            })
            .collect();
        let shift_leaf = g.leaf(mcmcmi_autodiff::Tensor::from_vec(n_edges, 1, shift));
        let shifted = g.add(score, shift_leaf);
        let e_scores = g.exp(shifted);
        let denom = g.scatter_agg(e_scores, &data.edge_dst, data.n_nodes, AggKind::Sum);
        let denom_edges = g.row_gather(denom, &data.edge_dst);
        let inv = g.recip(denom_edges);
        // E×1 weights, summing to 1 per receiver.
        let weights = g.mul_elem(e_scores, inv);
        // Weighted aggregation of projected sender features.
        let proj = g.linear(xj, bound.var(self.w_proj), bound.var(self.b_proj));
        let weighted = g.mul_broadcast_col(proj, weights);
        let agg = g.scatter_agg(weighted, &data.edge_dst, data.n_nodes, AggKind::Sum);
        let normed = g.layer_norm(agg, 1e-5);
        g.relu(normed)
    }
}

/// PNA-style layer: principal neighbourhood aggregation — concatenated
/// {mean, max, sum} of messages, then a linear tower.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PnaLayer {
    msg: Mlp,
    tower: Mlp,
}

impl PnaLayer {
    /// Allocate: message MLP `2·d_in → d_out`, tower `3·d_out → d_out`.
    pub fn new(ps: &mut ParamSet, name: &str, d_in: usize, d_out: usize, seed: u64) -> Self {
        let msg = Mlp::new(
            ps,
            &format!("{name}.msg"),
            &[2 * d_in, d_out],
            true,
            true,
            seed,
        );
        let tower = Mlp::new(
            ps,
            &format!("{name}.tower"),
            &[3 * d_out, d_out],
            true,
            true,
            seed ^ 0x77,
        );
        Self { msg, tower }
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.tower.out_dim()
    }

    /// Forward pass.
    pub fn forward(&self, g: &mut Graph, bound: &BoundParams, data: &MatrixGraph, x: Var) -> Var {
        let xi = g.row_gather(x, &data.edge_dst);
        let xj = g.row_gather(x, &data.edge_src);
        let diff = g.sub(xj, xi);
        let msg_in = g.concat_cols(xi, diff);
        let msg = self.msg.forward(g, bound, msg_in);
        let mean = g.scatter_agg(msg, &data.edge_dst, data.n_nodes, AggKind::Mean);
        let max = g.scatter_agg(msg, &data.edge_dst, data.n_nodes, AggKind::Max);
        let sum = g.scatter_agg(msg, &data.edge_dst, data.n_nodes, AggKind::Sum);
        let mm = g.concat_cols(mean, max);
        let all = g.concat_cols(mm, sum);
        self.tower.forward(g, bound, all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmcmi_autodiff::Tensor;
    use mcmcmi_matgen::laplace_1d;

    fn toy_graph() -> MatrixGraph {
        MatrixGraph::from_csr(&laplace_1d(6))
    }

    #[test]
    fn mlp_shapes_flow() {
        let mut ps = ParamSet::new();
        let mlp = Mlp::new(&mut ps, "t", &[4, 8, 3], true, false, 1);
        assert_eq!(mlp.in_dim(), 4);
        assert_eq!(mlp.out_dim(), 3);
        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        let x = g.leaf(Tensor::zeros(5, 4));
        let y = mlp.forward(&mut g, &bound, x);
        assert_eq!(g.value(y).rows(), 5);
        assert_eq!(g.value(y).cols(), 3);
    }

    #[test]
    fn edgeconv_output_shape_and_grad_flow() {
        let data = toy_graph();
        let mut ps = ParamSet::new();
        let layer = EdgeConvLayer::new(&mut ps, "ec", 1, 7, AggKind::Mean, 2);
        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        let x = g.leaf(data.node_feat.clone());
        let h = layer.forward(&mut g, &bound, &data, x);
        assert_eq!(g.value(h).rows(), 6);
        assert_eq!(g.value(h).cols(), 7);
        // Gradients reach every parameter of the layer.
        let loss = g.mean_all(h);
        let grads = g.backward(loss);
        let collected = ps.collect_grads(&bound, &grads);
        let nonzero = collected.iter().filter(|t| t.norm() > 0.0).count();
        assert!(nonzero >= 1, "no gradient reached the EdgeConv parameters");
    }

    #[test]
    fn gine_uses_edge_weights() {
        // Same structure, different weights ⇒ different outputs.
        let a1 = laplace_1d(6);
        let mut a2 = a1.clone();
        a2.scale_values(0.5); // same pattern, different values
        let d1 = MatrixGraph::from_csr(&a1);
        let mut d2 = MatrixGraph::from_csr(&a2);
        // Rescaling alone is normalised away; perturb one weight instead.
        d2.edge_weight[0] *= -0.3;
        let mut ps = ParamSet::new();
        let layer = GineLayer::new(&mut ps, "gine", 1, 4, 3);
        let run = |data: &MatrixGraph, ps: &ParamSet| {
            let mut g = Graph::new();
            let bound = ps.bind(&mut g);
            let x = g.leaf(data.node_feat.clone());
            let h = layer.forward(&mut g, &bound, data, x);
            g.value(h).clone()
        };
        let h1 = run(&d1, &ps);
        let h2 = run(&d2, &ps);
        assert_ne!(h1, h2);
    }

    #[test]
    fn edgeconv_ignores_edge_weights_gine_does_not() {
        // EdgeConv messages depend only on endpoint features — the
        // documented difference vs GINE.
        let a1 = laplace_1d(6);
        let d1 = MatrixGraph::from_csr(&a1);
        let mut d2 = d1.clone();
        d2.edge_weight[2] *= -0.7;
        let mut ps = ParamSet::new();
        let layer = EdgeConvLayer::new(&mut ps, "ec", 1, 4, AggKind::Mean, 5);
        let run = |data: &MatrixGraph| {
            let mut g = Graph::new();
            let bound = ps.bind(&mut g);
            let x = g.leaf(data.node_feat.clone());
            let h = layer.forward(&mut g, &bound, data, x);
            g.value(h).clone()
        };
        assert_eq!(run(&d1), run(&d2));
    }

    #[test]
    fn gcn_output_shape() {
        let data = toy_graph();
        let mut ps = ParamSet::new();
        let layer = GcnLayer::new(&mut ps, "gcn", 1, 5, 4);
        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        let x = g.leaf(data.node_feat.clone());
        let h = layer.forward(&mut g, &bound, &data, x);
        assert_eq!(g.value(h).rows(), 6);
        assert_eq!(g.value(h).cols(), 5);
    }

    #[test]
    fn gatv2_attention_weights_sum_to_one_effectively() {
        // Constant sender features: attention-weighted aggregation of a
        // constant must reproduce the constant's projection for every
        // receiver with incoming edges — i.e. softmax weights sum to 1.
        let data = toy_graph();
        let mut ps = ParamSet::new();
        let layer = GatV2Layer::new(&mut ps, "gat", 1, 4, 11);
        let run = |feat: Tensor, ps: &ParamSet| {
            let mut g = Graph::new();
            let bound = ps.bind(&mut g);
            let x = g.leaf(feat);
            let h = layer.forward(&mut g, &bound, &data, x);
            g.value(h).clone()
        };
        let out_a = run(Tensor::full(6, 1, 0.5), &ps);
        // All rows have ≥1 incoming edge on the path graph; with constant
        // input the pre-norm aggregation is identical across nodes, so rows
        // must agree pairwise after LayerNorm+ReLU.
        for r in 1..6 {
            for c in 0..4 {
                assert!((out_a.get(0, c) - out_a.get(r, c)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gatv2_gradients_reach_parameters() {
        let data = toy_graph();
        let mut ps = ParamSet::new();
        let layer = GatV2Layer::new(&mut ps, "gat", 1, 4, 13);
        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        let x = g.leaf(data.node_feat.clone());
        let h = layer.forward(&mut g, &bound, &data, x);
        let sq = g.square(h);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        let collected = ps.collect_grads(&bound, &grads);
        let nonzero = collected.iter().filter(|t| t.norm() > 0.0).count();
        assert!(
            nonzero >= 3,
            "only {nonzero} GATv2 parameters received gradient"
        );
    }

    #[test]
    fn pna_shapes_and_gradients() {
        let data = toy_graph();
        let mut ps = ParamSet::new();
        let layer = PnaLayer::new(&mut ps, "pna", 1, 5, 17);
        assert_eq!(layer.out_dim(), 5);
        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        let x = g.leaf(data.node_feat.clone());
        let h = layer.forward(&mut g, &bound, &data, x);
        assert_eq!(g.value(h).rows(), 6);
        assert_eq!(g.value(h).cols(), 5);
        let loss = g.mean_all(h);
        let grads = g.backward(loss);
        let collected = ps.collect_grads(&bound, &grads);
        assert!(collected.iter().any(|t| t.norm() > 0.0));
    }

    #[test]
    fn aggregation_kinds_differ() {
        let data = toy_graph();
        for (k1, k2) in [(AggKind::Mean, AggKind::Sum), (AggKind::Sum, AggKind::Max)] {
            let mut ps = ParamSet::new();
            let l1 = EdgeConvLayer::new(&mut ps, "a", 1, 4, k1, 9);
            let l2 = EdgeConvLayer {
                mlp: l1.mlp.clone(),
                agg: k2,
            };
            let run = |layer: &EdgeConvLayer| {
                let mut g = Graph::new();
                let bound = ps.bind(&mut g);
                let x = g.leaf(data.node_feat.clone());
                let h = layer.forward(&mut g, &bound, &data, x);
                g.value(h).clone()
            };
            assert_ne!(run(&l1), run(&l2), "{k1:?} vs {k2:?} should differ");
        }
    }
}
