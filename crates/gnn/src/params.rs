//! Flat parameter storage shared by all model modules.
//!
//! Modules allocate tensors in a [`ParamSet`] at construction time and refer
//! to them by index; each forward pass binds the whole set into the tape as
//! leaves ([`ParamSet::bind`]) and harvests gradients in the same order
//! after `backward`. This keeps the tape free of any parameter bookkeeping.

use mcmcmi_autodiff::{Gradients, Graph, Tensor, Var};
use serde::{Deserialize, Serialize};

/// A named, flat collection of parameter tensors.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ParamSet {
    tensors: Vec<Tensor>,
    names: Vec<String>,
    /// Whether weight decay applies (true for weights, false for biases).
    decay: Vec<bool>,
}

/// Tape handles for one bound forward pass.
pub struct BoundParams {
    vars: Vec<Var>,
}

impl ParamSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a tensor; returns its stable index.
    pub fn register(&mut self, name: impl Into<String>, t: Tensor, decay: bool) -> usize {
        self.tensors.push(t);
        self.names.push(name.into());
        self.decay.push(decay);
        self.tensors.len() - 1
    }

    /// Number of tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total scalar parameter count.
    pub fn num_scalars(&self) -> usize {
        self.tensors.iter().map(Tensor::len).sum()
    }

    /// Tensor accessor.
    pub fn get(&self, idx: usize) -> &Tensor {
        &self.tensors[idx]
    }

    /// Mutable access to all tensors (for the optimiser).
    pub fn tensors_mut(&mut self) -> &mut [Tensor] {
        &mut self.tensors
    }

    /// All tensors.
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// Decay mask aligned with [`ParamSet::tensors`].
    pub fn decay_mask(&self) -> &[bool] {
        &self.decay
    }

    /// Parameter names (debugging / serialisation sanity checks).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Insert every tensor into the tape as a leaf.
    pub fn bind(&self, g: &mut Graph) -> BoundParams {
        BoundParams {
            vars: self.tensors.iter().map(|t| g.leaf(t.clone())).collect(),
        }
    }

    /// Collect gradients for every parameter (zeros where none flowed),
    /// aligned with [`ParamSet::tensors`].
    pub fn collect_grads(&self, bound: &BoundParams, grads: &Gradients) -> Vec<Tensor> {
        self.tensors
            .iter()
            .zip(&bound.vars)
            .map(|(t, &v)| grads.get_or_zero(v, t.rows(), t.cols()))
            .collect()
    }
}

impl BoundParams {
    /// Tape handle for parameter `idx`.
    pub fn var(&self, idx: usize) -> Var {
        self.vars[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_bind_roundtrip() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::full(2, 3, 1.5), true);
        let b = ps.register("b", Tensor::zeros(1, 2), false);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.num_scalars(), 8);
        assert_eq!(ps.decay_mask(), &[true, false]);

        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        assert_eq!(g.value(bound.var(w)).get(0, 0), 1.5);
        assert_eq!(g.value(bound.var(b)).cols(), 2);
    }

    #[test]
    fn grads_collected_in_registration_order() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::full(1, 2, 2.0), true);
        let _unused = ps.register("unused", Tensor::zeros(1, 1), true);
        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        // loss = mean(w ∘ w) ⇒ dL/dw = 2w/len = 2.0 each.
        let sq = g.square(bound.var(w));
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        let collected = ps.collect_grads(&bound, &grads);
        assert_eq!(collected.len(), 2);
        assert!((collected[0].get(0, 0) - 2.0).abs() < 1e-12);
        // Unused parameter gets a zero gradient of the right shape.
        assert_eq!(collected[1].rows(), 1);
        assert_eq!(collected[1].get(0, 0), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let mut ps = ParamSet::new();
        ps.register("w", Tensor::full(2, 2, 0.5), true);
        let json = serde_json::to_string(&ps).unwrap();
        let ps2: ParamSet = serde_json::from_str(&json).unwrap();
        assert_eq!(ps.tensors(), ps2.tensors());
        assert_eq!(ps.names(), ps2.names());
    }
}
