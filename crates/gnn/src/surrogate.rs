//! The full surrogate: graph embedding ⊕ matrix-feature embedding ⊕
//! MCMC-parameter embedding → fused FC stack → (μ̂, σ̂) heads (paper Eq. 1).

use crate::graph_data::MatrixGraph;
use crate::layers::{ConvKind, EdgeConvLayer, GatV2Layer, GcnLayer, GineLayer, Mlp, PnaLayer};
use crate::params::{BoundParams, ParamSet};
use mcmcmi_autodiff::{AggKind, Graph, Tensor, Var};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Architecture hyperparameters (the searchable space of paper §4.3).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SurrogateConfig {
    /// Message-passing family.
    pub conv: ConvKind,
    /// Neighbourhood aggregation.
    pub agg: AggKind,
    /// Number of message-passing layers (paper searched 1–4; HPO chose 1).
    pub gnn_layers: usize,
    /// Graph embedding width (HPO chose 256).
    pub gnn_hidden: usize,
    /// FC layers for `x_A` (HPO chose 1).
    pub xa_layers: usize,
    /// Width for the `x_A` stack (HPO chose 64).
    pub xa_hidden: usize,
    /// FC layers for `x_M` (HPO chose 3).
    pub xm_layers: usize,
    /// Width for the `x_M` stack (HPO chose 16).
    pub xm_hidden: usize,
    /// Combined FC layers (HPO chose 2).
    pub comb_layers: usize,
    /// Combined width (HPO chose 128).
    pub comb_hidden: usize,
    /// Dropout probability in the combined stack (searched 0–0.2).
    pub dropout: f64,
    /// Dimensionality of `x_A` (matrix features).
    pub xa_dim: usize,
    /// Dimensionality of `x_M` (α, ε, δ + solver one-hot).
    pub xm_dim: usize,
    /// Parameter-init seed.
    pub seed: u64,
}

impl SurrogateConfig {
    /// The paper's HPO-selected architecture (§4.4).
    pub fn paper(xa_dim: usize, xm_dim: usize) -> Self {
        Self {
            conv: ConvKind::EdgeConv,
            agg: AggKind::Mean,
            gnn_layers: 1,
            gnn_hidden: 256,
            xa_layers: 1,
            xa_hidden: 64,
            xm_layers: 3,
            xm_hidden: 16,
            comb_layers: 2,
            comb_hidden: 128,
            dropout: 0.1,
            xa_dim,
            xm_dim,
            seed: 42,
        }
    }

    /// CPU-friendly preset: same topology, narrower widths.
    pub fn lite(xa_dim: usize, xm_dim: usize) -> Self {
        Self {
            gnn_hidden: 64,
            xa_hidden: 32,
            xm_hidden: 16,
            comb_hidden: 64,
            ..Self::paper(xa_dim, xm_dim)
        }
    }
}

enum ConvStack {
    Edge(Vec<EdgeConvLayer>),
    Gine(Vec<GineLayer>),
    Gcn(Vec<GcnLayer>),
    Gat(Vec<GatV2Layer>),
    Pna(Vec<PnaLayer>),
}

/// The graph neural surrogate model.
pub struct Surrogate {
    cfg: SurrogateConfig,
    params: ParamSet,
    conv: ConvStack,
    xa_mlp: Mlp,
    xm_mlp: Mlp,
    comb_mlp: Mlp,
    head_mu: (usize, usize),
    head_sigma: (usize, usize),
    dropout_rng: ChaCha8Rng,
}

/// Serialisable snapshot of a surrogate (config + weights).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SurrogateSnapshot {
    /// Architecture.
    pub config: SurrogateConfig,
    /// All parameter tensors.
    pub params: ParamSet,
}

impl Surrogate {
    /// Build a freshly initialised surrogate.
    pub fn new(cfg: SurrogateConfig) -> Self {
        assert!(
            cfg.gnn_layers >= 1,
            "Surrogate: need at least one GNN layer"
        );
        let mut ps = ParamSet::new();
        let seed = cfg.seed;
        let conv = match cfg.conv {
            ConvKind::EdgeConv => ConvStack::Edge(
                (0..cfg.gnn_layers)
                    .map(|l| {
                        let d_in = if l == 0 { 1 } else { cfg.gnn_hidden };
                        EdgeConvLayer::new(
                            &mut ps,
                            &format!("conv{l}"),
                            d_in,
                            cfg.gnn_hidden,
                            cfg.agg,
                            seed.wrapping_add(l as u64),
                        )
                    })
                    .collect(),
            ),
            ConvKind::Gine => ConvStack::Gine(
                (0..cfg.gnn_layers)
                    .map(|l| {
                        let d_in = if l == 0 { 1 } else { cfg.gnn_hidden };
                        GineLayer::new(
                            &mut ps,
                            &format!("conv{l}"),
                            d_in,
                            cfg.gnn_hidden,
                            seed.wrapping_add(100 + l as u64),
                        )
                    })
                    .collect(),
            ),
            ConvKind::Gcn => ConvStack::Gcn(
                (0..cfg.gnn_layers)
                    .map(|l| {
                        let d_in = if l == 0 { 1 } else { cfg.gnn_hidden };
                        GcnLayer::new(
                            &mut ps,
                            &format!("conv{l}"),
                            d_in,
                            cfg.gnn_hidden,
                            seed.wrapping_add(200 + l as u64),
                        )
                    })
                    .collect(),
            ),
            ConvKind::GatV2 => ConvStack::Gat(
                (0..cfg.gnn_layers)
                    .map(|l| {
                        let d_in = if l == 0 { 1 } else { cfg.gnn_hidden };
                        GatV2Layer::new(
                            &mut ps,
                            &format!("conv{l}"),
                            d_in,
                            cfg.gnn_hidden,
                            seed.wrapping_add(300 + l as u64),
                        )
                    })
                    .collect(),
            ),
            ConvKind::Pna => ConvStack::Pna(
                (0..cfg.gnn_layers)
                    .map(|l| {
                        let d_in = if l == 0 { 1 } else { cfg.gnn_hidden };
                        PnaLayer::new(
                            &mut ps,
                            &format!("conv{l}"),
                            d_in,
                            cfg.gnn_hidden,
                            seed.wrapping_add(400 + l as u64),
                        )
                    })
                    .collect(),
            ),
        };
        // FC stacks: [in, hidden × layers].
        let xa_dims: Vec<usize> = std::iter::once(cfg.xa_dim)
            .chain(std::iter::repeat_n(cfg.xa_hidden, cfg.xa_layers))
            .collect();
        let xm_dims: Vec<usize> = std::iter::once(cfg.xm_dim)
            .chain(std::iter::repeat_n(cfg.xm_hidden, cfg.xm_layers))
            .collect();
        let xa_mlp = Mlp::new(&mut ps, "xa", &xa_dims, true, true, seed ^ 0x1111);
        let xm_mlp = Mlp::new(&mut ps, "xm", &xm_dims, true, true, seed ^ 0x2222);
        let comb_in = cfg.gnn_hidden + cfg.xa_hidden + cfg.xm_hidden;
        let comb_dims: Vec<usize> = std::iter::once(comb_in)
            .chain(std::iter::repeat_n(cfg.comb_hidden, cfg.comb_layers))
            .collect();
        let comb_mlp = Mlp::new(&mut ps, "comb", &comb_dims, true, true, seed ^ 0x3333);
        let head_mu = (
            ps.register(
                "head_mu.w",
                mcmcmi_autodiff::xavier_uniform(1, cfg.comb_hidden, seed ^ 0x44),
                true,
            ),
            ps.register("head_mu.b", Tensor::zeros(1, 1), false),
        );
        let head_sigma = (
            ps.register(
                "head_sigma.w",
                mcmcmi_autodiff::xavier_uniform(1, cfg.comb_hidden, seed ^ 0x55),
                true,
            ),
            ps.register("head_sigma.b", Tensor::full(1, 1, -1.0), false),
        );
        Self {
            cfg,
            params: ps,
            conv,
            xa_mlp,
            xm_mlp,
            comb_mlp,
            head_mu,
            head_sigma,
            dropout_rng: ChaCha8Rng::seed_from_u64(seed ^ 0xd20),
        }
    }

    /// Architecture.
    pub fn config(&self) -> &SurrogateConfig {
        &self.cfg
    }

    /// Parameter store (for the optimiser).
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Mutable parameter store.
    pub fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    /// Snapshot for persistence.
    pub fn snapshot(&self) -> SurrogateSnapshot {
        SurrogateSnapshot {
            config: self.cfg,
            params: self.params.clone(),
        }
    }

    /// Restore from a snapshot.
    ///
    /// # Panics
    /// Panics if the snapshot's parameter count disagrees with the config.
    pub fn from_snapshot(snap: SurrogateSnapshot) -> Self {
        let mut s = Self::new(snap.config);
        assert_eq!(
            s.params.len(),
            snap.params.len(),
            "SurrogateSnapshot: parameter count mismatch"
        );
        s.params = snap.params;
        s
    }

    /// Graph-side forward: message passing + global mean pool → `1 × H`.
    fn graph_forward(&self, g: &mut Graph, bound: &BoundParams, data: &MatrixGraph) -> Var {
        let mut x = g.leaf(data.node_feat.clone());
        match &self.conv {
            ConvStack::Edge(layers) => {
                for l in layers {
                    x = l.forward(g, bound, data, x);
                }
            }
            ConvStack::Gine(layers) => {
                for l in layers {
                    x = l.forward(g, bound, data, x);
                }
            }
            ConvStack::Gcn(layers) => {
                for l in layers {
                    x = l.forward(g, bound, data, x);
                }
            }
            ConvStack::Gat(layers) => {
                for l in layers {
                    x = l.forward(g, bound, data, x);
                }
            }
            ConvStack::Pna(layers) => {
                for l in layers {
                    x = l.forward(g, bound, data, x);
                }
            }
        }
        g.mean_rows(x)
    }

    /// Full forward for a batch of `x_M` rows on one matrix. Returns
    /// `(μ̂, σ̂)` tape nodes, each `B × 1`.
    ///
    /// `training` enables dropout (masks drawn from the surrogate's own RNG).
    #[allow(clippy::too_many_arguments)]
    pub fn forward(
        &mut self,
        g: &mut Graph,
        bound: &BoundParams,
        data: &MatrixGraph,
        xa: &[f64],
        xm_batch: Var,
        batch: usize,
        training: bool,
    ) -> (Var, Var) {
        assert_eq!(xa.len(), self.cfg.xa_dim, "forward: xa dimension mismatch");
        let hg_row = self.graph_forward(g, bound, data);
        self.fuse_forward(g, bound, hg_row, xa, xm_batch, batch, training)
    }

    /// Forward from a precomputed graph embedding (inference fast path for
    /// BO: the embedding does not depend on `x_M`, so it is computed once
    /// per matrix and reused across thousands of EI evaluations).
    #[allow(clippy::too_many_arguments)]
    pub fn forward_with_embedding(
        &mut self,
        g: &mut Graph,
        bound: &BoundParams,
        h_g: &Tensor,
        xa: &[f64],
        xm_batch: Var,
        batch: usize,
        training: bool,
    ) -> (Var, Var) {
        let hg_row = g.leaf(h_g.clone());
        self.fuse_forward(g, bound, hg_row, xa, xm_batch, batch, training)
    }

    fn fuse_forward(
        &mut self,
        g: &mut Graph,
        bound: &BoundParams,
        hg_row: Var,
        xa: &[f64],
        xm_batch: Var,
        batch: usize,
        training: bool,
    ) -> (Var, Var) {
        let hg = g.repeat_rows(hg_row, batch);
        let xa_row = g.leaf(Tensor::row_vector(xa));
        let ha_row = self.xa_mlp.forward(g, bound, xa_row);
        let ha = g.repeat_rows(ha_row, batch);
        let hm = self.xm_mlp.forward(g, bound, xm_batch);
        let cat = g.concat_cols(hg, ha);
        let fused_in = g.concat_cols(cat, hm);
        let mut h = self.comb_mlp.forward(g, bound, fused_in);
        if training && self.cfg.dropout > 0.0 {
            let len = g.value(h).len();
            let p = self.cfg.dropout;
            let mask: Vec<f64> = (0..len)
                .map(|_| {
                    if self.dropout_rng.gen::<f64>() < p {
                        0.0
                    } else {
                        1.0
                    }
                })
                .collect();
            h = g.dropout(h, &mask, p);
        }
        // Heads (Eq. 1): μ̂ = ReLU(Wh + b), σ̂ = softplus(Wh + b).
        let mu_lin = g.linear(h, bound.var(self.head_mu.0), bound.var(self.head_mu.1));
        let mu = g.relu(mu_lin);
        let sg_lin = g.linear(
            h,
            bound.var(self.head_sigma.0),
            bound.var(self.head_sigma.1),
        );
        let sigma = g.softplus(sg_lin);
        (mu, sigma)
    }

    /// Compute the graph embedding `h_g` as a plain tensor (no grads).
    pub fn embed_graph(&mut self, data: &MatrixGraph) -> Tensor {
        let mut g = Graph::new();
        let bound = self.params.bind(&mut g);
        let hg = self.graph_forward(&mut g, &bound, data);
        g.value(hg).clone()
    }

    /// Predict `(μ̂, σ̂)` for one `x_M` on a matrix with a precomputed
    /// embedding (inference mode, no dropout).
    pub fn predict(&mut self, h_g: &Tensor, xa: &[f64], xm: &[f64]) -> (f64, f64) {
        let mut g = Graph::new();
        let bound = self.params.bind(&mut g);
        let xm_var = g.leaf(Tensor::row_vector(xm));
        let (mu, sigma) = self.forward_with_embedding(&mut g, &bound, h_g, xa, xm_var, 1, false);
        (g.value(mu).scalar(), g.value(sigma).scalar())
    }

    /// Predict with input gradients: returns
    /// `(μ̂, σ̂, ∂μ̂/∂x_M, ∂σ̂/∂x_M)` — the quantities the EI optimiser needs
    /// ("back-propagation supplies the exact gradient", paper §3.2).
    pub fn predict_grad(
        &mut self,
        h_g: &Tensor,
        xa: &[f64],
        xm: &[f64],
    ) -> (f64, f64, Vec<f64>, Vec<f64>) {
        let mut g = Graph::new();
        let bound = self.params.bind(&mut g);
        let xm_var = g.leaf(Tensor::row_vector(xm));
        let (mu, sigma) = self.forward_with_embedding(&mut g, &bound, h_g, xa, xm_var, 1, false);
        let mu_val = g.value(mu).scalar();
        let sigma_val = g.value(sigma).scalar();
        let gmu = g.backward(mu);
        let dmu = gmu.get_or_zero(xm_var, 1, xm.len()).data().to_vec();
        let gsg = g.backward(sigma);
        let dsigma = gsg.get_or_zero(xm_var, 1, xm.len()).data().to_vec();
        (mu_val, sigma_val, dmu, dsigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmcmi_matgen::laplace_1d;

    fn small_cfg() -> SurrogateConfig {
        SurrogateConfig {
            gnn_hidden: 8,
            xa_hidden: 4,
            xm_hidden: 4,
            comb_hidden: 8,
            ..SurrogateConfig::lite(5, 6)
        }
    }

    fn toy_data() -> MatrixGraph {
        MatrixGraph::from_csr(&laplace_1d(6))
    }

    #[test]
    fn forward_shapes_and_head_ranges() {
        let mut s = Surrogate::new(small_cfg());
        let data = toy_data();
        let xa = [0.1, -0.2, 0.3, 0.0, 1.0];
        let xm = Tensor::from_vec(
            2,
            6,
            vec![
                1.0, 0.5, 0.5, 1.0, 0.0, 0.0, 2.0, 0.25, 0.125, 0.0, 1.0, 0.0,
            ],
        );
        let mut g = Graph::new();
        let bound = s.params.bind(&mut g);
        let xm_var = g.leaf(xm);
        let (mu, sigma) = s.forward(&mut g, &bound, &data, &xa, xm_var, 2, false);
        assert_eq!(g.value(mu).rows(), 2);
        assert_eq!(g.value(sigma).rows(), 2);
        // Heads respect their codomain: μ̂ ≥ 0, σ̂ > 0.
        assert!(g.value(mu).data().iter().all(|&v| v >= 0.0));
        assert!(g.value(sigma).data().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn embedding_fast_path_matches_full_forward() {
        let mut s = Surrogate::new(small_cfg());
        let data = toy_data();
        let xa = [0.5, 0.5, -0.5, 0.2, 0.0];
        let xm = [1.0, 0.5, 0.25, 1.0, 0.0, 0.0];
        let h_g = s.embed_graph(&data);
        let (mu_fast, sg_fast) = s.predict(&h_g, &xa, &xm);
        // Full forward.
        let mut g = Graph::new();
        let bound = s.params.bind(&mut g);
        let xm_var = g.leaf(Tensor::row_vector(&xm));
        let (mu, sigma) = s.forward(&mut g, &bound, &data, &xa, xm_var, 1, false);
        assert!((g.value(mu).scalar() - mu_fast).abs() < 1e-12);
        assert!((g.value(sigma).scalar() - sg_fast).abs() < 1e-12);
    }

    #[test]
    fn input_gradients_match_finite_differences() {
        let mut s = Surrogate::new(small_cfg());
        let data = toy_data();
        let xa = [0.3, -0.1, 0.7, 0.2, 0.9];
        let xm = [1.5, 0.4, 0.3, 1.0, 0.0, 0.0];
        let h_g = s.embed_graph(&data);
        let (_, _, dmu, dsigma) = s.predict_grad(&h_g, &xa, &xm);
        let h = 1e-6;
        for k in 0..xm.len() {
            let mut xp = xm;
            xp[k] += h;
            let (mu_p, sg_p) = s.predict(&h_g, &xa, &xp);
            xp[k] -= 2.0 * h;
            let (mu_m, sg_m) = s.predict(&h_g, &xa, &xp);
            let nmu = (mu_p - mu_m) / (2.0 * h);
            let nsg = (sg_p - sg_m) / (2.0 * h);
            assert!((dmu[k] - nmu).abs() < 1e-5, "dmu[{k}]: {} vs {nmu}", dmu[k]);
            assert!(
                (dsigma[k] - nsg).abs() < 1e-5,
                "dsigma[{k}]: {} vs {nsg}",
                dsigma[k]
            );
        }
    }

    #[test]
    fn snapshot_roundtrip_preserves_predictions() {
        let mut s = Surrogate::new(small_cfg());
        let data = toy_data();
        let xa = [0.0, 0.1, 0.2, 0.3, 0.4];
        let xm = [2.0, 0.25, 0.5, 0.0, 1.0, 0.0];
        let h_g = s.embed_graph(&data);
        let before = s.predict(&h_g, &xa, &xm);
        let json = serde_json::to_string(&s.snapshot()).unwrap();
        let snap: SurrogateSnapshot = serde_json::from_str(&json).unwrap();
        let mut s2 = Surrogate::from_snapshot(snap);
        let h_g2 = s2.embed_graph(&data);
        let after = s2.predict(&h_g2, &xa, &xm);
        assert!((before.0 - after.0).abs() < 1e-12);
        assert!((before.1 - after.1).abs() < 1e-12);
    }

    #[test]
    fn different_graphs_give_different_embeddings() {
        let mut s = Surrogate::new(small_cfg());
        let d1 = MatrixGraph::from_csr(&laplace_1d(6));
        let d2 = MatrixGraph::from_csr(&mcmcmi_matgen::fd_laplace_2d(4));
        let h1 = s.embed_graph(&d1);
        let h2 = s.embed_graph(&d2);
        assert_ne!(h1, h2);
    }

    #[test]
    fn all_conv_kinds_run() {
        for conv in [
            ConvKind::EdgeConv,
            ConvKind::Gine,
            ConvKind::Gcn,
            ConvKind::GatV2,
            ConvKind::Pna,
        ] {
            let cfg = SurrogateConfig {
                conv,
                ..small_cfg()
            };
            let mut s = Surrogate::new(cfg);
            let data = toy_data();
            let h = s.embed_graph(&data);
            assert_eq!(h.cols(), 8, "{conv:?}");
            assert!(h.data().iter().all(|v| v.is_finite()), "{conv:?}");
        }
    }

    #[test]
    fn dropout_only_active_in_training_mode() {
        let mut s = Surrogate::new(SurrogateConfig {
            dropout: 0.5,
            ..small_cfg()
        });
        let data = toy_data();
        let xa = [0.1; 5];
        let xm = [1.0, 0.5, 0.5, 1.0, 0.0, 0.0];
        let h_g = s.embed_graph(&data);
        // Inference is deterministic.
        let p1 = s.predict(&h_g, &xa, &xm);
        let p2 = s.predict(&h_g, &xa, &xm);
        assert_eq!(p1, p2);
    }
}
