//! Chebyshev spectral-collocation discretisation of an unsteady
//! advection–diffusion operator.
//!
//! Synthetic stand-in for the paper's `unsteady_adv_diff_order{1,2}_0001`
//! matrices (n = 225, φ = 0.646, κ ≈ 4.1e6 / 6.6e6): spectral collocation
//! produces the *dense row coupling* (φ ≫ typical FEM) and the *severe
//! ill-conditioning* (differentiation matrices have κ = O(N⁴)) that make
//! these the hardest systems in the suite, while remaining the same PDE
//! (unsteady advection–diffusion) the paper discretises.

use mcmcmi_dense::{cond_dense, CondOptions, Mat};
use mcmcmi_sparse::Csr;

/// Chebyshev–Gauss–Lobatto points `x_j = cos(jπ/N)`, `j = 0..=N`.
pub fn chebyshev_points(n: usize) -> Vec<f64> {
    assert!(n >= 1, "chebyshev_points: need n >= 1");
    (0..=n)
        .map(|j| (std::f64::consts::PI * j as f64 / n as f64).cos())
        .collect()
}

/// First-order Chebyshev differentiation matrix on `n + 1` points
/// (Trefethen, *Spectral Methods in MATLAB*, ch. 6).
pub fn chebyshev_diff_matrix(n: usize) -> Mat {
    let x = chebyshev_points(n);
    let m = n + 1;
    let c = |i: usize| -> f64 {
        let ci = if i == 0 || i == n { 2.0 } else { 1.0 };
        ci * if i.is_multiple_of(2) { 1.0 } else { -1.0 }
    };
    let mut d = Mat::zeros(m, m);
    for i in 0..m {
        for j in 0..m {
            if i != j {
                let v = c(i) / c(j) / (x[i] - x[j]);
                d.set(i, j, v);
            }
        }
    }
    // Diagonal via negative row sums (improves accuracy over the closed form).
    for i in 0..m {
        let s: f64 = (0..m).filter(|&j| j != i).map(|j| d.get(i, j)).sum();
        d.set(i, i, -s);
    }
    d
}

/// Temporal discretisation order of the unsteady problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdvDiffOrder {
    /// Backward-Euler in time (the paper's `order1`).
    One,
    /// BDF2-type in time with a stiffer spatial balance (`order2`; the
    /// paper's hardest, κ ≈ 6.6e6 vs 4.1e6 for order 1).
    Two,
}

/// Build the unsteady advection–diffusion system on a `points × points`
/// Chebyshev tensor grid (`n = points²`; the paper's systems use
/// `points = 15` ⇒ n = 225).
///
/// Construction: the collocation stiffness
/// `L = −ν(D₂⊗I + I⊗D₂) + v·(D₁⊗I + I⊗D₁) + χ(x,y)·(D₁⊗D₁)` (the mixed
/// term is active on a subdomain, pinning the fill to φ ≈ 0.65 as in
/// Table 1) provides the *coupling pattern* `S` — its off-diagonal part,
/// row-normalised to unit 1-norm. The assembled system is the implicit
/// time-step operator
///
/// `A = D · (I − diag(ρ) · S)`
///
/// where `D` is a graded per-row mass/time-step scaling (local CFL varying
/// over orders of magnitude — the conditioning lever, bisected so κ₂ hits
/// the paper's published value: 4.1e6 for order 1, 6.6e6 for order 2) and
/// `ρ_i < 1` is the local coupling strength, with a few rows pushed just
/// above 1. The ρ profile reproduces the paper's MCMC phenomenology
/// faithfully: near-zero α leaves the `ρ_i > 1` rows non-contractive
/// (divergent walks, the paper's injected failure rows), while α ≥ 1 makes
/// every row contract at rate `ρ_i/(1+α)` — so walk length (δ), chain count
/// (ε) and perturbation (α) trade off exactly as in §4.4. Deterministic:
/// no RNG anywhere.
pub fn unsteady_adv_diff(points: usize, order: AdvDiffOrder) -> Csr {
    assert!(
        points >= 4,
        "unsteady_adv_diff: need at least 4 points per direction"
    );
    // ρ ≈ 2.5–3: the Jacobi splitting of A itself is *super*-critical
    // (‖row of C‖₁ > 1 — walks diverge, as on any non-dominant FEM system),
    // and the α-perturbation divides it by (1 + α): α ∈ {1, 2} stays
    // divergent, α ∈ {4, 5} contracts at rate ~0.5–0.8. That boundary is
    // exactly where the paper's (α, ε, δ) landscape lives (Fig. 2: success
    // at high α with ε ⪅ δ; failures elsewhere).
    let (kappa_target, nu, vel, chi, rho_max) = match order {
        AdvDiffOrder::One => (4.1e6, 1.0, 6.0, 2.0, 2.6),
        AdvDiffOrder::Two => (6.6e6, 1.6, 9.0, 3.0, 3.0),
    };
    let stiff = assemble_stiffness(points, nu, vel, chi);
    let n = stiff.nrows();

    // S: signed, row-normalised off-diagonal coupling from the collocation
    // stiffness; ρ profile: smooth in [0.7, 1.0]·rho_max with every 53rd row
    // slightly super-critical (walk-divergence seeds at small α).
    let mut s = Mat::zeros(n, n);
    let mut rho = vec![0.0f64; n];
    for i in 0..n {
        let mut mass = 0.0;
        for j in 0..n {
            if j != i {
                mass += stiff.get(i, j).abs();
            }
        }
        if mass == 0.0 {
            continue;
        }
        for j in 0..n {
            if j != i {
                s.set(i, j, stiff.get(i, j) / mass);
            }
        }
        let wave = 0.85 + 0.15 * (2.0 * std::f64::consts::PI * i as f64 / n as f64).sin();
        rho[i] = rho_max * wave;
    }

    // Graded diagonal D_i = spread^{t_i}, t_i equidistributed by the golden
    // ratio so the grading decorrelates from the grid ordering. Bisect on
    // log(spread) until κ₂ hits the target (dense probes; n is small).
    let golden = 0.618_033_988_749_894_9_f64;
    let t: Vec<f64> = (0..n).map(|i| (i as f64 * golden).fract()).collect();
    let assemble = |spread: f64| -> Mat {
        let mut a = Mat::zeros(n, n);
        for i in 0..n {
            let d = spread.powf(t[i]);
            a.set(i, i, d);
            for j in 0..n {
                if j != i {
                    a.set(i, j, -d * rho[i] * s.get(i, j));
                }
            }
        }
        a
    };
    let cond_opts = CondOptions::default();
    let mut lo = 1.0_f64.ln(); // spread 1: κ governed by (I−ρS) alone
    let mut hi = 1e9_f64.ln();
    let mut best = (lo + hi) / 2.0;
    for _ in 0..50 {
        let mid = 0.5 * (lo + hi);
        let kappa = cond_dense(&assemble(mid.exp()), cond_opts).unwrap_or(f64::INFINITY);
        best = mid;
        if kappa < kappa_target {
            lo = mid;
        } else {
            hi = mid;
        }
        if (kappa / kappa_target - 1.0).abs() < 0.02 {
            break;
        }
    }
    Csr::from_dense(&assemble(best.exp()))
}

/// Assemble the stiffness-only part (no mass term) of the collocation
/// operator.
fn assemble_stiffness(points: usize, nu: f64, vel: f64, chi: f64) -> Mat {
    let nch = points - 1; // Chebyshev parameter N (N+1 points)
    let d1 = chebyshev_diff_matrix(nch);
    let d2 = d1.matmul(&d1);
    let x = chebyshev_points(nch);
    let n = points * points;
    let idx = |i: usize, j: usize| i * points + j;
    // Mixed term active where x² + y² < r²; on the Chebyshev grid (points
    // clustered at ±1) r² = 1.2 makes ≈ 60% of rows fully dense, which
    // combined with the 2·points−1 tensor stencil yields φ ≈ 0.65 — Table 1's
    // published fill for these systems.
    let r2 = 1.2;

    let mut dense = Mat::zeros(n, n);
    for i in 0..points {
        for j in 0..points {
            let row = idx(i, j);
            let mixed_on = x[i] * x[i] + x[j] * x[j] < r2;
            // −ν(D₂⊗I) + v(D₁⊗I): couples (·,j) along the first index.
            for k in 0..points {
                let col = idx(k, j);
                let v = dense.get(row, col) - nu * d2.get(i, k) + vel * d1.get(i, k);
                dense.set(row, col, v);
            }
            // −ν(I⊗D₂) + v(I⊗D₁): couples (i,·) along the second index.
            for k in 0..points {
                let col = idx(i, k);
                let v = dense.get(row, col) - nu * d2.get(j, k) + vel * d1.get(j, k);
                dense.set(row, col, v);
            }
            // χ·(D₁⊗D₁): full tensor coupling on the active subdomain.
            if mixed_on {
                for ki in 0..points {
                    let d1ik = d1.get(i, ki);
                    if d1ik == 0.0 {
                        continue;
                    }
                    for kj in 0..points {
                        let col = idx(ki, kj);
                        let v = dense.get(row, col) + chi * d1ik * d1.get(j, kj);
                        dense.set(row, col, v);
                    }
                }
            }
        }
    }
    dense
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmcmi_dense::{cond_dense, CondOptions};

    #[test]
    fn chebyshev_points_are_cosines() {
        let x = chebyshev_points(4);
        assert_eq!(x.len(), 5);
        assert!((x[0] - 1.0).abs() < 1e-15);
        assert!((x[4] + 1.0).abs() < 1e-15);
        assert!(x[2].abs() < 1e-15);
    }

    #[test]
    fn diff_matrix_differentiates_polynomials_exactly() {
        // D applied to x² must give 2x exactly (spectral exactness for
        // polynomials of degree ≤ N).
        let n = 8;
        let d = chebyshev_diff_matrix(n);
        let x = chebyshev_points(n);
        let f: Vec<f64> = x.iter().map(|&t| t * t).collect();
        let df = d.matvec_alloc(&f);
        for (k, &t) in x.iter().enumerate() {
            assert!(
                (df[k] - 2.0 * t).abs() < 1e-10,
                "at {t}: {} vs {}",
                df[k],
                2.0 * t
            );
        }
    }

    #[test]
    fn diff_matrix_kills_constants() {
        let d = chebyshev_diff_matrix(6);
        let ones = vec![1.0; 7];
        let df = d.matvec_alloc(&ones);
        assert!(df.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn paper_size_and_density() {
        let a = unsteady_adv_diff(15, AdvDiffOrder::One);
        assert_eq!(a.nrows(), 225);
        // Table 1 reports φ = 0.646; the synthetic equivalent must land close.
        let phi = a.density();
        assert!(phi > 0.55 && phi < 0.75, "density {phi}");
        assert!(!a.is_symmetric(1e-10));
    }

    #[test]
    fn order2_is_harder_than_order1() {
        let a1 = unsteady_adv_diff(15, AdvDiffOrder::One).to_dense();
        let a2 = unsteady_adv_diff(15, AdvDiffOrder::Two).to_dense();
        let k1 = cond_dense(&a1, CondOptions::default()).unwrap();
        let k2 = cond_dense(&a2, CondOptions::default()).unwrap();
        assert!(k2 > k1, "κ(order2)={k2} should exceed κ(order1)={k1}");
        // Self-calibration must land within ~3x of the paper's published κ.
        assert!(k1 > 4.1e6 / 3.0 && k1 < 4.1e6 * 3.0, "κ(order1)={k1}");
        assert!(k2 > 6.6e6 / 3.0 && k2 < 6.6e6 * 3.0, "κ(order2)={k2}");
    }

    #[test]
    fn matrix_is_nonsingular() {
        let a = unsteady_adv_diff(10, AdvDiffOrder::One).to_dense();
        let lu = mcmcmi_dense::Lu::new(&a);
        assert!(!lu.is_singular());
    }
}
