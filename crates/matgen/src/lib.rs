//! Generators for the paper's matrix suite (Table 1) and parameterised
//! families of test systems.
//!
//! None of the paper's matrices ship with the paper, so each is regenerated
//! as a synthetic equivalent with the same dimension, symmetry, sparsity
//! class and conditioning regime (see DESIGN.md §3 for the substitution
//! table). The 2D finite-difference Laplacians are *exactly* the paper's
//! operators; the rest are same-class surrogates.

pub mod chebyshev;
pub mod drift;
pub mod families;
pub mod random;
pub mod suite;

pub use chebyshev::{chebyshev_diff_matrix, chebyshev_points, unsteady_adv_diff, AdvDiffOrder};
pub use drift::{
    CoefficientDrift, DiagonalShiftDrift, DriftStep, JacobianRelinearization, MeshRefinementDrift,
};
pub use families::{
    banded_climate_rows, banded_climate_rows_with_structure, convection_diffusion_2d,
    convection_diffusion_2d_with_structure, fd_laplace_2d, fd_laplace_2d_with_structure,
    laplace_1d, laplace_1d_with_structure, stretched_climate_operator, ConvectionDiffusionParams,
    StructureTruth,
};
pub use random::{pdd_real_sparse, pdd_real_sparse_scaled, random_sparse, spd_random};
pub use suite::{analytic_laplace_cond_2d, PaperMatrix, PaperRow};
