//! Random sparse matrix families, all deterministic given a seed.

use mcmcmi_sparse::{Coo, Csr};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// General random sparse matrix: `n × n`, expected fill `density`, entries
/// uniform in [-1, 1]. No structural guarantees — utility for tests.
pub fn random_sparse(n: usize, density: f64, seed: u64) -> Csr {
    assert!(
        (0.0..=1.0).contains(&density),
        "random_sparse: density in [0,1]"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut coo = Coo::with_capacity(n, n, (density * (n * n) as f64) as usize + n);
    for i in 0..n {
        for j in 0..n {
            if rng.gen::<f64>() < density {
                coo.push(i, j, rng.gen_range(-1.0..1.0));
            }
        }
    }
    coo.to_csr()
}

/// `PDD_RealSparse`-style matrix: random sparse, strictly diagonally
/// dominant ("PDD"), density ≈ 0.1, κ of order 10 — matching the paper's
/// `PDD_RealSparse_N{64,128,256}` rows in Table 1 (κ ∈ [5, 13]).
///
/// Every row gets `a_ii = Σ_{j≠i}|a_ij| + slack`, with `slack` drawn from
/// [0.5, 1.5]; strict dominance keeps κ small and all walk-based
/// preconditioners convergent — these are the "easy" systems of the suite.
pub fn pdd_real_sparse(n: usize, seed: u64) -> Csr {
    let density = 0.1;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut coo = Coo::with_capacity(n, n, (density * (n * n) as f64) as usize + n);
    let mut rowsums = vec![0.0f64; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.gen::<f64>() < density {
                let v: f64 = rng.gen_range(-1.0..1.0);
                coo.push(i, j, v);
                rowsums[i] += v.abs();
            }
        }
    }
    for (i, &s) in rowsums.iter().enumerate() {
        coo.push(i, i, s + rng.gen_range(0.5..1.5));
    }
    coo.to_csr()
}

/// Operational-scale member of the `PDD_RealSparse` family: strictly
/// diagonally dominant, off-diagonals uniform in [-1, 1], uniformly random
/// pattern (no locality), κ held in Table 1's band — but built in
/// O(n·row_nnz) so instances whose working set dwarfs the cache hierarchy
/// are cheap to generate. [`pdd_real_sparse`] scans all n² pairs, which
/// caps it at Table 1's n ≤ 256; this is the same family at the sizes the
/// accelerator literature targets, where transition sampling is
/// memory-latency-bound.
///
/// Each row draws `row_nnz` candidate columns uniformly (duplicates and
/// the diagonal are dropped, so the realised row degree is ≈ `row_nnz`).
/// The dominance slack scales *with* the off-diagonal rowsum —
/// `a_ii = (1 + u)·Σ|a_ij|`, u ∈ [0.18, 0.45] — rather than the absolute
/// O(1) slack of [`pdd_real_sparse`]: at row degree d the rowsum grows
/// like d/2, so absolute slack would drive κ ∝ d out of the family's
/// κ ∈ [5, 13] regime, while proportional slack pins κ ≈ (2 + u)/u there
/// at every degree.
pub fn pdd_real_sparse_scaled(n: usize, row_nnz: usize, seed: u64) -> Csr {
    assert!(n > 0, "pdd_real_sparse_scaled: empty matrix");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut coo = Coo::with_capacity(n, n, n * (row_nnz + 1));
    let mut cols: Vec<usize> = Vec::with_capacity(row_nnz);
    for i in 0..n {
        cols.clear();
        for _ in 0..row_nnz {
            let j = rng.gen_range(0..n);
            if j != i {
                cols.push(j);
            }
        }
        cols.sort_unstable();
        cols.dedup();
        let mut rowsum = 0.0;
        for &j in &cols {
            let v: f64 = rng.gen_range(-1.0..1.0);
            coo.push(i, j, v);
            rowsum += v.abs();
        }
        let u: f64 = rng.gen_range(0.18..0.45);
        coo.push(i, i, (1.0 + u) * rowsum.max(1.0));
    }
    coo.to_csr()
}

/// Random symmetric positive definite matrix with controlled condition
/// number: `A = QΛQᵀ + sparsification`, built dense then thresholded. For
/// modest `n` only (used by CG tests and SPD examples).
pub fn spd_random(n: usize, cond: f64, seed: u64) -> Csr {
    assert!(cond >= 1.0, "spd_random: condition number must be >= 1");
    use mcmcmi_dense::{orthonormal_columns, Mat};
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Random Gaussian-ish matrix → orthonormal Q.
    let mut g = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            // Box–Muller from two uniforms.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen::<f64>();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            g.set(i, j, z);
        }
    }
    let q = orthonormal_columns(&g);
    // Geometric eigenvalue spread from 1 to cond.
    let mut a = Mat::zeros(n, n);
    for k in 0..n {
        let lambda = cond.powf(k as f64 / (n.max(2) - 1) as f64);
        // A += λ q_k q_kᵀ
        for i in 0..n {
            let qik = q.get(i, k);
            if qik == 0.0 {
                continue;
            }
            for j in 0..n {
                let v = a.get(i, j) + lambda * qik * q.get(j, k);
                a.set(i, j, v);
            }
        }
    }
    // Exact symmetrisation to cancel rounding asymmetry.
    for i in 0..n {
        for j in (i + 1)..n {
            let s = 0.5 * (a.get(i, j) + a.get(j, i));
            a.set(i, j, s);
            a.set(j, i, s);
        }
    }
    Csr::from_dense(&a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmcmi_dense::{cond_dense, CondOptions};

    #[test]
    fn random_sparse_is_deterministic() {
        let a = random_sparse(30, 0.2, 9);
        let b = random_sparse(30, 0.2, 9);
        assert_eq!(a, b);
        let c = random_sparse(30, 0.2, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn random_sparse_density_close_to_target() {
        let a = random_sparse(100, 0.15, 3);
        let phi = a.density();
        assert!((phi - 0.15).abs() < 0.04, "density {phi}");
    }

    #[test]
    fn pdd_is_strictly_diagonally_dominant() {
        let a = pdd_real_sparse(64, 11);
        for i in 0..a.nrows() {
            let mut off = 0.0;
            let mut diag = 0.0;
            for (&j, &v) in a.row_indices(i).iter().zip(a.row_values(i)) {
                if j == i {
                    diag = v.abs();
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off, "row {i} not dominant: {diag} <= {off}");
        }
    }

    #[test]
    fn pdd_matches_paper_regime() {
        // Table 1: PDD matrices have κ ∈ [5, 13] and φ ≈ 0.1.
        let a = pdd_real_sparse(64, 11);
        assert!((a.density() - 0.1).abs() < 0.04, "density {}", a.density());
        let k = cond_dense(&a.to_dense(), CondOptions::default()).unwrap();
        assert!(k > 1.5 && k < 50.0, "κ = {k}");
    }

    #[test]
    fn pdd_scaled_is_dominant_deterministic_and_linear_sized() {
        let a = pdd_real_sparse_scaled(4096, 24, 7);
        assert_eq!(a.nrows(), 4096);
        // O(n·row_nnz) fill: each row holds ≈ row_nnz off-diagonals + diag.
        let nnz = a.nnz();
        assert!(
            nnz > 4096 * 18 && nnz <= 4096 * 25,
            "nnz {nnz} outside expected band"
        );
        for i in 0..a.nrows() {
            let mut off = 0.0;
            let mut diag = 0.0;
            for (&j, &v) in a.row_indices(i).iter().zip(a.row_values(i)) {
                if j == i {
                    diag = v.abs();
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off, "row {i} not dominant: {diag} <= {off}");
        }
        let b = pdd_real_sparse_scaled(4096, 24, 7);
        assert_eq!(a, b);
        let c = pdd_real_sparse_scaled(4096, 24, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn pdd_scaled_stays_in_the_paper_kappa_band() {
        // Proportional slack keeps κ in the Table-1 regime at any degree.
        for row_nnz in [6, 24] {
            let a = pdd_real_sparse_scaled(64, row_nnz, 3);
            let k = cond_dense(&a.to_dense(), CondOptions::default()).unwrap();
            assert!(k > 1.5 && k < 50.0, "row_nnz {row_nnz}: κ = {k}");
        }
    }

    #[test]
    fn spd_random_is_spd_with_target_cond() {
        let a = spd_random(24, 100.0, 5);
        assert!(a.is_symmetric(1e-9));
        let k = cond_dense(&a.to_dense(), CondOptions::default()).unwrap();
        assert!((k - 100.0).abs() / 100.0 < 0.05, "κ = {k}");
        // Positive definite: xᵀAx > 0 for a few random x.
        let n = a.nrows();
        for s in 0..3 {
            let x: Vec<f64> = (0..n)
                .map(|i| ((i * 7 + s * 13) as f64 * 0.37).sin())
                .collect();
            let ax = a.spmv_alloc(&x);
            let q: f64 = x.iter().zip(&ax).map(|(p, v)| p * v).sum();
            assert!(q > 0.0);
        }
    }
}
