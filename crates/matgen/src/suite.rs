//! The paper's matrix suite (Table 1) as an enumerable registry.

use crate::chebyshev::{unsteady_adv_diff, AdvDiffOrder};
use crate::families::{
    convection_diffusion_2d, fd_laplace_2d, stretched_climate_operator, ConvectionDiffusionParams,
};
use crate::random::pdd_real_sparse;
use mcmcmi_sparse::Csr;

/// Identifiers for the twelve systems of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PaperMatrix {
    /// 2D FD Laplacian, mesh width 1/16 (n = 225, SPD).
    Laplace16,
    /// 2D FD Laplacian, 1/32 (n = 961).
    Laplace32,
    /// 2D FD Laplacian, 1/64 (n = 3 969).
    Laplace64,
    /// 2D FD Laplacian, 1/128 (n = 16 129).
    Laplace128,
    /// Climate-simulation operator surrogate (n = 20 930).
    NonsymR3A11,
    /// Plasma-physics FEM surrogate, coarse (n = 512).
    A00512,
    /// Plasma-physics FEM surrogate, fine (n = 8 192).
    A08192,
    /// Unsteady advection–diffusion, order 1 (n = 225).
    UnsteadyAdvDiffOrder1,
    /// Unsteady advection–diffusion, order 2 (n = 225) — the unseen test
    /// system of the paper's evaluation.
    UnsteadyAdvDiffOrder2,
    /// Well-conditioned random sparse, n = 64.
    PddRealSparseN64,
    /// Well-conditioned random sparse, n = 128.
    PddRealSparseN128,
    /// Well-conditioned random sparse, n = 256.
    PddRealSparseN256,
}

/// A row of Table 1: the paper's published values for one matrix.
#[derive(Clone, Debug)]
pub struct PaperRow {
    /// Matrix identifier.
    pub id: PaperMatrix,
    /// Name exactly as printed in the paper.
    pub name: &'static str,
    /// Published dimension.
    pub n: usize,
    /// Published symmetricity.
    pub symmetric: bool,
    /// Published condition number κ(A).
    pub kappa: f64,
    /// Published fill density φ(A).
    pub phi: f64,
}

impl PaperMatrix {
    /// All twelve matrices in Table-1 order.
    pub fn all() -> [PaperMatrix; 12] {
        use PaperMatrix::*;
        [
            Laplace16,
            Laplace32,
            Laplace64,
            Laplace128,
            NonsymR3A11,
            A00512,
            A08192,
            UnsteadyAdvDiffOrder1,
            UnsteadyAdvDiffOrder2,
            PddRealSparseN64,
            PddRealSparseN128,
            PddRealSparseN256,
        ]
    }

    /// The subset used for the `--lite` experiment profiles: everything that
    /// factors/solves in milliseconds on a laptop (n ≤ 1 000).
    pub fn lite_training_set() -> Vec<PaperMatrix> {
        use PaperMatrix::*;
        vec![
            Laplace16,
            Laplace32,
            A00512,
            UnsteadyAdvDiffOrder1,
            PddRealSparseN64,
            PddRealSparseN128,
            PddRealSparseN256,
        ]
    }

    /// The paper's Table-1 row for this matrix (published values).
    pub fn paper_row(self) -> PaperRow {
        use PaperMatrix::*;
        let (name, n, symmetric, kappa, phi) = match self {
            Laplace16 => ("2DFDLaplace_16", 225, true, 1.0e2, 0.042),
            Laplace32 => ("2DFDLaplace_32", 961, true, 4.1e2, 0.001),
            Laplace64 => ("2DFDLaplace_64", 3_969, true, 1.7e3, 0.0024),
            Laplace128 => ("2DFDLaplace_128", 16_129, true, 6.6e3, 0.0006),
            NonsymR3A11 => ("nonsym_r3_a11", 20_930, false, 1.9e4, 0.0044),
            A00512 => ("a00512", 512, false, 1.9e3, 0.059),
            A08192 => ("a08192", 8_192, false, 3.2e5, 0.0007),
            UnsteadyAdvDiffOrder1 => ("unsteady_adv_diff_order1_0001", 225, false, 4.1e6, 0.646),
            UnsteadyAdvDiffOrder2 => ("unsteady_adv_diff_order2_0001", 225, false, 6.6e6, 0.646),
            PddRealSparseN64 => ("PDD_RealSparse_N64", 64, false, 1.3e1, 0.1),
            PddRealSparseN128 => ("PDD_RealSparse_N128", 128, false, 5.0, 0.1),
            PddRealSparseN256 => ("PDD_RealSparse_N256", 256, false, 7.0, 0.1),
        };
        PaperRow {
            id: self,
            name,
            n,
            symmetric,
            kappa,
            phi,
        }
    }

    /// Generate the synthetic equivalent of this matrix (deterministic).
    pub fn generate(self) -> Csr {
        use PaperMatrix::*;
        match self {
            Laplace16 => fd_laplace_2d(16),
            Laplace32 => fd_laplace_2d(32),
            Laplace64 => fd_laplace_2d(64),
            Laplace128 => fd_laplace_2d(128),
            NonsymR3A11 => stretched_climate_operator(91, 230, 44, 1.0),
            A00512 => convection_diffusion_2d(ConvectionDiffusionParams {
                nx: 32,
                ny: 16,
                eps: 1.0,
                aniso: 0.05,
                wind: 5.0,
                contrast: 40.0,
                wide: true,
            }),
            A08192 => convection_diffusion_2d(ConvectionDiffusionParams {
                nx: 128,
                ny: 64,
                eps: 1.0,
                aniso: 0.01,
                wind: 10.0,
                contrast: 15_000.0,
                wide: false,
            }),
            UnsteadyAdvDiffOrder1 => unsteady_adv_diff(15, AdvDiffOrder::One),
            UnsteadyAdvDiffOrder2 => unsteady_adv_diff(15, AdvDiffOrder::Two),
            PddRealSparseN64 => pdd_real_sparse(64, 64),
            PddRealSparseN128 => pdd_real_sparse(128, 128),
            PddRealSparseN256 => pdd_real_sparse(256, 256),
        }
    }

    /// Whether the generated matrix is symmetric positive definite (and thus
    /// eligible for CG, as in the paper's dataset construction).
    pub fn is_spd(self) -> bool {
        matches!(
            self,
            PaperMatrix::Laplace16
                | PaperMatrix::Laplace32
                | PaperMatrix::Laplace64
                | PaperMatrix::Laplace128
        )
    }
}

/// Analytic 2-norm condition number of the unscaled five-point 2D FD
/// Laplacian with mesh parameter `k` (h = 1/k, (k−1)² unknowns):
/// eigenvalues are `4 − 2cos(iπ/k) − 2cos(jπ/k)`, so
/// `κ = (4 + 4cos(π/k)) / (4 − 4cos(π/k)) = cot²(π/(2k))`.
pub fn analytic_laplace_cond_2d(k: usize) -> f64 {
    let t = std::f64::consts::PI / (2.0 * k as f64);
    let c = t.cos() / t.sin();
    c * c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_matrices_have_published_dimensions() {
        // Generating the largest systems is deliberately included: the suite
        // must be constructible end to end. (~2 M nnz for the climate case.)
        for m in PaperMatrix::all() {
            let row = m.paper_row();
            let a = m.generate();
            assert_eq!(a.nrows(), row.n, "{} dimension", row.name);
            assert_eq!(a.ncols(), row.n, "{} squareness", row.name);
        }
    }

    #[test]
    fn symmetricity_matches_table() {
        for m in PaperMatrix::all() {
            let row = m.paper_row();
            let a = m.generate();
            assert_eq!(
                a.is_symmetric(1e-10),
                row.symmetric,
                "{} symmetricity",
                row.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PaperMatrix::PddRealSparseN64.generate();
        let b = PaperMatrix::PddRealSparseN64.generate();
        assert_eq!(a, b);
    }

    #[test]
    fn analytic_laplace_cond_matches_published_magnitudes() {
        // Paper: 1.0e2, 4.1e2, 1.7e3, 6.6e3.
        assert!((analytic_laplace_cond_2d(16) / 1.0e2 - 1.0).abs() < 0.1);
        assert!((analytic_laplace_cond_2d(32) / 4.1e2 - 1.0).abs() < 0.1);
        assert!((analytic_laplace_cond_2d(64) / 1.7e3 - 1.0).abs() < 0.1);
        assert!((analytic_laplace_cond_2d(128) / 6.6e3 - 1.0).abs() < 0.1);
    }

    #[test]
    fn analytic_cond_quadruples_per_refinement() {
        // O(h⁻²) scaling: each mesh halving multiplies κ by ~4.
        let r1 = analytic_laplace_cond_2d(32) / analytic_laplace_cond_2d(16);
        let r2 = analytic_laplace_cond_2d(64) / analytic_laplace_cond_2d(32);
        assert!((r1 - 4.0).abs() < 0.2, "ratio {r1}");
        assert!((r2 - 4.0).abs() < 0.1, "ratio {r2}");
    }

    #[test]
    fn climate_surrogate_density_matches_table() {
        let a = PaperMatrix::NonsymR3A11.generate();
        let phi = a.density();
        // Paper: 0.0044.
        assert!(phi > 0.003 && phi < 0.006, "density {phi}");
    }

    #[test]
    fn lite_set_is_small_matrices_only() {
        for m in PaperMatrix::lite_training_set() {
            assert!(m.paper_row().n <= 1000);
        }
    }
}
