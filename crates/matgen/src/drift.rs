//! Drifting operator sequences with exact dirty-row ground truth.
//!
//! The drift-tolerant solve path (`mcmcmi_core::drift`) needs realistic
//! *sequences* of nearby operators to exercise warm starts, staleness
//! monitoring, and partial rebuilds — and its tests need to know exactly
//! which rows each step changed, independently of the CSR diff that the
//! production path computes. Each generator here is an iterator-style
//! stepper: [`DriftStep::advance`] returns the next operator in the
//! sequence *plus* the exact set of rows whose values differ from the
//! previous operator's.
//!
//! The generators model regimes the paper's serving scenario meets:
//!
//! * [`CoefficientDrift`] — slow PDE-coefficient evolution: a seeded
//!   random subset of rows is rescaled a little each step (time-varying
//!   material parameters). Note that *whole-row* rescaling leaves the
//!   Jacobi-splitting walk matrix `I − D⁻¹A` invariant (diagonal and
//!   off-diagonals scale together), so the MCMC preconditioner family is
//!   nearly immune to it — good for exercising the bookkeeping, useless
//!   for staling a preconditioner.
//! * [`DiagonalShiftDrift`] — reaction/mass-term drift: only the
//!   *diagonal* of picked rows moves, which changes the
//!   off-diagonal-to-diagonal ratio and therefore the walk matrix itself.
//!   This is the generator that genuinely degrades a stale
//!   preconditioner.
//! * [`MeshRefinementDrift`] — local refinement: a moving window of a 2D
//!   finite-difference Laplacian gets its entries strengthened, as if the
//!   mesh were locally refined around a feature travelling through the
//!   domain.
//! * [`JacobianRelinearization`] — Newton-style re-linearisation: rows
//!   whose accumulated coefficient change crosses a threshold are snapped
//!   to a fresh linearisation (large jumps on few rows), everything else
//!   stays bit-identical.
//!
//! Determinism: every generator derives its per-step randomness from
//! `(seed, step_index)`, so a sequence is reproducible and two generators
//! with the same seed produce identical drift histories.

use crate::families::fd_laplace_2d;
use mcmcmi_sparse::Csr;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One step of a drifting operator sequence: the drifted matrix and the
/// exact rows whose stored values changed from the previous step.
#[derive(Clone, Debug)]
pub struct DriftStep {
    /// The operator after this step.
    pub matrix: Csr,
    /// Exact dirty rows (sorted, deduplicated). Ground truth for testing
    /// `Csr::diff_rows` and the partial-rebuild path.
    pub dirty_rows: Vec<usize>,
}

fn step_rng(seed: u64, step: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(step + 1))
}

/// Slow coefficient evolution: each step rescales a seeded random subset
/// of rows by a factor near 1.
#[derive(Clone, Debug)]
pub struct CoefficientDrift {
    current: Csr,
    seed: u64,
    step: u64,
    /// Fraction of rows drifting per step.
    pub rows_per_step: f64,
    /// Maximum per-step relative change of a drifting row's values.
    pub magnitude: f64,
}

impl CoefficientDrift {
    /// A drift sequence starting from `a0`; `rows_per_step` is the
    /// fraction of rows rescaled each step (clamped to at least one row),
    /// `magnitude` the largest relative value change (e.g. `0.05` for ±5%).
    pub fn new(a0: Csr, rows_per_step: f64, magnitude: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rows_per_step));
        assert!(magnitude > 0.0 && magnitude < 1.0);
        Self {
            current: a0,
            seed,
            step: 0,
            rows_per_step,
            magnitude,
        }
    }

    /// The current operator (after all steps so far).
    pub fn current(&self) -> &Csr {
        &self.current
    }

    /// Advance one step and return the drifted operator plus exact dirty
    /// rows.
    pub fn advance(&mut self) -> DriftStep {
        let n = self.current.nrows();
        let mut rng = step_rng(self.seed, self.step);
        self.step += 1;
        let count = ((self.rows_per_step * n as f64).round() as usize).clamp(1, n);
        let mut dirty: Vec<usize> = (0..count).map(|_| rng.gen_range(0..n)).collect();
        dirty.sort_unstable();
        dirty.dedup();
        let mut next = self.current.clone();
        for &i in &dirty {
            let factor = 1.0 + rng.gen_range(-self.magnitude..self.magnitude);
            for v in next.row_values_mut(i) {
                *v *= factor;
            }
        }
        self.current = next.clone();
        DriftStep {
            matrix: next,
            dirty_rows: dirty,
        }
    }
}

/// Reaction/mass-term drift: each step multiplies the *diagonal* of a
/// seeded random subset of rows by a bounded multiplicative random walk
/// (state confined to `[min_state, max_state]` by reflection). Unlike
/// whole-row rescaling, moving only the diagonal changes the walk matrix
/// `I − D⁻¹A`, so a preconditioner built for an earlier operator really
/// does go stale — this is the drift regime the refresh ladder exists for.
///
/// With `min_state = 1` the walk never takes a diagonal below its base
/// value, so a diagonally dominant starting operator stays dominant for
/// the whole sequence. A `min_state < 1` lets the operator *harden* over
/// time (dominance margin shrinking toward the caller's floor) — the
/// caller is responsible for keeping `min_state · diag` dominant enough
/// for the downstream preconditioner.
#[derive(Clone, Debug)]
pub struct DiagonalShiftDrift {
    base_diag: Vec<f64>,
    current: Csr,
    state: Vec<f64>,
    seed: u64,
    step: u64,
    /// Fraction of rows drifting per step.
    pub rows_per_step: f64,
    /// Maximum per-step relative change of a drifting row's state.
    pub magnitude: f64,
    /// Lower bound of the per-row state (`0 < min_state ≤ 1`).
    pub min_state: f64,
    /// Upper bound of the per-row state (`≥ 1`).
    pub max_state: f64,
}

impl DiagonalShiftDrift {
    /// A diagonal-drift sequence starting from `a0` (all states start at
    /// 1). Every row must have a stored nonzero diagonal entry.
    /// `rows_per_step` is the fraction of rows whose diagonal moves each
    /// step (at least one), `magnitude` the largest relative per-step
    /// state change, `[min_state, max_state]` the bounds on the cumulative
    /// factor (`0 < min_state ≤ 1 ≤ max_state`, not both 1).
    pub fn new(
        a0: Csr,
        rows_per_step: f64,
        magnitude: f64,
        min_state: f64,
        max_state: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&rows_per_step));
        assert!(magnitude > 0.0 && magnitude < 1.0);
        assert!(min_state > 0.0 && min_state <= 1.0);
        assert!(max_state >= 1.0 && max_state > min_state);
        let n = a0.nrows();
        let base_diag: Vec<f64> = (0..n)
            .map(|i| {
                let pos = a0
                    .row_indices(i)
                    .binary_search(&i)
                    .unwrap_or_else(|_| panic!("row {i} has no stored diagonal"));
                let d = a0.row_values(i)[pos];
                assert!(d != 0.0, "row {i} has a zero diagonal");
                d
            })
            .collect();
        Self {
            base_diag,
            current: a0,
            state: vec![1.0; n],
            seed,
            step: 0,
            rows_per_step,
            magnitude,
            min_state,
            max_state,
        }
    }

    /// The current operator.
    pub fn current(&self) -> &Csr {
        &self.current
    }

    /// Advance one step and return the drifted operator plus exact dirty
    /// rows (rows whose stored diagonal actually changed bits).
    pub fn advance(&mut self) -> DriftStep {
        let n = self.current.nrows();
        let mut rng = step_rng(self.seed, self.step);
        self.step += 1;
        let count = ((self.rows_per_step * n as f64).round() as usize).clamp(1, n);
        let mut picked: Vec<usize> = (0..count).map(|_| rng.gen_range(0..n)).collect();
        picked.sort_unstable();
        picked.dedup();
        let mut next = self.current.clone();
        let mut dirty = Vec::new();
        for &i in &picked {
            let factor = 1.0 + rng.gen_range(-self.magnitude..self.magnitude);
            let mut proposed = self.state[i] * factor;
            if !(self.min_state..=self.max_state).contains(&proposed) {
                // Reflect off the range boundary: walk the other way.
                proposed = (self.state[i] / factor).clamp(self.min_state, self.max_state);
            }
            let pos = next
                .row_indices(i)
                .binary_search(&i)
                .expect("diagonal verified at construction");
            let old = next.row_values(i)[pos];
            let new = self.base_diag[i] * proposed;
            if new.to_bits() != old.to_bits() {
                next.row_values_mut(i)[pos] = new;
                self.state[i] = proposed;
                dirty.push(i);
            }
        }
        self.current = next.clone();
        DriftStep {
            matrix: next,
            dirty_rows: dirty,
        }
    }
}

/// Local mesh refinement on a 2D FD Laplacian: a square window of interior
/// grid points travels through the domain; rows inside the window get
/// their entries strengthened (refined local stencil), rows leaving the
/// window relax back to the base operator.
#[derive(Clone, Debug)]
pub struct MeshRefinementDrift {
    base: Csr,
    current: Csr,
    /// Interior points per direction of the underlying grid.
    m: usize,
    /// Window side length in grid points.
    window: usize,
    /// Refinement strength: refined rows are the base rows scaled by this.
    strength: f64,
    step: u64,
}

impl MeshRefinementDrift {
    /// A refinement sequence on the `k`-mesh Laplacian
    /// ([`fd_laplace_2d`], so `n = (k-1)²`), with a `window × window`
    /// refined patch whose position advances deterministically each step.
    /// `strength > 1` scales refined rows (a refined cell has a stiffer
    /// local stencil).
    pub fn new(k: usize, window: usize, strength: f64) -> Self {
        let base = fd_laplace_2d(k);
        let m = k - 1;
        assert!(window >= 1 && window <= m);
        assert!(strength > 1.0);
        Self {
            current: base.clone(),
            base,
            m,
            window,
            strength,
            step: 0,
        }
    }

    /// The current operator.
    pub fn current(&self) -> &Csr {
        &self.current
    }

    fn window_rows(&self, step: u64) -> Vec<usize> {
        // The window's top-left corner walks a diagonal lattice path, so
        // successive windows overlap (rows stay refined) and slowly move
        // (rows enter and leave).
        let span = self.m - self.window + 1;
        let r0 = (step as usize * 2) % span;
        let c0 = (step as usize) % span;
        let mut rows = Vec::with_capacity(self.window * self.window);
        for di in 0..self.window {
            for dj in 0..self.window {
                rows.push((r0 + di) * self.m + (c0 + dj));
            }
        }
        rows.sort_unstable();
        rows
    }

    /// Advance one step: refine the new window, relax rows that left it.
    pub fn advance(&mut self) -> DriftStep {
        let new_window = self.window_rows(self.step);
        let old_window = if self.step == 0 {
            Vec::new()
        } else {
            self.window_rows(self.step - 1)
        };
        self.step += 1;
        let mut next = self.current.clone();
        let mut dirty = Vec::new();
        // Rows leaving the window: restore base values.
        for &i in &old_window {
            if new_window.binary_search(&i).is_err() {
                next.row_values_mut(i)
                    .copy_from_slice(self.base.row_values(i));
                dirty.push(i);
            }
        }
        // Rows entering the window: refined stencil.
        for &i in &new_window {
            if old_window.binary_search(&i).is_err() {
                let base_vals = self.base.row_values(i).to_vec();
                for (v, &bv) in next.row_values_mut(i).iter_mut().zip(&base_vals) {
                    *v = bv * self.strength;
                }
                dirty.push(i);
            }
        }
        dirty.sort_unstable();
        self.current = next.clone();
        DriftStep {
            matrix: next,
            dirty_rows: dirty,
        }
    }
}

/// Newton-style re-linearisation: per-row "state" accumulates a seeded
/// pseudo-random increment each step; rows whose accumulated change
/// crosses `threshold` are re-linearised (values snapped to the base row
/// scaled by the new state) and their accumulator resets. Large jumps on
/// few rows — the opposite drift profile to [`CoefficientDrift`].
#[derive(Clone, Debug)]
pub struct JacobianRelinearization {
    base: Csr,
    current: Csr,
    state: Vec<f64>,
    accum: Vec<f64>,
    threshold: f64,
    seed: u64,
    step: u64,
}

impl JacobianRelinearization {
    /// A re-linearisation sequence starting from `a0` (which is also the
    /// state-1 linearisation). `threshold` is the accumulated relative
    /// state change that triggers a row's re-linearisation.
    pub fn new(a0: Csr, threshold: f64, seed: u64) -> Self {
        let n = a0.nrows();
        assert!(threshold > 0.0);
        Self {
            current: a0.clone(),
            base: a0,
            state: vec![1.0; n],
            accum: vec![0.0; n],
            threshold,
            seed,
            step: 0,
        }
    }

    /// The current operator.
    pub fn current(&self) -> &Csr {
        &self.current
    }

    /// Advance one step and return the new linearisation plus exactly the
    /// rows that were re-linearised.
    pub fn advance(&mut self) -> DriftStep {
        let n = self.current.nrows();
        let mut rng = step_rng(self.seed, self.step);
        self.step += 1;
        let mut next = self.current.clone();
        let mut dirty = Vec::new();
        for i in 0..n {
            self.accum[i] += rng.gen_range(0.0..self.threshold / 3.0);
            if self.accum[i] >= self.threshold {
                self.state[i] *= 1.0 + self.accum[i];
                self.accum[i] = 0.0;
                let s = self.state[i];
                let base_vals = self.base.row_values(i).to_vec();
                for (v, &bv) in next.row_values_mut(i).iter_mut().zip(&base_vals) {
                    *v = bv * s;
                }
                dirty.push(i);
            }
        }
        self.current = next.clone();
        DriftStep {
            matrix: next,
            dirty_rows: dirty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::pdd_real_sparse;

    /// Every generator's declared dirty set must exactly match the CSR
    /// value diff — that's the "ground truth" contract.
    fn check_ground_truth(prev: &Csr, step: &DriftStep) {
        assert_eq!(
            prev.diff_rows(&step.matrix),
            step.dirty_rows,
            "declared dirty rows must equal the value diff"
        );
    }

    #[test]
    fn coefficient_drift_dirty_rows_are_exact() {
        let a0 = pdd_real_sparse(48, 3);
        let mut gen = CoefficientDrift::new(a0.clone(), 0.1, 0.05, 7);
        let mut prev = a0;
        for _ in 0..10 {
            let step = gen.advance();
            check_ground_truth(&prev, &step);
            assert!(!step.dirty_rows.is_empty());
            prev = step.matrix;
        }
    }

    #[test]
    fn coefficient_drift_is_reproducible() {
        let a0 = pdd_real_sparse(32, 1);
        let mut g1 = CoefficientDrift::new(a0.clone(), 0.1, 0.02, 11);
        let mut g2 = CoefficientDrift::new(a0, 0.1, 0.02, 11);
        for _ in 0..5 {
            let s1 = g1.advance();
            let s2 = g2.advance();
            assert_eq!(s1.matrix, s2.matrix);
            assert_eq!(s1.dirty_rows, s2.dirty_rows);
        }
    }

    #[test]
    fn diagonal_shift_dirty_rows_are_exact_and_dominance_is_kept() {
        let a0 = fd_laplace_2d(10);
        let n = a0.nrows();
        let mut gen = DiagonalShiftDrift::new(a0.clone(), 0.2, 0.3, 1.0, 4.0, 13);
        let mut prev = a0.clone();
        for _ in 0..12 {
            let step = gen.advance();
            check_ground_truth(&prev, &step);
            for i in 0..n {
                let pos = step.matrix.row_indices(i).binary_search(&i).unwrap();
                let d = step.matrix.row_values(i)[pos];
                let base = a0.row_values(i)[a0.row_indices(i).binary_search(&i).unwrap()];
                // The state is confined to [1, max_state]: never below the
                // base diagonal, never above 4× it.
                assert!(d >= base - 1e-12, "row {i}: diag {d} below base {base}");
                assert!(d <= base * 4.0 + 1e-12, "row {i}: diag {d} above cap");
                // Off-diagonals are untouched.
                for (pos_j, &j) in step.matrix.row_indices(i).iter().enumerate() {
                    if j != i {
                        assert_eq!(step.matrix.row_values(i)[pos_j], a0.row_values(i)[pos_j]);
                    }
                }
            }
            prev = step.matrix;
        }
    }

    #[test]
    fn diagonal_shift_is_reproducible() {
        let a0 = fd_laplace_2d(8);
        let mut g1 = DiagonalShiftDrift::new(a0.clone(), 0.15, 0.2, 1.0, 3.0, 7);
        let mut g2 = DiagonalShiftDrift::new(a0, 0.15, 0.2, 1.0, 3.0, 7);
        for _ in 0..6 {
            let s1 = g1.advance();
            let s2 = g2.advance();
            assert_eq!(s1.matrix, s2.matrix);
            assert_eq!(s1.dirty_rows, s2.dirty_rows);
        }
    }

    #[test]
    #[should_panic(expected = "no stored diagonal")]
    fn diagonal_shift_rejects_missing_diagonal() {
        let mut coo = mcmcmi_sparse::Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 0, 1.0); // row 1 has no diagonal entry
        DiagonalShiftDrift::new(coo.to_csr(), 0.5, 0.1, 1.0, 2.0, 1);
    }

    #[test]
    fn diagonal_shift_can_harden_below_the_base_diagonal() {
        let a0 = pdd_real_sparse(40, 3);
        let n = a0.nrows();
        let mut gen = DiagonalShiftDrift::new(a0.clone(), 0.3, 0.25, 0.5, 1.0, 19);
        let mut prev = a0.clone();
        let mut saw_below_base = false;
        for _ in 0..20 {
            let step = gen.advance();
            check_ground_truth(&prev, &step);
            for i in 0..n {
                let pos = step.matrix.row_indices(i).binary_search(&i).unwrap();
                let d = step.matrix.row_values(i)[pos];
                let base = a0.row_values(i)[a0.row_indices(i).binary_search(&i).unwrap()];
                assert!(d <= base + 1e-12, "max_state 1: never above base");
                assert!(d >= base * 0.5 - 1e-12, "never below min_state · base");
                saw_below_base |= d < base * 0.999;
            }
            prev = step.matrix;
        }
        assert!(saw_below_base, "states must actually wander below 1");
    }

    #[test]
    fn mesh_refinement_window_moves_and_diffs_exactly() {
        let mut gen = MeshRefinementDrift::new(10, 3, 4.0);
        let mut prev = gen.current().clone();
        let mut saw_drift = false;
        for _ in 0..12 {
            let step = gen.advance();
            check_ground_truth(&prev, &step);
            // Window fits in the grid: never more than 2 windows' rows dirty.
            assert!(step.dirty_rows.len() <= 2 * 9);
            saw_drift |= !step.dirty_rows.is_empty();
            prev = step.matrix;
        }
        assert!(saw_drift);
    }

    #[test]
    fn relinearization_makes_sparse_large_jumps() {
        let a0 = pdd_real_sparse(64, 9);
        let n = a0.nrows();
        let mut gen = JacobianRelinearization::new(a0.clone(), 0.5, 21);
        let mut prev = a0;
        let mut total_dirty = 0usize;
        for _ in 0..10 {
            let step = gen.advance();
            check_ground_truth(&prev, &step);
            total_dirty += step.dirty_rows.len();
            prev = step.matrix;
        }
        assert!(total_dirty > 0, "some rows must have re-linearised");
        assert!(
            total_dirty < 10 * n,
            "re-linearisation must not touch every row every step"
        );
    }

    #[test]
    fn drift_preserves_sparsity_pattern() {
        // Value-only drift: indices never change, so partial rebuilds and
        // structure detection stay valid across the sequence.
        let a0 = pdd_real_sparse(40, 2);
        let mut gen = CoefficientDrift::new(a0.clone(), 0.2, 0.1, 5);
        for _ in 0..5 {
            let step = gen.advance();
            assert_eq!(step.matrix.nnz(), a0.nnz());
            for i in 0..a0.nrows() {
                assert_eq!(step.matrix.row_indices(i), a0.row_indices(i));
            }
        }
    }
}
