//! Finite-difference operator families: Laplacians, convection–diffusion,
//! and the wide-stencil climate-type operator.
//!
//! The stencil/banded generators also come in `*_with_structure` variants
//! returning [`StructureTruth`] — the offsets/bandwidth the generator *knows*
//! it produced — so `mcmcmi_sparse::detect_structure` tests assert against
//! ground truth instead of re-deriving the answer from the matrix under test.

use mcmcmi_sparse::{Coo, Csr, Structure};

/// Generator-side structure ground truth: what a stencil/banded generator
/// *knows* it emitted, independent of any detection pass. Detection tests
/// compare `mcmcmi_sparse::detect_structure` output against this.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StructureTruth {
    /// Every row stores exactly the clipped dense band of these
    /// half-bandwidths.
    Banded {
        /// Sub-diagonal half-bandwidth.
        lower: usize,
        /// Super-diagonal half-bandwidth.
        upper: usize,
    },
    /// Interior rows store exactly `i + offsets`; boundary rows store the
    /// in-bounds subset.
    Stencil {
        /// Interior offset pattern, sorted ascending.
        offsets: Vec<i64>,
    },
}

impl StructureTruth {
    /// Does a detected [`Structure`] agree with this ground truth?
    /// (Banded truth requires the exact half-bandwidths; stencil truth
    /// requires the modal pattern to equal the interior offsets.)
    pub fn matches(&self, detected: &Structure) -> bool {
        match self {
            StructureTruth::Banded { lower, upper } => {
                detected.band_widths() == Some((*lower, *upper))
            }
            StructureTruth::Stencil { offsets } => {
                detected.stencil_offsets() == Some(offsets.as_slice())
            }
        }
    }
}

/// 1D Dirichlet Laplacian `tridiag(-1, 2, -1)` of order `n` (test helper and
/// the simplest SPD family).
pub fn laplace_1d(n: usize) -> Csr {
    let mut coo = Coo::with_capacity(n, n, 3 * n);
    for i in 0..n {
        coo.push(i, i, 2.0);
        if i > 0 {
            coo.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            coo.push(i, i + 1, -1.0);
        }
    }
    coo.to_csr()
}

/// 2D five-point finite-difference Laplacian on the unit square with mesh
/// width `h = 1/k` and Dirichlet boundaries: `(k−1)² × (k−1)²`, stencil
/// `{4, −1, −1, −1, −1}` (unscaled, exactly the paper's `2DFDLaplace_k`).
///
/// The paper's Table 1: `2DFDLaplace_16` has n = 225 = 15², i.e. `k = 16`
/// gives `k−1 = 15` interior points per direction.
///
/// # Panics
/// Panics if `k < 2`.
pub fn fd_laplace_2d(k: usize) -> Csr {
    assert!(k >= 2, "fd_laplace_2d: mesh parameter k must be >= 2");
    let m = k - 1; // interior points per direction
    let n = m * m;
    let idx = |i: usize, j: usize| i * m + j;
    let mut coo = Coo::with_capacity(n, n, 5 * n);
    for i in 0..m {
        for j in 0..m {
            let r = idx(i, j);
            coo.push(r, r, 4.0);
            if i > 0 {
                coo.push(r, idx(i - 1, j), -1.0);
            }
            if i + 1 < m {
                coo.push(r, idx(i + 1, j), -1.0);
            }
            if j > 0 {
                coo.push(r, idx(i, j - 1), -1.0);
            }
            if j + 1 < m {
                coo.push(r, idx(i, j + 1), -1.0);
            }
        }
    }
    coo.to_csr()
}

/// [`laplace_1d`] plus its structure ground truth: a dense tridiagonal
/// band, half-bandwidths (1, 1) for `n ≥ 2`.
pub fn laplace_1d_with_structure(n: usize) -> (Csr, StructureTruth) {
    let truth = if n >= 2 {
        StructureTruth::Banded { lower: 1, upper: 1 }
    } else {
        StructureTruth::Banded { lower: 0, upper: 0 }
    };
    (laplace_1d(n), truth)
}

/// [`fd_laplace_2d`] plus its structure ground truth: the 5-point stencil
/// `{−(k−1), −1, 0, 1, k−1}` on interior rows, boundary rows clipped.
///
/// Note the detection caveat: the interior pattern only *dominates* (covers
/// ≥ half the rows, the `detect_structure` acceptance rule) once
/// `(m−2)² ≥ m²/2` for `m = k−1`, i.e. `k ≥ 8` — smaller grids are all
/// boundary and legitimately detect as something else.
pub fn fd_laplace_2d_with_structure(k: usize) -> (Csr, StructureTruth) {
    let m = (k - 1) as i64;
    let offsets = if m == 1 {
        vec![0]
    } else if m == 2 {
        vec![-2, -1, 0, 1, 2]
    } else {
        vec![-m, -1, 0, 1, m]
    };
    (fd_laplace_2d(k), StructureTruth::Stencil { offsets })
}

/// Parameters for [`convection_diffusion_2d`].
#[derive(Clone, Copy, Debug)]
pub struct ConvectionDiffusionParams {
    /// Grid points in x (matrix order is `nx·ny`).
    pub nx: usize,
    /// Grid points in y.
    pub ny: usize,
    /// Isotropic diffusion coefficient ε.
    pub eps: f64,
    /// Anisotropy: y-direction diffusion is `eps·aniso`.
    pub aniso: f64,
    /// Convection strength (recirculating wind, first-order upwind).
    pub wind: f64,
    /// Coefficient contrast: the x-diffusivity varies as
    /// `eps·(1 + contrast·x²)` across the domain — the graded-mesh /
    /// coefficient-jump effect that drives FEM plasma matrices to large κ
    /// (κ scales roughly linearly with the contrast).
    pub contrast: f64,
    /// Wide (5×5) stencil: adds decaying second-ring couplings, emulating
    /// the denser connectivity of higher-order FEM bases (~25 nnz/row).
    pub wide: bool,
}

/// Nonsymmetric 2D convection–diffusion operator, first-order upwind
/// discretisation of `−∇·(K(x)∇u) + b·∇u` with a recirculating wind
/// `b = wind · (sin πy·cos πx, −sin πx·cos πy)` on an `nx × ny` grid.
///
/// Used as the synthetic stand-in for the paper's plasma-physics FEM
/// matrices `a00512` / `a08192`: same class (nonsymmetric discretised
/// transport), κ tuned through the coefficient `contrast`, fill through the
/// `wide` stencil.
pub fn convection_diffusion_2d(p: ConvectionDiffusionParams) -> Csr {
    let ConvectionDiffusionParams {
        nx,
        ny,
        eps,
        aniso,
        wind,
        contrast,
        wide,
    } = p;
    assert!(
        nx >= 2 && ny >= 2,
        "convection_diffusion_2d: grid too small"
    );
    let n = nx * ny;
    let hx = 1.0 / (nx as f64 + 1.0);
    let hy = 1.0 / (ny as f64 + 1.0);
    let idx = |i: usize, j: usize| i * ny + j;
    let mut coo = Coo::with_capacity(n, n, if wide { 25 * n } else { 5 * n });
    let pi = std::f64::consts::PI;
    let ky = eps * aniso / (hy * hy);
    for i in 0..nx {
        for j in 0..ny {
            let r = idx(i, j);
            let x = (i as f64 + 1.0) * hx;
            let y = (j as f64 + 1.0) * hy;
            // Spatially varying x-diffusivity (the κ lever).
            let kx = eps * (1.0 + contrast * x * x) / (hx * hx);
            let bx = wind * (pi * y).sin() * (pi * x).cos();
            let by = -wind * (pi * x).sin() * (pi * y).cos();
            // Upwind convection contributions.
            let (cw, ce) = if bx >= 0.0 {
                (bx / hx, 0.0)
            } else {
                (0.0, -bx / hx)
            };
            let (cs, cn) = if by >= 0.0 {
                (by / hy, 0.0)
            } else {
                (0.0, -by / hy)
            };
            let mut diag = 2.0 * kx + 2.0 * ky + cw + ce + cs + cn;
            // Dirichlet boundaries: missing neighbours are simply dropped
            // (their contribution belongs to the right-hand side).
            if i > 0 {
                coo.push(r, idx(i - 1, j), -kx - cw);
            }
            if i + 1 < nx {
                coo.push(r, idx(i + 1, j), -kx - ce);
            }
            if j > 0 {
                coo.push(r, idx(i, j - 1), -ky - cs);
            }
            if j + 1 < ny {
                coo.push(r, idx(i, j + 1), -ky - cn);
            }
            if wide {
                // Second-ring couplings plus far x-couplings with
                // algebraically decaying weights (~29 nnz/row, the fill of
                // a higher-order FEM basis); the diagonal absorbs their mass
                // so rows stay dominant.
                let base = 0.12 * (kx + ky);
                let mut offsets: Vec<(i64, i64)> = Vec::with_capacity(20);
                for di in -2i64..=2 {
                    for dj in -2i64..=2 {
                        if di.abs().max(dj.abs()) == 2 {
                            offsets.push((di, dj));
                        }
                    }
                }
                for di in [-4i64, -3, 3, 4] {
                    offsets.push((di, 0));
                }
                for (di, dj) in offsets {
                    let ii = i as i64 + di;
                    let jj = j as i64 + dj;
                    if ii < 0 || jj < 0 || ii >= nx as i64 || jj >= ny as i64 {
                        continue;
                    }
                    let w = base / (di * di + dj * dj) as f64;
                    coo.push(r, idx(ii as usize, jj as usize), -w);
                    diag += w;
                }
            }
            coo.push(r, r, diag);
        }
    }
    coo.to_csr()
}

/// [`convection_diffusion_2d`] plus its structure ground truth: the
/// interior offset pattern implied by the parameters — the 5-point cross
/// `{−ny, −1, 0, 1, ny}`, plus (when `wide`) the second ring
/// `max(|di|,|dj|) = 2` and the far zonal couplings `di ∈ {±3, ±4}`.
///
/// Detection caveat (as for [`fd_laplace_2d_with_structure`]): the interior
/// pattern must cover ≥ half the rows, which for the wide stencil needs
/// `(nx−8)·(ny−8) ≥ nx·ny/2`.
pub fn convection_diffusion_2d_with_structure(
    p: ConvectionDiffusionParams,
) -> (Csr, StructureTruth) {
    let ny = p.ny as i64;
    let mut offsets: Vec<i64> = vec![-ny, -1, 0, 1, ny];
    if p.wide {
        for di in -2i64..=2 {
            for dj in -2i64..=2 {
                if di.abs().max(dj.abs()) == 2 {
                    offsets.push(di * ny + dj);
                }
            }
        }
        for di in [-4i64, -3, 3, 4] {
            offsets.push(di * ny);
        }
    }
    offsets.sort_unstable();
    offsets.dedup();
    (
        convection_diffusion_2d(p),
        StructureTruth::Stencil { offsets },
    )
}

/// Wide-stencil stretched-grid advection–diffusion operator, the synthetic
/// stand-in for the climate matrix `nonsym_r3_a11` (n = 20 930, φ ≈ 0.0044).
///
/// Grid is `nlat × nlon` (default 91 × 230 = 20 930). Each row couples to the
/// standard 5-point neighbourhood *plus* a long-range zonal stencil of
/// `2·halo` points with algebraically decaying weights — the signature of
/// semi-Lagrangian/spectral-damping climate dynamical cores, and what drives
/// the row degree to ~90 (φ ≈ 0.0044 at this size).
pub fn stretched_climate_operator(nlat: usize, nlon: usize, halo: usize, eps: f64) -> Csr {
    assert!(
        nlat >= 3 && nlon > 2 * halo,
        "stretched_climate_operator: grid too small"
    );
    let n = nlat * nlon;
    let idx = |i: usize, j: usize| i * nlon + j;
    let mut coo = Coo::with_capacity(n, n, (2 * halo + 5) * n);
    let pi = std::f64::consts::PI;
    for i in 0..nlat {
        // Latitude-dependent metric stretching (poles are denser): this is
        // what makes the operator non-normal and raises κ.
        let lat = pi * (i as f64 + 0.5) / nlat as f64; // (0, π)
        let metric = 1.0 / (0.05 + lat.sin()); // large near poles
        for j in 0..nlon {
            let r = idx(i, j);
            let mut diag = eps * (2.0 + 2.0 * metric);
            // Meridional 3-point diffusion.
            if i > 0 {
                coo.push(r, idx(i - 1, j), -eps);
            }
            if i + 1 < nlat {
                coo.push(r, idx(i + 1, j), -eps);
            }
            // Zonal long-range stencil with periodic wrap, decaying weights,
            // and an asymmetric advective tilt (nonsymmetric matrix).
            let zonal_speed = 1.0 + 0.5 * (2.0 * lat).cos();
            let mut wsum = 0.0;
            for d in 1..=halo {
                let w = metric / (d as f64 * d as f64);
                let east = idx(i, (j + d) % nlon);
                let west = idx(i, (j + nlon - d) % nlon);
                // Upwind tilt: east side carries the advection weight.
                let we = -w - zonal_speed / d as f64;
                let ww = -w;
                coo.push(r, east, we);
                coo.push(r, west, ww);
                wsum += we.abs() + ww.abs();
            }
            diag += wsum * 0.55; // mildly non-dominant: iterative but not trivial
            coo.push(r, r, diag);
        }
    }
    coo.to_csr()
}

/// Clamped-boundary banded variant of the climate surrogate: each row `r`
/// couples to *every* index within `halo` of it (clipped at the matrix
/// bounds only — no periodic wrap), with the same latitude-dependent metric
/// stretching and asymmetric advective tilt as
/// [`stretched_climate_operator`]. The zonal wrap is what defeats
/// offset-pattern detection on the periodic operator; dropping it yields a
/// genuinely *banded* climate-row operator — the band-structured member of
/// the Table-1 surrogate family, with half-bandwidths exactly
/// `(halo, halo)` and ~`2·halo + 1` nnz/row.
///
/// # Panics
/// Panics if the grid is too small (`nlat·nlon ≤ halo`) or `halo == 0`.
pub fn banded_climate_rows(nlat: usize, nlon: usize, halo: usize, eps: f64) -> Csr {
    assert!(halo >= 1, "banded_climate_rows: halo must be >= 1");
    let n = nlat * nlon;
    assert!(n > halo, "banded_climate_rows: grid too small for halo");
    let mut coo = Coo::with_capacity(n, n, (2 * halo + 1) * n);
    let pi = std::f64::consts::PI;
    for r in 0..n {
        let i = r / nlon;
        let lat = pi * (i as f64 + 0.5) / nlat as f64; // (0, π)
        let metric = 1.0 / (0.05 + lat.sin()); // large near poles
        let zonal_speed = 1.0 + 0.5 * (2.0 * lat).cos();
        let first = r.saturating_sub(halo);
        let last = (r + halo).min(n - 1);
        let mut wsum = 0.0;
        for s in first..=last {
            if s == r {
                continue;
            }
            let d = s as f64 - r as f64;
            // Diffusive decay with an upwind (eastward) advective tilt:
            // every in-band weight is strictly negative, so the band is
            // dense — the property the banded kernels rely on.
            let mut w = -metric / (d * d);
            if d > 0.0 {
                w -= zonal_speed / d;
            }
            coo.push(r, s, w);
            wsum += w.abs();
        }
        // Mildly non-dominant, like the periodic surrogate: iterative but
        // not trivial.
        coo.push(r, r, eps * (2.0 + 2.0 * metric) + 0.55 * wsum);
    }
    coo.to_csr()
}

/// [`banded_climate_rows`] plus its structure ground truth: dense band with
/// half-bandwidths `(halo, halo)`.
pub fn banded_climate_rows_with_structure(
    nlat: usize,
    nlon: usize,
    halo: usize,
    eps: f64,
) -> (Csr, StructureTruth) {
    (
        banded_climate_rows(nlat, nlon, halo, eps),
        StructureTruth::Banded {
            lower: halo,
            upper: halo,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmcmi_dense::{cond_dense, CondOptions};
    use mcmcmi_sparse::detect_structure;

    #[test]
    fn laplace_1d_structure() {
        let a = laplace_1d(5);
        assert_eq!(a.nrows(), 5);
        assert_eq!(a.nnz(), 13);
        assert!(a.is_symmetric(0.0));
        assert_eq!(a.get(2, 2), 4.0 - 2.0);
    }

    #[test]
    fn fd_laplace_2d_matches_paper_sizes() {
        // Table 1: 2DFDLaplace_16 → 225, _32 → 961, _64 → 3969, _128 → 16129.
        assert_eq!(fd_laplace_2d(16).nrows(), 225);
        assert_eq!(fd_laplace_2d(32).nrows(), 961);
        let a = fd_laplace_2d(16);
        assert!(a.is_symmetric(0.0));
        // Interior row has degree 5, corner row degree 3.
        let deg = a.row_degrees();
        assert_eq!(deg.iter().copied().max().unwrap(), 5);
        assert_eq!(deg.iter().copied().min().unwrap(), 3);
    }

    #[test]
    fn fd_laplace_2d_condition_matches_analytic() {
        let a = fd_laplace_2d(16);
        let k_est = cond_dense(&a.to_dense(), CondOptions::default()).unwrap();
        let k_analytic = crate::suite::analytic_laplace_cond_2d(16);
        assert!(
            (k_est - k_analytic).abs() / k_analytic < 0.02,
            "estimated {k_est}, analytic {k_analytic}"
        );
        // Paper reports 1.0e2.
        assert!(k_analytic > 50.0 && k_analytic < 200.0);
    }

    #[test]
    fn convection_diffusion_is_nonsymmetric_and_sized() {
        let a = convection_diffusion_2d(ConvectionDiffusionParams {
            nx: 32,
            ny: 16,
            eps: 1.0,
            aniso: 1.0,
            wind: 20.0,
            contrast: 0.0,
            wide: false,
        });
        assert_eq!(a.nrows(), 512);
        assert!(!a.is_symmetric(1e-10));
        // Diagonal should be positive everywhere (M-matrix-like).
        assert!(a.diag().iter().all(|&d| d > 0.0));
    }

    #[test]
    fn convection_diffusion_off_diagonals_nonpositive() {
        // First-order upwinding yields an M-matrix: off-diagonals ≤ 0.
        let a = convection_diffusion_2d(ConvectionDiffusionParams {
            nx: 8,
            ny: 8,
            eps: 0.5,
            aniso: 0.2,
            wind: 10.0,
            contrast: 0.0,
            wide: false,
        });
        for (i, j, v) in a.triplets() {
            if i != j {
                assert!(v <= 1e-14, "positive off-diagonal at ({i},{j}) = {v}");
            }
        }
    }

    #[test]
    fn climate_operator_shape_and_density() {
        // Small version of the nonsym_r3_a11 surrogate.
        let a = stretched_climate_operator(13, 46, 22, 1.0);
        assert_eq!(a.nrows(), 13 * 46);
        assert!(!a.is_symmetric(1e-10));
        // Row degree ≈ 2·halo + 3 (zonal stencil + meridional + diag).
        let mean_deg = a.row_degrees().iter().sum::<usize>() as f64 / a.nrows() as f64;
        assert!(mean_deg > 40.0 && mean_deg < 50.0, "mean degree {mean_deg}");
    }

    #[test]
    fn climate_operator_periodic_wrap() {
        let a = stretched_climate_operator(3, 11, 2, 1.0);
        // Row (0, 0) must couple to zonal neighbours 10 and 9 via wraparound.
        let cols = a.row_indices(0);
        assert!(cols.contains(&10));
        assert!(cols.contains(&9));
    }

    #[test]
    fn banded_climate_rows_shape_and_band() {
        let a = banded_climate_rows(7, 30, 8, 1.0);
        assert_eq!(a.nrows(), 210);
        assert!(!a.is_symmetric(1e-10));
        assert!(a.diag().iter().all(|&d| d > 0.0));
        // Interior rows carry the full 2·halo + 1 band.
        assert_eq!(a.row_degrees().iter().copied().max().unwrap(), 17);
        // Every in-band entry is stored (the band is dense).
        for i in 0..a.nrows() {
            let first = i.saturating_sub(8);
            let last = (i + 8).min(209);
            assert_eq!(
                a.row_indices(i),
                (first..=last).collect::<Vec<_>>().as_slice()
            );
        }
    }

    #[test]
    fn detection_matches_generator_ground_truth() {
        // The satellite contract: detection is asserted against what the
        // generators *know* they emitted, never re-derived.
        let (a, truth) = laplace_1d_with_structure(64);
        assert!(truth.matches(&detect_structure(&a)), "laplace_1d");

        let (a, truth) = fd_laplace_2d_with_structure(16);
        let detected = detect_structure(&a);
        assert!(truth.matches(&detected), "fd_laplace_2d(16): {detected:?}");
        assert_eq!(detected.kernel_name(), "stencil");

        let (a, truth) = banded_climate_rows_with_structure(5, 24, 6, 1.0);
        let detected = detect_structure(&a);
        assert!(
            truth.matches(&detected),
            "banded_climate_rows: {detected:?}"
        );
        assert_eq!(detected.kernel_name(), "banded");

        let (a, truth) = convection_diffusion_2d_with_structure(ConvectionDiffusionParams {
            nx: 24,
            ny: 20,
            eps: 1.0,
            aniso: 0.7,
            wind: 15.0,
            contrast: 1.0,
            wide: false,
        });
        assert!(truth.matches(&detect_structure(&a)), "convection_diffusion");
    }

    #[test]
    fn periodic_climate_operator_is_not_stencil_but_banded_variant_is() {
        // The zonal wrap puts boundary-row offsets outside the interior
        // pattern, so the periodic surrogate honestly demotes to General —
        // exactly why the banded variant exists.
        let periodic = stretched_climate_operator(5, 24, 6, 1.0);
        assert_eq!(detect_structure(&periodic).kernel_name(), "generic-csr");
        let banded = banded_climate_rows(5, 24, 6, 1.0);
        assert_eq!(detect_structure(&banded).kernel_name(), "banded");
    }
}
