//! Finite-difference operator families: Laplacians, convection–diffusion,
//! and the wide-stencil climate-type operator.

use mcmcmi_sparse::{Coo, Csr};

/// 1D Dirichlet Laplacian `tridiag(-1, 2, -1)` of order `n` (test helper and
/// the simplest SPD family).
pub fn laplace_1d(n: usize) -> Csr {
    let mut coo = Coo::with_capacity(n, n, 3 * n);
    for i in 0..n {
        coo.push(i, i, 2.0);
        if i > 0 {
            coo.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            coo.push(i, i + 1, -1.0);
        }
    }
    coo.to_csr()
}

/// 2D five-point finite-difference Laplacian on the unit square with mesh
/// width `h = 1/k` and Dirichlet boundaries: `(k−1)² × (k−1)²`, stencil
/// `{4, −1, −1, −1, −1}` (unscaled, exactly the paper's `2DFDLaplace_k`).
///
/// The paper's Table 1: `2DFDLaplace_16` has n = 225 = 15², i.e. `k = 16`
/// gives `k−1 = 15` interior points per direction.
///
/// # Panics
/// Panics if `k < 2`.
pub fn fd_laplace_2d(k: usize) -> Csr {
    assert!(k >= 2, "fd_laplace_2d: mesh parameter k must be >= 2");
    let m = k - 1; // interior points per direction
    let n = m * m;
    let idx = |i: usize, j: usize| i * m + j;
    let mut coo = Coo::with_capacity(n, n, 5 * n);
    for i in 0..m {
        for j in 0..m {
            let r = idx(i, j);
            coo.push(r, r, 4.0);
            if i > 0 {
                coo.push(r, idx(i - 1, j), -1.0);
            }
            if i + 1 < m {
                coo.push(r, idx(i + 1, j), -1.0);
            }
            if j > 0 {
                coo.push(r, idx(i, j - 1), -1.0);
            }
            if j + 1 < m {
                coo.push(r, idx(i, j + 1), -1.0);
            }
        }
    }
    coo.to_csr()
}

/// Parameters for [`convection_diffusion_2d`].
#[derive(Clone, Copy, Debug)]
pub struct ConvectionDiffusionParams {
    /// Grid points in x (matrix order is `nx·ny`).
    pub nx: usize,
    /// Grid points in y.
    pub ny: usize,
    /// Isotropic diffusion coefficient ε.
    pub eps: f64,
    /// Anisotropy: y-direction diffusion is `eps·aniso`.
    pub aniso: f64,
    /// Convection strength (recirculating wind, first-order upwind).
    pub wind: f64,
    /// Coefficient contrast: the x-diffusivity varies as
    /// `eps·(1 + contrast·x²)` across the domain — the graded-mesh /
    /// coefficient-jump effect that drives FEM plasma matrices to large κ
    /// (κ scales roughly linearly with the contrast).
    pub contrast: f64,
    /// Wide (5×5) stencil: adds decaying second-ring couplings, emulating
    /// the denser connectivity of higher-order FEM bases (~25 nnz/row).
    pub wide: bool,
}

/// Nonsymmetric 2D convection–diffusion operator, first-order upwind
/// discretisation of `−∇·(K(x)∇u) + b·∇u` with a recirculating wind
/// `b = wind · (sin πy·cos πx, −sin πx·cos πy)` on an `nx × ny` grid.
///
/// Used as the synthetic stand-in for the paper's plasma-physics FEM
/// matrices `a00512` / `a08192`: same class (nonsymmetric discretised
/// transport), κ tuned through the coefficient `contrast`, fill through the
/// `wide` stencil.
pub fn convection_diffusion_2d(p: ConvectionDiffusionParams) -> Csr {
    let ConvectionDiffusionParams {
        nx,
        ny,
        eps,
        aniso,
        wind,
        contrast,
        wide,
    } = p;
    assert!(
        nx >= 2 && ny >= 2,
        "convection_diffusion_2d: grid too small"
    );
    let n = nx * ny;
    let hx = 1.0 / (nx as f64 + 1.0);
    let hy = 1.0 / (ny as f64 + 1.0);
    let idx = |i: usize, j: usize| i * ny + j;
    let mut coo = Coo::with_capacity(n, n, if wide { 25 * n } else { 5 * n });
    let pi = std::f64::consts::PI;
    let ky = eps * aniso / (hy * hy);
    for i in 0..nx {
        for j in 0..ny {
            let r = idx(i, j);
            let x = (i as f64 + 1.0) * hx;
            let y = (j as f64 + 1.0) * hy;
            // Spatially varying x-diffusivity (the κ lever).
            let kx = eps * (1.0 + contrast * x * x) / (hx * hx);
            let bx = wind * (pi * y).sin() * (pi * x).cos();
            let by = -wind * (pi * x).sin() * (pi * y).cos();
            // Upwind convection contributions.
            let (cw, ce) = if bx >= 0.0 {
                (bx / hx, 0.0)
            } else {
                (0.0, -bx / hx)
            };
            let (cs, cn) = if by >= 0.0 {
                (by / hy, 0.0)
            } else {
                (0.0, -by / hy)
            };
            let mut diag = 2.0 * kx + 2.0 * ky + cw + ce + cs + cn;
            // Dirichlet boundaries: missing neighbours are simply dropped
            // (their contribution belongs to the right-hand side).
            if i > 0 {
                coo.push(r, idx(i - 1, j), -kx - cw);
            }
            if i + 1 < nx {
                coo.push(r, idx(i + 1, j), -kx - ce);
            }
            if j > 0 {
                coo.push(r, idx(i, j - 1), -ky - cs);
            }
            if j + 1 < ny {
                coo.push(r, idx(i, j + 1), -ky - cn);
            }
            if wide {
                // Second-ring couplings plus far x-couplings with
                // algebraically decaying weights (~29 nnz/row, the fill of
                // a higher-order FEM basis); the diagonal absorbs their mass
                // so rows stay dominant.
                let base = 0.12 * (kx + ky);
                let mut offsets: Vec<(i64, i64)> = Vec::with_capacity(20);
                for di in -2i64..=2 {
                    for dj in -2i64..=2 {
                        if di.abs().max(dj.abs()) == 2 {
                            offsets.push((di, dj));
                        }
                    }
                }
                for di in [-4i64, -3, 3, 4] {
                    offsets.push((di, 0));
                }
                for (di, dj) in offsets {
                    let ii = i as i64 + di;
                    let jj = j as i64 + dj;
                    if ii < 0 || jj < 0 || ii >= nx as i64 || jj >= ny as i64 {
                        continue;
                    }
                    let w = base / (di * di + dj * dj) as f64;
                    coo.push(r, idx(ii as usize, jj as usize), -w);
                    diag += w;
                }
            }
            coo.push(r, r, diag);
        }
    }
    coo.to_csr()
}

/// Wide-stencil stretched-grid advection–diffusion operator, the synthetic
/// stand-in for the climate matrix `nonsym_r3_a11` (n = 20 930, φ ≈ 0.0044).
///
/// Grid is `nlat × nlon` (default 91 × 230 = 20 930). Each row couples to the
/// standard 5-point neighbourhood *plus* a long-range zonal stencil of
/// `2·halo` points with algebraically decaying weights — the signature of
/// semi-Lagrangian/spectral-damping climate dynamical cores, and what drives
/// the row degree to ~90 (φ ≈ 0.0044 at this size).
pub fn stretched_climate_operator(nlat: usize, nlon: usize, halo: usize, eps: f64) -> Csr {
    assert!(
        nlat >= 3 && nlon > 2 * halo,
        "stretched_climate_operator: grid too small"
    );
    let n = nlat * nlon;
    let idx = |i: usize, j: usize| i * nlon + j;
    let mut coo = Coo::with_capacity(n, n, (2 * halo + 5) * n);
    let pi = std::f64::consts::PI;
    for i in 0..nlat {
        // Latitude-dependent metric stretching (poles are denser): this is
        // what makes the operator non-normal and raises κ.
        let lat = pi * (i as f64 + 0.5) / nlat as f64; // (0, π)
        let metric = 1.0 / (0.05 + lat.sin()); // large near poles
        for j in 0..nlon {
            let r = idx(i, j);
            let mut diag = eps * (2.0 + 2.0 * metric);
            // Meridional 3-point diffusion.
            if i > 0 {
                coo.push(r, idx(i - 1, j), -eps);
            }
            if i + 1 < nlat {
                coo.push(r, idx(i + 1, j), -eps);
            }
            // Zonal long-range stencil with periodic wrap, decaying weights,
            // and an asymmetric advective tilt (nonsymmetric matrix).
            let zonal_speed = 1.0 + 0.5 * (2.0 * lat).cos();
            let mut wsum = 0.0;
            for d in 1..=halo {
                let w = metric / (d as f64 * d as f64);
                let east = idx(i, (j + d) % nlon);
                let west = idx(i, (j + nlon - d) % nlon);
                // Upwind tilt: east side carries the advection weight.
                let we = -w - zonal_speed / d as f64;
                let ww = -w;
                coo.push(r, east, we);
                coo.push(r, west, ww);
                wsum += we.abs() + ww.abs();
            }
            diag += wsum * 0.55; // mildly non-dominant: iterative but not trivial
            coo.push(r, r, diag);
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmcmi_dense::{cond_dense, CondOptions};

    #[test]
    fn laplace_1d_structure() {
        let a = laplace_1d(5);
        assert_eq!(a.nrows(), 5);
        assert_eq!(a.nnz(), 13);
        assert!(a.is_symmetric(0.0));
        assert_eq!(a.get(2, 2), 4.0 - 2.0);
    }

    #[test]
    fn fd_laplace_2d_matches_paper_sizes() {
        // Table 1: 2DFDLaplace_16 → 225, _32 → 961, _64 → 3969, _128 → 16129.
        assert_eq!(fd_laplace_2d(16).nrows(), 225);
        assert_eq!(fd_laplace_2d(32).nrows(), 961);
        let a = fd_laplace_2d(16);
        assert!(a.is_symmetric(0.0));
        // Interior row has degree 5, corner row degree 3.
        let deg = a.row_degrees();
        assert_eq!(deg.iter().copied().max().unwrap(), 5);
        assert_eq!(deg.iter().copied().min().unwrap(), 3);
    }

    #[test]
    fn fd_laplace_2d_condition_matches_analytic() {
        let a = fd_laplace_2d(16);
        let k_est = cond_dense(&a.to_dense(), CondOptions::default()).unwrap();
        let k_analytic = crate::suite::analytic_laplace_cond_2d(16);
        assert!(
            (k_est - k_analytic).abs() / k_analytic < 0.02,
            "estimated {k_est}, analytic {k_analytic}"
        );
        // Paper reports 1.0e2.
        assert!(k_analytic > 50.0 && k_analytic < 200.0);
    }

    #[test]
    fn convection_diffusion_is_nonsymmetric_and_sized() {
        let a = convection_diffusion_2d(ConvectionDiffusionParams {
            nx: 32,
            ny: 16,
            eps: 1.0,
            aniso: 1.0,
            wind: 20.0,
            contrast: 0.0,
            wide: false,
        });
        assert_eq!(a.nrows(), 512);
        assert!(!a.is_symmetric(1e-10));
        // Diagonal should be positive everywhere (M-matrix-like).
        assert!(a.diag().iter().all(|&d| d > 0.0));
    }

    #[test]
    fn convection_diffusion_off_diagonals_nonpositive() {
        // First-order upwinding yields an M-matrix: off-diagonals ≤ 0.
        let a = convection_diffusion_2d(ConvectionDiffusionParams {
            nx: 8,
            ny: 8,
            eps: 0.5,
            aniso: 0.2,
            wind: 10.0,
            contrast: 0.0,
            wide: false,
        });
        for (i, j, v) in a.triplets() {
            if i != j {
                assert!(v <= 1e-14, "positive off-diagonal at ({i},{j}) = {v}");
            }
        }
    }

    #[test]
    fn climate_operator_shape_and_density() {
        // Small version of the nonsym_r3_a11 surrogate.
        let a = stretched_climate_operator(13, 46, 22, 1.0);
        assert_eq!(a.nrows(), 13 * 46);
        assert!(!a.is_symmetric(1e-10));
        // Row degree ≈ 2·halo + 3 (zonal stencil + meridional + diag).
        let mean_deg = a.row_degrees().iter().sum::<usize>() as f64 / a.nrows() as f64;
        assert!(mean_deg > 40.0 && mean_deg < 50.0, "mean degree {mean_deg}");
    }

    #[test]
    fn climate_operator_periodic_wrap() {
        let a = stretched_climate_operator(3, 11, 2, 1.0);
        // Row (0, 0) must couple to zonal neighbours 10 and 9 via wraparound.
        let cols = a.row_indices(0);
        assert!(cols.contains(&10));
        assert!(cols.contains(&9));
    }
}
