//! Adapter exposing the GNN surrogate to the Bayesian optimiser.
//!
//! The optimiser works in the *physical* (α, ε, δ) space; the surrogate
//! consumes standardised 6-vectors `[α, ε, δ, onehot(solver)]`. This adapter
//! owns the standardiser, the cached graph embedding, and the chain rule
//! (`∂/∂raw = ∂/∂std / σ_col`) so gradients arrive in physical coordinates.

use mcmcmi_autodiff::Tensor;
use mcmcmi_bayesopt::SurrogateModel;
use mcmcmi_gnn::Surrogate;
use mcmcmi_krylov::SolverType;
use mcmcmi_stats::Standardizer;

/// Physical-space view of the trained surrogate for one (matrix, solver).
pub struct GnnSurrogateAdapter<'a> {
    surrogate: &'a mut Surrogate,
    h_g: Tensor,
    xa_std: Vec<f64>,
    xm_std: &'a Standardizer,
    solver: SolverType,
}

impl<'a> GnnSurrogateAdapter<'a> {
    /// Wrap a trained surrogate for a given matrix embedding + features.
    ///
    /// `xa_std` must already be standardised; `xm_std` is the 6-dim
    /// standardiser fitted on the training dataset.
    pub fn new(
        surrogate: &'a mut Surrogate,
        h_g: Tensor,
        xa_std: Vec<f64>,
        xm_std: &'a Standardizer,
        solver: SolverType,
    ) -> Self {
        assert_eq!(
            xm_std.dim(),
            6,
            "GnnSurrogateAdapter: expected 6-dim x_M standardiser"
        );
        Self {
            surrogate,
            h_g,
            xa_std,
            xm_std,
            solver,
        }
    }

    fn raw6(&self, x: &[f64]) -> Vec<f64> {
        let mut v = x.to_vec();
        v.extend_from_slice(&self.solver.one_hot());
        v
    }
}

impl SurrogateModel for GnnSurrogateAdapter<'_> {
    fn dim(&self) -> usize {
        3
    }

    fn predict(&mut self, x: &[f64]) -> (f64, f64) {
        assert_eq!(
            x.len(),
            3,
            "GnnSurrogateAdapter::predict: expected (α, ε, δ)"
        );
        let std6 = self.xm_std.transform(&self.raw6(x));
        self.surrogate.predict(&self.h_g, &self.xa_std, &std6)
    }

    fn predict_grad(&mut self, x: &[f64]) -> (f64, f64, Vec<f64>, Vec<f64>) {
        assert_eq!(
            x.len(),
            3,
            "GnnSurrogateAdapter::predict_grad: expected (α, ε, δ)"
        );
        let raw = self.raw6(x);
        let std6 = self.xm_std.transform(&raw);
        let (mu, sigma, dmu6, dsg6) = self.surrogate.predict_grad(&self.h_g, &self.xa_std, &std6);
        // Chain rule through z = (x − m)/s: ∂f/∂x_i = ∂f/∂z_i / s_i.
        // Recover per-column scale from the standardiser by transforming two
        // probe points (avoids exposing internals).
        let probe0 = self.xm_std.transform(&[0.0; 6]);
        let probe1 = self.xm_std.transform(&[1.0; 6]);
        let inv_scale: Vec<f64> = probe1.iter().zip(&probe0).map(|(a, b)| a - b).collect();
        let dmu: Vec<f64> = (0..3).map(|i| dmu6[i] * inv_scale[i]).collect();
        let dsigma: Vec<f64> = (0..3).map(|i| dsg6[i] * inv_scale[i]).collect();
        (mu, sigma, dmu, dsigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmcmi_gnn::{MatrixGraph, SurrogateConfig};
    use mcmcmi_matgen::laplace_1d;

    fn setup() -> (Surrogate, Tensor, Vec<f64>, Standardizer) {
        let mut s = Surrogate::new(SurrogateConfig {
            gnn_hidden: 8,
            xa_hidden: 4,
            xm_hidden: 4,
            comb_hidden: 8,
            dropout: 0.0,
            ..SurrogateConfig::lite(3, 6)
        });
        let data = MatrixGraph::from_csr(&laplace_1d(6));
        let h_g = s.embed_graph(&data);
        // A standardiser with non-trivial scales.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|k| {
                let t = k as f64 / 19.0;
                vec![
                    1.0 + 4.0 * t,
                    0.1 + 0.8 * t,
                    0.05 + 0.9 * t,
                    1.0 - t,
                    t,
                    0.0,
                ]
            })
            .collect();
        let xm_std = Standardizer::fit(&rows);
        (s, h_g, vec![0.1, -0.2, 0.3], xm_std)
    }

    #[test]
    fn predict_outputs_valid_gaussian_params() {
        let (mut s, h_g, xa, xm_std) = setup();
        let mut ad = GnnSurrogateAdapter::new(&mut s, h_g, xa, &xm_std, SolverType::Gmres);
        let (mu, sigma) = ad.predict(&[2.0, 0.25, 0.25]);
        assert!(mu >= 0.0);
        assert!(sigma > 0.0);
        assert_eq!(ad.dim(), 3);
    }

    #[test]
    fn physical_gradients_match_finite_differences() {
        let (mut s, h_g, xa, xm_std) = setup();
        let mut ad = GnnSurrogateAdapter::new(&mut s, h_g, xa, &xm_std, SolverType::Gmres);
        let x = [2.0, 0.3, 0.4];
        let (_, _, dmu, dsg) = ad.predict_grad(&x);
        let h = 1e-6;
        for k in 0..3 {
            let mut xp = x;
            xp[k] += h;
            let (mp, sp) = ad.predict(&xp);
            xp[k] -= 2.0 * h;
            let (mm, sm) = ad.predict(&xp);
            let nmu = (mp - mm) / (2.0 * h);
            let nsg = (sp - sm) / (2.0 * h);
            assert!((dmu[k] - nmu).abs() < 1e-5, "dmu[{k}] {} vs {nmu}", dmu[k]);
            assert!((dsg[k] - nsg).abs() < 1e-5, "dsg[{k}] {} vs {nsg}", dsg[k]);
        }
    }

    #[test]
    fn solver_choice_changes_predictions() {
        let (mut s, h_g, xa, xm_std) = setup();
        let x = [2.0, 0.25, 0.25];
        let p_gmres = {
            let mut ad = GnnSurrogateAdapter::new(
                &mut s,
                h_g.clone(),
                xa.clone(),
                &xm_std,
                SolverType::Gmres,
            );
            ad.predict(&x)
        };
        let p_bicg = {
            let mut ad = GnnSurrogateAdapter::new(&mut s, h_g, xa, &xm_std, SolverType::BiCgStab);
            ad.predict(&x)
        };
        assert_ne!(p_gmres, p_bicg);
    }
}
