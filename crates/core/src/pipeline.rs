//! The end-to-end tuning pipeline (Algorithm 1) and the user-facing
//! `recommend(A) → x_M*` API.

use crate::adapter::GnnSurrogateAdapter;
use crate::dataset::{DatasetRecord, PaperDataset};
use crate::features::matrix_features;
use crate::measure::MeasurementRunner;
use mcmcmi_bayesopt::{propose_batch, propose_best, ProposeConfig};
use mcmcmi_gnn::{
    train_surrogate, MatrixGraph, Surrogate, SurrogateConfig, TrainConfig, TrainReport,
};
use mcmcmi_krylov::SolverType;
use mcmcmi_mcmc::McmcParams;
use mcmcmi_sparse::Csr;
use mcmcmi_stats::Standardizer;
use serde::{Deserialize, Serialize};

/// Pipeline settings.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Replicates per measurement (paper: 10).
    pub reps: usize,
    /// Recommendations per BO round (paper: 32).
    pub bo_batch: usize,
    /// EI exploration parameter ξ.
    pub xi: f64,
    /// Surrogate training settings.
    pub train: TrainConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            reps: 10,
            bo_batch: 32,
            xi: 0.05,
            train: TrainConfig::default(),
            seed: 0,
        }
    }
}

/// Result of one BO round on a target matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BoRoundOutcome {
    /// The measured recommendations (appendable to the dataset).
    pub records: Vec<DatasetRecord>,
    /// Parameter with the lowest sample median among the round's batch.
    pub best_params: McmcParams,
    /// That parameter's sample median of y.
    pub best_median: f64,
}

/// A trained recommender: surrogate + standardisers + measurement runner.
pub struct Recommender {
    surrogate: Surrogate,
    xa_std: Standardizer,
    xm_std: Standardizer,
    train_report: TrainReport,
}

/// Serialisable snapshot of a trained [`Recommender`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RecommenderSnapshot {
    /// Surrogate weights + architecture.
    pub surrogate: mcmcmi_gnn::surrogate::SurrogateSnapshot,
    /// Matrix-feature standardiser.
    pub xa_std: Standardizer,
    /// Parameter standardiser.
    pub xm_std: Standardizer,
    /// Training trajectory.
    pub train_report: TrainReport,
}

impl Recommender {
    /// Train a surrogate on a dataset ("Pre-BO model" when called on the
    /// grid dataset; "BO-enhanced" when called on grid + BO records).
    pub fn fit(
        dataset: &PaperDataset,
        matrices: &[(String, Csr, bool)],
        surrogate_cfg: SurrogateConfig,
        train_cfg: TrainConfig,
    ) -> Self {
        let (sds, xa_std, xm_std) = dataset.to_surrogate_dataset(matrices);
        let mut surrogate = Surrogate::new(surrogate_cfg);
        let train_report = train_surrogate(&mut surrogate, &sds, train_cfg);
        Self {
            surrogate,
            xa_std,
            xm_std,
            train_report,
        }
    }

    /// Training trajectory of the most recent fit.
    pub fn train_report(&self) -> &TrainReport {
        &self.train_report
    }

    /// Snapshot for persistence (model caching between experiment runs).
    pub fn to_snapshot(&self) -> RecommenderSnapshot {
        RecommenderSnapshot {
            surrogate: self.surrogate.snapshot(),
            xa_std: self.xa_std.clone(),
            xm_std: self.xm_std.clone(),
            train_report: self.train_report.clone(),
        }
    }

    /// Restore from a snapshot.
    pub fn from_snapshot(snap: RecommenderSnapshot) -> Self {
        Self {
            surrogate: Surrogate::from_snapshot(snap.surrogate),
            xa_std: snap.xa_std,
            xm_std: snap.xm_std,
            train_report: snap.train_report,
        }
    }

    /// Borrow the underlying surrogate (e.g. for snapshots).
    pub fn surrogate_mut(&mut self) -> &mut Surrogate {
        &mut self.surrogate
    }

    /// Predict `(μ̂, σ̂)` for given physical parameters on a matrix.
    pub fn predict(&mut self, a: &Csr, solver: SolverType, params: McmcParams) -> (f64, f64) {
        let graph = MatrixGraph::from_csr(a);
        let h_g = self.surrogate.embed_graph(&graph);
        let xa = self.xa_std.transform(&matrix_features(a));
        let mut adapter =
            GnnSurrogateAdapter::new(&mut self.surrogate, h_g, xa, &self.xm_std, solver);
        use mcmcmi_bayesopt::SurrogateModel;
        adapter.predict(&params.as_vec())
    }

    /// Surrogate-predicted minimum of μ̂ over the parameter box for a
    /// matrix — the natural EI incumbent for a matrix with *no observations
    /// yet* (using the global dataset minimum instead would poison the
    /// improvement term with other matrices' easier baselines).
    pub fn predicted_min(&mut self, a: &Csr, solver: SolverType, seed: u64) -> f64 {
        let graph = MatrixGraph::from_csr(a);
        let h_g = self.surrogate.embed_graph(&graph);
        let xa = self.xa_std.transform(&matrix_features(a));
        let (lo, hi) = McmcParams::search_box();
        let mut adapter =
            GnnSurrogateAdapter::new(&mut self.surrogate, h_g, xa, &self.xm_std, solver);
        use mcmcmi_bayesopt::SurrogateModel;
        // Multi-start minimisation of μ̂ (EI with y_min → −∞ reduces to
        // exploitation; here we just descend μ̂ directly).
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        use rand::Rng;
        use rand::SeedableRng;
        let mut best = f64::INFINITY;
        for _ in 0..12 {
            let x0: Vec<f64> = lo
                .iter()
                .zip(&hi)
                .map(|(&l, &h)| rng.gen_range(l..=h))
                .collect();
            let r = mcmcmi_bayesopt::lbfgsb_minimize(
                |x| {
                    let (mu, _s, dmu, _ds) = adapter.predict_grad(x);
                    (mu, dmu)
                },
                &x0,
                &lo,
                &hi,
                Default::default(),
            );
            best = best.min(r.f);
        }
        best
    }

    /// Recommend parameters for an unseen matrix: multi-start EI
    /// maximisation against the best observed metric `y_min`.
    pub fn recommend(
        &mut self,
        a: &Csr,
        solver: SolverType,
        y_min: f64,
        xi: f64,
        seed: u64,
    ) -> (McmcParams, f64) {
        let graph = MatrixGraph::from_csr(a);
        let h_g = self.surrogate.embed_graph(&graph);
        let xa = self.xa_std.transform(&matrix_features(a));
        let (lo, hi) = McmcParams::search_box();
        let mut adapter =
            GnnSurrogateAdapter::new(&mut self.surrogate, h_g, xa, &self.xm_std, solver);
        let (x, ei) = propose_best(
            &mut adapter,
            y_min,
            &lo,
            &hi,
            16,
            ProposeConfig {
                xi,
                seed,
                ..Default::default()
            },
        );
        (McmcParams::from_clamped(&x), ei)
    }

    /// Paper §5 (future work, implemented here as an extension): recommend
    /// the *solver type along with* its optimal `(α, ε, δ)` — runs the EI
    /// recommendation once per candidate solver and picks the pair with the
    /// lowest predicted metric at the recommended parameters.
    ///
    /// `allow_cg` should only be set for SPD systems (CG diverges
    /// otherwise), mirroring the paper's dataset construction.
    pub fn recommend_with_solver(
        &mut self,
        a: &Csr,
        allow_cg: bool,
        xi: f64,
        seed: u64,
    ) -> (SolverType, McmcParams, f64) {
        let mut candidates = vec![SolverType::Gmres, SolverType::BiCgStab];
        if allow_cg {
            candidates.push(SolverType::Cg);
        }
        let mut best: Option<(SolverType, McmcParams, f64)> = None;
        for solver in candidates {
            let y_min = self.predicted_min(a, solver, seed);
            let (params, _ei) = self.recommend(a, solver, y_min, xi, seed);
            let (mu, _sigma) = self.predict(a, solver, params);
            if best.as_ref().is_none_or(|(_, _, b)| mu < *b) {
                best = Some((solver, params, mu));
            }
        }
        best.expect("recommend_with_solver: candidate list is never empty")
    }

    /// One BO round (Algorithm 1 inner loop) on a target matrix: propose
    /// `k` candidates by EI, measure each with `reps` replicates, and
    /// return the records (caller appends them to the dataset and refits).
    #[allow(clippy::too_many_arguments)]
    pub fn bo_round(
        &mut self,
        runner: &MeasurementRunner,
        a: &Csr,
        name: &str,
        solver: SolverType,
        y_min: f64,
        cfg: PipelineConfig,
    ) -> BoRoundOutcome {
        let graph = MatrixGraph::from_csr(a);
        let h_g = self.surrogate.embed_graph(&graph);
        let xa = self.xa_std.transform(&matrix_features(a));
        let (lo, hi) = McmcParams::search_box();
        let candidates = {
            let mut adapter =
                GnnSurrogateAdapter::new(&mut self.surrogate, h_g, xa, &self.xm_std, solver);
            propose_batch(
                &mut adapter,
                y_min,
                &lo,
                &hi,
                cfg.bo_batch,
                ProposeConfig {
                    xi: cfg.xi,
                    seed: cfg.seed,
                    ..Default::default()
                },
            )
        };
        let mut records = Vec::with_capacity(candidates.len());
        let mut best: Option<(McmcParams, f64)> = None;
        for (ci, cand) in candidates.iter().enumerate() {
            let params = McmcParams::from_clamped(cand);
            let (y_mean, y_std, ms) = runner.measure_replicated(
                a,
                params,
                solver,
                cfg.reps,
                cfg.seed.wrapping_add(77_000 + ci as u64 * 131),
            );
            let ys: Vec<f64> = ms.iter().map(|m| m.y).collect();
            let med = mcmcmi_stats::median(&ys).unwrap_or(f64::INFINITY);
            if best.as_ref().is_none_or(|(_, b)| med < *b) {
                best = Some((params, med));
            }
            records.push(DatasetRecord {
                matrix: name.to_string(),
                solver,
                params,
                y_mean,
                y_std,
                ys,
            });
        }
        let (best_params, best_median) = best.expect("bo_round: empty batch");
        BoRoundOutcome {
            records,
            best_params,
            best_median,
        }
    }
}

/// Evaluate the surrogate's predictions over a set of records on one matrix
/// (used by the Figure-1/2 analyses): returns `(μ̂_j, σ̂_j)` per record.
pub fn predict_records(
    rec: &mut Recommender,
    a: &Csr,
    records: &[DatasetRecord],
) -> Vec<(f64, f64)> {
    records
        .iter()
        .map(|r| rec.predict(a, r.solver, r.params))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::MeasureConfig;
    use mcmcmi_krylov::SolveOptions;
    use mcmcmi_matgen::{laplace_1d, pdd_real_sparse};

    fn fast_runner() -> MeasurementRunner {
        MeasurementRunner::new(MeasureConfig {
            solve: SolveOptions {
                tol: 1e-6,
                max_iter: 300,
                restart: 30,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    fn tiny_surrogate_cfg() -> SurrogateConfig {
        SurrogateConfig {
            gnn_hidden: 8,
            xa_hidden: 4,
            xm_hidden: 4,
            comb_hidden: 8,
            dropout: 0.0,
            ..SurrogateConfig::lite(crate::features::N_MATRIX_FEATURES, 6)
        }
    }

    fn fast_train_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 8,
            batch_size: 32,
            patience: 0,
            ..Default::default()
        }
    }

    #[test]
    fn end_to_end_fit_recommend_and_bo_round() {
        let runner = fast_runner();
        let matrices: Vec<(String, Csr, bool)> = vec![
            ("lap".into(), laplace_1d(24), true),
            ("pdd".into(), pdd_real_sparse(32, 2), false),
        ];
        let ds = PaperDataset::build(&runner, &matrices, 2, 1, 0);
        assert!(ds.len() > 200);

        let mut rec = Recommender::fit(&ds, &matrices, tiny_surrogate_cfg(), fast_train_cfg());

        // Prediction API produces a valid Gaussian.
        let (mu, sigma) = rec.predict(
            &matrices[0].1,
            SolverType::Gmres,
            McmcParams::new(1.0, 0.25, 0.25),
        );
        assert!(mu >= 0.0 && sigma > 0.0);

        // Recommendation lands inside the box.
        let target = pdd_real_sparse(28, 9); // unseen matrix
        let (params, _ei) = rec.recommend(&target, SolverType::Gmres, 1.0, 0.05, 3);
        let (lo, hi) = McmcParams::search_box();
        assert!(params.alpha >= lo[0] && params.alpha <= hi[0]);
        assert!(params.eps >= lo[1] && params.eps <= hi[1]);
        assert!(params.delta >= lo[2] && params.delta <= hi[2]);

        // BO round: small batch, measured records come back well-formed.
        let cfg = PipelineConfig {
            reps: 2,
            bo_batch: 3,
            xi: 0.05,
            train: fast_train_cfg(),
            seed: 1,
        };
        let round = rec.bo_round(&runner, &target, "target", SolverType::Gmres, 1.0, cfg);
        assert_eq!(round.records.len(), 3);
        assert!(round.best_median > 0.0);
        for r in &round.records {
            assert_eq!(r.ys.len(), 2);
            assert_eq!(r.matrix, "target");
        }

        // Retraining with the appended records (BO-enhanced model) works.
        let mut ds2 = ds.clone();
        let mut mats2 = matrices.clone();
        mats2.push(("target".into(), target.clone(), false));
        ds2.matrix_names.push("target".into());
        ds2.records.extend(round.records.clone());
        let mut enhanced = Recommender::fit(&ds2, &mats2, tiny_surrogate_cfg(), fast_train_cfg());
        let (mu2, sigma2) =
            enhanced.predict(&target, SolverType::Gmres, McmcParams::new(1.0, 0.25, 0.25));
        assert!(mu2 >= 0.0 && sigma2 > 0.0);
    }

    #[test]
    fn solver_recommendation_extension() {
        let runner = fast_runner();
        let matrices: Vec<(String, Csr, bool)> = vec![
            ("lap".into(), laplace_1d(24), true),
            ("pdd".into(), pdd_real_sparse(32, 2), false),
        ];
        let ds = PaperDataset::build(&runner, &matrices, 1, 0, 0);
        let mut rec = Recommender::fit(&ds, &matrices, tiny_surrogate_cfg(), fast_train_cfg());
        // Non-SPD target: CG must not be offered.
        let target = pdd_real_sparse(28, 5);
        let (solver, params, mu) = rec.recommend_with_solver(&target, false, 0.05, 1);
        assert_ne!(solver, SolverType::Cg);
        assert!(mu.is_finite() && mu >= 0.0);
        let (lo, hi) = McmcParams::search_box();
        assert!(params.alpha >= lo[0] && params.alpha <= hi[0]);
        assert!(params.delta >= lo[2] && params.delta <= hi[2]);
        // SPD target: CG is in the candidate set (may or may not win).
        let spd = laplace_1d(20);
        let (_s2, p2, _m2) = rec.recommend_with_solver(&spd, true, 0.05, 2);
        assert!(p2.eps >= lo[1] && p2.eps <= hi[1]);
    }

    #[test]
    fn predicted_min_is_attainable_by_predictions() {
        let runner = fast_runner();
        let matrices: Vec<(String, Csr, bool)> =
            vec![("pdd".into(), pdd_real_sparse(32, 2), false)];
        let ds = PaperDataset::build(&runner, &matrices, 1, 0, 0);
        let mut rec = Recommender::fit(&ds, &matrices, tiny_surrogate_cfg(), fast_train_cfg());
        let a = pdd_real_sparse(24, 8);
        let pmin = rec.predicted_min(&a, SolverType::Gmres, 3);
        // Any probe prediction is ≥ the multistart minimum (up to slack for
        // unexplored local minima of a tiny random surrogate).
        let (mu, _) = rec.predict(&a, SolverType::Gmres, McmcParams::new(2.0, 0.25, 0.25));
        assert!(pmin <= mu + 1e-6, "pmin {pmin} vs probe {mu}");
    }

    #[test]
    fn predict_records_aligns_with_inputs() {
        let runner = fast_runner();
        let matrices: Vec<(String, Csr, bool)> =
            vec![("pdd".into(), pdd_real_sparse(24, 4), false)];
        let ds = PaperDataset::build(&runner, &matrices, 1, 0, 0);
        let mut rec = Recommender::fit(&ds, &matrices, tiny_surrogate_cfg(), fast_train_cfg());
        let preds = predict_records(&mut rec, &matrices[0].1, &ds.records[..5]);
        assert_eq!(preds.len(), 5);
        assert!(preds.iter().all(|&(m, s)| m >= 0.0 && s > 0.0));
    }
}
