//! The labelled dataset of paper §4.2.
//!
//! A 4×4×4 grid over (α, ε, δ) is executed `reps` times per (matrix, solver
//! ∈ {GMRES, BiCGStab}); SPD matrices additionally contribute CG rows at
//! α = 0.1, and a few near-zero-α rows expose the surrogate to divergence.
//! Each `(matrix, solver, x_M)` cell becomes one record with the sample
//! mean ȳ and sample standard deviation s.

use crate::features::matrix_features;
use crate::measure::MeasurementRunner;
use mcmcmi_gnn::{GraphSample, MatrixGraph, SurrogateDataset};
use mcmcmi_krylov::SolverType;
use mcmcmi_mcmc::McmcParams;
use mcmcmi_sparse::Csr;
use mcmcmi_stats::Standardizer;
use serde::{Deserialize, Serialize};

/// One labelled cell of the dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetRecord {
    /// Matrix name (Table-1 naming).
    pub matrix: String,
    /// Krylov solver the cell was measured with.
    pub solver: SolverType,
    /// MCMC parameters.
    pub params: McmcParams,
    /// Sample mean of the metric y over the replicates.
    pub y_mean: f64,
    /// Sample standard deviation.
    pub y_std: f64,
    /// Raw replicate values.
    pub ys: Vec<f64>,
}

/// The dataset plus the matrix registry it refers to.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PaperDataset {
    /// Matrix names in registry order.
    pub matrix_names: Vec<String>,
    /// Labelled records.
    pub records: Vec<DatasetRecord>,
}

impl PaperDataset {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are present.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Build the grid dataset for a set of named matrices.
    ///
    /// `reps` is the replicate count per cell (paper: 10); `spd` flags which
    /// matrices additionally get the CG rows; `divergence_rows` adds the
    /// near-zero-α samples (per matrix, GMRES only).
    pub fn build(
        runner: &MeasurementRunner,
        matrices: &[(String, Csr, bool)],
        reps: usize,
        divergence_rows: usize,
        seed: u64,
    ) -> Self {
        let grid = McmcParams::paper_grid();
        let mut ds = PaperDataset::default();
        for (mi, (name, a, spd)) in matrices.iter().enumerate() {
            ds.matrix_names.push(name.clone());
            let mut cells: Vec<(McmcParams, SolverType)> = Vec::new();
            for &p in &grid {
                cells.push((p, SolverType::Gmres));
                cells.push((p, SolverType::BiCgStab));
            }
            if *spd {
                // Paper: "the symmetric Laplace matrices were additionally
                // run with CG at α = 0.1".
                let epsdeltas = [0.5, 0.25, 0.125, 0.0625];
                for &e in &epsdeltas {
                    for &d in &epsdeltas {
                        cells.push((McmcParams::new(0.1, e, d), SolverType::Cg));
                    }
                }
            }
            for k in 0..divergence_rows {
                let eps = [0.5, 0.25, 0.125, 0.0625][k % 4];
                cells.push((McmcParams::new(0.01, eps, 0.125), SolverType::Gmres));
            }
            // One baseline per (matrix, solver): the Eq.-4 denominator.
            let mut baselines = std::collections::HashMap::new();
            for (ci, (p, solver)) in cells.into_iter().enumerate() {
                let cell_seed = seed
                    .wrapping_add(mi as u64 * 1_000_000)
                    .wrapping_add(ci as u64 * 1_000);
                let baseline = *baselines
                    .entry(solver)
                    .or_insert_with(|| runner.baseline_steps(a, solver));
                let (y_mean, y_std, ms) = runner
                    .measure_replicated_with_baseline(a, p, solver, reps, cell_seed, baseline);
                ds.records.push(DatasetRecord {
                    matrix: name.clone(),
                    solver,
                    params: p,
                    y_mean,
                    y_std,
                    ys: ms.into_iter().map(|m| m.y).collect(),
                });
            }
        }
        ds
    }

    /// Raw (unstandardised) `x_M` vector for a record:
    /// `[α, ε, δ, onehot(solver)]`.
    pub fn raw_xm(record: &DatasetRecord) -> Vec<f64> {
        let mut v = record.params.as_vec().to_vec();
        v.extend_from_slice(&record.solver.one_hot());
        v
    }

    /// Convert to the GNN trainer's format, fitting the feature
    /// standardisers on this dataset (paper §3.1). Returns the dataset plus
    /// the fitted `x_A` and `x_M` standardisers (needed at inference).
    pub fn to_surrogate_dataset(
        &self,
        matrices: &[(String, Csr, bool)],
    ) -> (SurrogateDataset, Standardizer, Standardizer) {
        assert!(!self.is_empty(), "to_surrogate_dataset: empty dataset");
        // Fit standardisers.
        let xa_rows: Vec<Vec<f64>> = matrices
            .iter()
            .map(|(_, a, _)| matrix_features(a))
            .collect();
        let xa_std = Standardizer::fit(&xa_rows);
        let xm_rows: Vec<Vec<f64>> = self.records.iter().map(Self::raw_xm).collect();
        let xm_std = Standardizer::fit(&xm_rows);

        let mut ds = SurrogateDataset::default();
        let mut index_of = std::collections::HashMap::new();
        for ((name, a, _), xa) in matrices.iter().zip(&xa_rows) {
            let idx = ds.add_matrix(MatrixGraph::from_csr(a), xa_std.transform(xa));
            index_of.insert(name.clone(), idx);
        }
        for (rec, xm) in self.records.iter().zip(&xm_rows) {
            let Some(&idx) = index_of.get(&rec.matrix) else {
                continue; // record for a matrix not in this registry subset
            };
            ds.push_sample(GraphSample {
                matrix_idx: idx,
                xm: xm_std.transform(xm),
                y_mean: rec.y_mean,
                y_std: rec.y_std,
            });
        }
        (ds, xa_std, xm_std)
    }

    /// Persist to a JSON file.
    pub fn save_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(std::io::BufWriter::new(file), self).map_err(std::io::Error::other)
    }

    /// Load from a JSON file.
    pub fn load_json(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        serde_json::from_reader(std::io::BufReader::new(file)).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::MeasureConfig;
    use mcmcmi_matgen::{laplace_1d, pdd_real_sparse};

    fn tiny_matrices() -> Vec<(String, Csr, bool)> {
        vec![
            ("lap16".into(), laplace_1d(16), true),
            ("pdd24".into(), pdd_real_sparse(24, 1), false),
        ]
    }

    fn fast_runner() -> MeasurementRunner {
        MeasurementRunner::new(MeasureConfig {
            solve: mcmcmi_krylov::SolveOptions {
                tol: 1e-6,
                max_iter: 300,
                restart: 30,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    #[test]
    fn grid_counts_match_paper_structure() {
        // 64 grid points × 2 solvers = 128 per matrix; SPD adds 16 CG rows;
        // plus 2 divergence rows each.
        let ds = PaperDataset::build(&fast_runner(), &tiny_matrices(), 1, 2, 0);
        let lap: Vec<_> = ds.records.iter().filter(|r| r.matrix == "lap16").collect();
        let pdd: Vec<_> = ds.records.iter().filter(|r| r.matrix == "pdd24").collect();
        assert_eq!(lap.len(), 128 + 16 + 2);
        assert_eq!(pdd.len(), 128 + 2);
        let cg = lap.iter().filter(|r| r.solver == SolverType::Cg).count();
        assert_eq!(cg, 16);
        assert!(lap
            .iter()
            .filter(|r| r.solver == SolverType::Cg)
            .all(|r| r.params.alpha == 0.1));
    }

    #[test]
    fn records_have_replicate_statistics() {
        let ds = PaperDataset::build(
            &fast_runner(),
            &[("pdd24".into(), pdd_real_sparse(24, 1), false)],
            3,
            0,
            0,
        );
        for r in &ds.records {
            assert_eq!(r.ys.len(), 3);
            assert!((mcmcmi_stats::mean(&r.ys) - r.y_mean).abs() < 1e-12);
            assert!(r.y_mean > 0.0);
        }
    }

    #[test]
    fn surrogate_conversion_standardises() {
        let mats = tiny_matrices();
        let ds = PaperDataset::build(&fast_runner(), &mats, 1, 0, 0);
        let (sds, _xa_std, xm_std) = ds.to_surrogate_dataset(&mats);
        assert_eq!(sds.graphs.len(), 2);
        assert_eq!(sds.len(), ds.len());
        assert_eq!(xm_std.dim(), 6);
        // Standardised xm columns should have near-zero mean.
        let dim = sds.samples[0].xm.len();
        for d in 0..dim {
            let m: f64 = sds.samples.iter().map(|s| s.xm[d]).sum::<f64>() / sds.len() as f64;
            assert!(m.abs() < 1e-8, "column {d} mean {m}");
        }
    }

    #[test]
    fn json_roundtrip() {
        let ds = PaperDataset::build(
            &fast_runner(),
            &[("pdd24".into(), pdd_real_sparse(24, 1), false)],
            1,
            0,
            0,
        );
        let dir = std::env::temp_dir().join("mcmcmi_ds_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        ds.save_json(&path).unwrap();
        let ds2 = PaperDataset::load_json(&path).unwrap();
        assert_eq!(ds.len(), ds2.len());
        assert_eq!(ds.records[0].y_mean, ds2.records[0].y_mean);
    }

    #[test]
    fn build_is_deterministic() {
        let mats = vec![("pdd24".to_string(), pdd_real_sparse(24, 1), false)];
        let a = PaperDataset::build(&fast_runner(), &mats, 2, 1, 5);
        let b = PaperDataset::build(&fast_runner(), &mats, 2, 1, 5);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.ys, y.ys);
        }
    }
}
