//! Crash-safe JSON snapshot files — the persistence primitive behind the
//! PR-5 model snapshots and the serving daemon's tuned-parameter store.
//!
//! A snapshot is a single JSON document written atomically: the bytes go
//! to a `.tmp` sibling first and are renamed over the target, so a crash
//! (or a drain deadline firing mid-write) leaves either the old snapshot
//! or the new one on disk — never a torn file. Loading tolerates a missing
//! file (fresh start) but surfaces parse errors loudly: a corrupt snapshot
//! is a bug to investigate, not a state to silently reset.

use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Serialize `value` as JSON and atomically replace `path` with it.
///
/// The temporary sibling lives in the same directory (`<name>.tmp`) so the
/// final `rename` never crosses a filesystem boundary.
pub fn save_json_snapshot<T: Serialize>(path: &Path, value: &T) -> io::Result<()> {
    let json = serde_json::to_string(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, json.as_bytes())?;
    std::fs::rename(&tmp, path)
}

/// Load a JSON snapshot written by [`save_json_snapshot`].
///
/// Returns `Ok(None)` when the file does not exist (first boot), the
/// parsed value when it does, and an error for unreadable or unparsable
/// contents.
pub fn load_json_snapshot<T: Deserialize>(path: &Path) -> io::Result<Option<T>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    serde_json::from_str(&text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Demo {
        name: String,
        seeds: Vec<u64>,
        scale: f64,
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mcmcmi_snapshot_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_and_overwrite() {
        let path = tmp_path("round_trip");
        let a = Demo {
            name: "x".into(),
            seeds: vec![1, 2, 3],
            scale: 0.1,
        };
        save_json_snapshot(&path, &a).unwrap();
        assert_eq!(load_json_snapshot::<Demo>(&path).unwrap().unwrap(), a);
        let b = Demo {
            name: "y".into(),
            seeds: vec![9],
            scale: -2.5,
        };
        save_json_snapshot(&path, &b).unwrap();
        assert_eq!(load_json_snapshot::<Demo>(&path).unwrap().unwrap(), b);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_a_fresh_start() {
        let path = tmp_path("missing");
        assert!(load_json_snapshot::<Demo>(&path).unwrap().is_none());
    }

    #[test]
    fn corrupt_snapshot_is_an_error_not_a_reset() {
        let path = tmp_path("corrupt");
        std::fs::write(&path, b"{ not json").unwrap();
        assert!(load_json_snapshot::<Demo>(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
