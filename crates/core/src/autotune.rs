//! Joint auto-tuning of MCMC build parameters and compression policy —
//! the loop that closes the paper's "AI-tuned" promise into the solve
//! path.
//!
//! The recommender ([`crate::pipeline::Recommender`]) predicts good
//! `(α, ε, δ)`; the PR-4 [`CompressionPolicy`] knobs (`drop_tol`,
//! `row_topk`, `precision`) were designed as *additional* tuner axes; and
//! the safeguarded build ([`McmcInverse::build_safeguarded`]) makes bad
//! proposals cheap instead of catastrophic. [`AutoTuner`] wires the three
//! together over the joint six-dimensional space:
//!
//! ```text
//! (α, ε, δ)              — MCMC build quality/cost
//!   × (drop_tol, row_topk, precision) — apply bandwidth vs iterations
//! ```
//!
//! Each trial runs **recommend/sample → safeguarded build → compress →
//! short probe-solve** and is scored by a *deterministic byte-cost
//! model*: `iterations × bytes-traversed-per-iteration` (matrix CSR +
//! compressed-preconditioner CSR). Wall-clock would be the obvious score,
//! but it would make tuning results machine- and thread-count-dependent;
//! the byte model preserves the workspace-wide bit-reproducibility
//! contract (same seed ⇒ same tuned session at any `RAYON_NUM_THREADS`)
//! while still pricing exactly what compression buys — fewer bytes per
//! Krylov iteration.
//!
//! Probing is **two-fidelity**. Ranking probes run at a relaxed
//! tolerance (100× the budget's, capped at 1e−3) and a quarter of the
//! iteration budget — Krylov convergence orders rarely cross between
//! 1e−4 and 1e−6, and a candidate that cannot reach 1e−4 cheaply has no
//! business being certified, so paying full-depth solves for *losing*
//! candidates is pure waste (on the climate operator a failed full-depth
//! probe costs minutes; a failed relaxed probe, seconds). The best few
//! ranked candidates are then **certified** at the budget's real
//! options; the first that converges is the winner, and the report's
//! `probe_iters`/`score` come from that certified solve — never from the
//! relaxed pass.
//!
//! Candidates come from the TPE sampler (`mcmcmi_hpo`) over the joint
//! space, optionally warm-started by a trained [`Recommender`]'s
//! `(α, ε, δ)` recommendation plus fixed heuristic anchors, so small
//! budgets behave sensibly. Probes run through the *flexible* Krylov
//! drivers (`FGMRES`/`FCG`) — a sparsified, rounded inverse is exactly
//! the inexact preconditioner they exist for.

use crate::pipeline::Recommender;
use mcmcmi_hpo::{ParamKind, SearchSpace, TpeConfig, TpeSampler};
use mcmcmi_krylov::{
    solve_batch, CompressedPrecond, SessionTuner, SolveSession, SolverType, TuneBudget, TuneError,
    TunedParts,
};
use mcmcmi_mcmc::{
    BuildAttempt, BuildConfig, CompressionPolicy, CompressionReport, McmcInverse, McmcParams,
    SafeguardConfig, StoragePrecision,
};
use mcmcmi_sparse::{Csr, SpecializedBackend};
use serde::{Deserialize, Serialize};

/// `row_topk` values the categorical axis can choose (index 0 = no cap).
/// Spanning "unlimited" down to "a handful per row" covers both the
/// all-signal inverses (Laplacians — caps hurt) and the noise-tailed ones
/// (high-fill builds where most of a row is Monte-Carlo dust).
pub const ROW_TOPK_CHOICES: [Option<usize>; 5] = [None, Some(4), Some(8), Some(16), Some(32)];

/// Fixed settings of an [`AutoTuner`] (the searched axes live in
/// [`AutoTuner::joint_space`], not here).
#[derive(Clone, Copy, Debug)]
pub struct AutotuneConfig {
    /// Base Krylov family for probes (probes actually run its
    /// [`SolverType::flexible`] form; pass `Cg` for SPD systems).
    pub solver: SolverType,
    /// Matrix-independent build settings (fill budget, truncation, seed).
    pub build: BuildConfig,
    /// Divergence-detection and α-backoff settings.
    pub safeguard: SafeguardConfig,
}

impl Default for AutotuneConfig {
    fn default() -> Self {
        Self {
            solver: SolverType::Gmres,
            build: BuildConfig::default(),
            safeguard: SafeguardConfig::default(),
        }
    }
}

/// One evaluated configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrialRecord {
    /// Requested MCMC parameters (pre-backoff).
    pub requested: McmcParams,
    /// α the safeguard actually built with; `None` when every backoff
    /// attempt diverged.
    pub effective_alpha: Option<f64>,
    /// Compression policy of this trial.
    pub policy: CompressionPolicy,
    /// Spectral-radius estimate of the accepted (or last rejected)
    /// splitting.
    pub rho_estimate: f64,
    /// Whether every probe column converged *at the relaxed ranking
    /// fidelity* (see [`AutotuneReport::relaxed_probe_opts`]).
    pub converged: bool,
    /// Worst probe column's iteration count at the relaxed fidelity
    /// (0 when the build failed).
    pub probe_iters: usize,
    /// Fraction of preconditioner nnz surviving compression (1.0 when the
    /// build failed).
    pub nnz_kept: f64,
    /// Deterministic byte-cost score at the relaxed fidelity (lower is
    /// better).
    pub score: f64,
    /// The safeguard's full α-backoff trail for this trial — for rejected
    /// builds this is *why* the trial failed (every α tried and its
    /// ρ-estimate), not just that it scored badly.
    #[serde(default)]
    pub attempts: Vec<BuildAttempt>,
}

/// Diagnostics of a finished tuning run (everything except the
/// preconditioner itself, so it serialises into perf records).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AutotuneReport {
    /// Winning effective MCMC parameters (α after any backoff).
    pub params: McmcParams,
    /// Winning requested parameters (what the sampler proposed).
    pub requested_params: McmcParams,
    /// Winning compression policy.
    pub policy: CompressionPolicy,
    /// Flexible driver the probes validated.
    pub solver: SolverType,
    /// Worst probe column's iterations for the winner, **certified at the
    /// budget's full probe options** (never the relaxed ranking pass).
    pub probe_iters: usize,
    /// Winner's byte-cost score at the certified iteration count.
    pub score: f64,
    /// Winner's compression diagnostics.
    pub compression: CompressionReport,
    /// Did the winner's build need α backoff?
    pub backed_off: bool,
    /// The relaxed options the *ranking* probes ran at (each
    /// [`TrialRecord`]'s `converged`/`probe_iters`/`score` refer to
    /// these).
    pub relaxed_probe_opts: mcmcmi_krylov::SolveOptions,
    /// Candidates that went through full-fidelity certification before
    /// one converged (1 = the top-ranked candidate certified first try).
    pub certification_attempts: usize,
    /// Every trial, in evaluation order.
    pub trials: Vec<TrialRecord>,
}

/// The joint `(α, ε, δ) × (drop_tol, row_topk, precision)` tuner.
///
/// Implements [`SessionTuner`], so `SolveSession::auto(&a, budget, &mut
/// tuner)` yields a tuned, compressed session in one call; or use
/// [`AutoTuner::auto_session`] for the same thing without importing the
/// trait.
pub struct AutoTuner {
    cfg: AutotuneConfig,
    recommender: Option<Recommender>,
}

impl AutoTuner {
    /// Tuner with no surrogate: anchors + TPE exploration only.
    pub fn new(cfg: AutotuneConfig) -> Self {
        Self {
            cfg,
            recommender: None,
        }
    }

    /// Warm-start the `(α, ε, δ)` axes from a trained recommender: its
    /// EI recommendation becomes the first candidate's build parameters.
    pub fn with_recommender(mut self, recommender: Recommender) -> Self {
        self.recommender = Some(recommender);
        self
    }

    /// The tuner's settings.
    pub fn config(&self) -> &AutotuneConfig {
        &self.cfg
    }

    /// The joint search space: the recommender's `(α, ε, δ)` box extended
    /// with the three `CompressionPolicy` axes.
    pub fn joint_space() -> SearchSpace {
        let (lo, hi) = McmcParams::search_box();
        SearchSpace::new()
            .add(
                "alpha",
                ParamKind::LogUniform {
                    lo: lo[0],
                    hi: hi[0],
                },
            )
            .add(
                "eps",
                ParamKind::LogUniform {
                    lo: lo[1],
                    hi: hi[1],
                },
            )
            .add(
                "delta",
                ParamKind::LogUniform {
                    lo: lo[2],
                    hi: hi[2],
                },
            )
            .add("drop_tol", ParamKind::LogUniform { lo: 1e-4, hi: 3e-1 })
            .add(
                "row_topk",
                ParamKind::Choice {
                    n: ROW_TOPK_CHOICES.len(),
                },
            )
            .add("precision", ParamKind::Choice { n: 2 })
    }

    /// Decode a point of [`AutoTuner::joint_space`] into build parameters
    /// and a compression policy.
    pub fn decode(x: &[f64]) -> (McmcParams, CompressionPolicy) {
        assert_eq!(x.len(), 6, "joint-space point must have 6 components");
        let params = McmcParams::from_clamped(&x[..3]);
        let policy = CompressionPolicy {
            drop_tol: x[3],
            row_topk: ROW_TOPK_CHOICES[x[4] as usize],
            precision: if x[5] as usize == 1 {
                StoragePrecision::F32
            } else {
                StoragePrecision::F64
            },
        };
        (params, policy)
    }

    /// Encode `(params, policy)` as a joint-space point (inverse of
    /// [`AutoTuner::decode`] up to `row_topk` values outside
    /// [`ROW_TOPK_CHOICES`], which snap to the nearest choice).
    fn encode(params: McmcParams, policy: &CompressionPolicy) -> Vec<f64> {
        let topk_idx = match policy.row_topk {
            None => 0usize,
            Some(k) => ROW_TOPK_CHOICES
                .iter()
                .enumerate()
                .skip(1)
                .min_by_key(|(_, c)| (c.unwrap() as i64 - k as i64).abs())
                .map(|(i, _)| i)
                .unwrap(),
        };
        vec![
            params.alpha,
            params.eps,
            params.delta,
            policy.drop_tol.clamp(1e-4, 3e-1),
            topk_idx as f64,
            match policy.precision {
                StoragePrecision::F64 => 0.0,
                StoragePrecision::F32 => 1.0,
            },
        ]
    }

    /// Deterministic probe right-hand sides `b_c = A·x*_c` for oscillatory
    /// manufactured solutions (same rationale as the measurement runner:
    /// trivial right-hand sides make differential operators look easy).
    fn probe_rhs(a: &Csr, k: usize) -> Vec<Vec<f64>> {
        let n = a.nrows();
        (0..k)
            .map(|c| {
                let xstar: Vec<f64> = (0..n)
                    .map(|i| {
                        ((0.7 + 0.13 * c as f64) * i as f64).sin()
                            + 0.3 * (2.3 * i as f64 + c as f64).cos()
                    })
                    .collect();
                a.spmv_alloc(&xstar)
            })
            .collect()
    }

    /// Bytes one Krylov iteration streams: the matrix CSR (indptr +
    /// indices + values) plus the compressed preconditioner CSR. The
    /// deterministic stand-in for apply wall-time.
    fn iteration_bytes(a: &Csr, p_nnz: usize, p_value_bytes: usize) -> f64 {
        let n = a.nrows();
        let a_bytes = (n + 1) * 8 + a.nnz() * 16;
        let p_bytes = (n + 1) * 8 + p_nnz * 8 + p_value_bytes;
        (a_bytes + p_bytes) as f64
    }

    /// Run the budgeted joint search on `a`. Returns the winning
    /// compressed preconditioner and the full diagnostics.
    pub fn tune_parts(
        &mut self,
        a: &Csr,
        budget: &TuneBudget,
    ) -> Result<(CompressedPrecond, AutotuneReport), TuneError> {
        assert!(budget.trials >= 1, "AutoTuner: need at least one trial");
        let flex = self.cfg.solver.flexible();
        let builder = McmcInverse::new(self.cfg.build);
        // Detect A's structure once up front: every trial's probe solve and
        // every certification solve re-traverses the same operator, so the
        // one-time scan amortises across the whole budget and each matvec
        // dispatches straight to the banded/stencil/generic kernel family.
        let a_op = SpecializedBackend::detect(a.clone());
        let rhs = Self::probe_rhs(a, budget.probe_rhs.max(1));
        // Ranking fidelity: two orders of magnitude looser and a quarter
        // of the depth — losing candidates must fail cheaply. The 1e-3
        // cap keeps ranking meaningful at tight budgets, but must never
        // make ranking *stricter* than certification (a caller with a
        // loose probe tolerance like 1e-2 would otherwise see every
        // certifiable candidate rejected by its own ranking pass).
        let relaxed_opts = mcmcmi_krylov::SolveOptions {
            tol: (budget.probe_opts.tol * 100.0)
                .min(1e-3)
                .max(budget.probe_opts.tol),
            // The 200 floor keeps ranking meaningful, but ranking must
            // never iterate deeper than certification does.
            max_iter: (budget.probe_opts.max_iter / 4)
                .max(200)
                .min(budget.probe_opts.max_iter),
            ..budget.probe_opts
        };
        // Failure scores must dominate every converged score and still
        // rank failures against each other so TPE learns from them.
        let worst_bytes = Self::iteration_bytes(a, 4 * a.nnz().max(1), 4 * a.nnz().max(1) * 8);
        let probe_penalty = 8.0 * budget.probe_opts.max_iter as f64 * worst_bytes;
        let divergent_penalty = 64.0 * probe_penalty;

        let mut tpe = TpeSampler::new(
            Self::joint_space(),
            TpeConfig {
                // The anchors count as startup observations; beyond them a
                // short random phase keeps small budgets exploratory.
                n_startup: 4,
                seed: budget.seed,
                ..Default::default()
            },
        );

        // Fixed anchors: a balanced default, a compression-aggressive
        // variant, and a strong-α near-diagonal build (badly row-scaled
        // operators — the climate family — are best served by a cheap
        // scaling-dominated inverse, which pure exploration rarely finds
        // in a small budget). With a recommender, its (α, ε, δ)
        // recommendation replaces the first anchor's build parameters.
        let mut anchors: Vec<Vec<f64>> = Vec::new();
        let anchor_a = if let Some(rec) = self.recommender.as_mut() {
            let y_min = rec.predicted_min(a, self.cfg.solver, budget.seed);
            let (params, _ei) = rec.recommend(a, self.cfg.solver, y_min, 0.05, budget.seed);
            Self::encode(params, &CompressionPolicy::f32(1e-2))
        } else {
            Self::encode(
                McmcParams::new(1.0, 0.25, 0.125),
                &CompressionPolicy::f64(1e-2),
            )
        };
        anchors.push(anchor_a);
        anchors.push(Self::encode(
            McmcParams::new(2.0, 0.5, 0.25),
            &CompressionPolicy::f32(3e-2),
        ));
        anchors.push(Self::encode(
            McmcParams::new(4.0, 0.5, 0.25),
            &CompressionPolicy::f32(5e-2),
        ));

        /// A trial that converged its relaxed probe, kept alive for the
        /// certification pass. At most [`CERTIFY_LIMIT`] candidates are
        /// retained (best relaxed scores) so a long tuning run on a large
        /// operator does not accumulate one preconditioner per trial.
        struct Candidate {
            precond: CompressedPrecond,
            report: CompressionReport,
            trial: TrialRecord,
        }
        const CERTIFY_LIMIT: usize = 3;
        let mut candidates: Vec<Candidate> = Vec::new();
        let mut trials: Vec<TrialRecord> = Vec::with_capacity(budget.trials);
        let mut best_rel = f64::INFINITY;

        for t in 0..budget.trials {
            let x = if t < anchors.len() {
                anchors[t].clone()
            } else {
                tpe.suggest()
            };
            let (requested, policy) = Self::decode(&x);
            let trial = match builder.build_safeguarded(a, requested, &self.cfg.safeguard) {
                Err(err) => {
                    let mcmcmi_mcmc::BuildError::Divergent { attempts } = &err;
                    let last = attempts.last().expect("safeguard records every attempt");
                    TrialRecord {
                        requested,
                        effective_alpha: None,
                        policy,
                        rho_estimate: last.rho_estimate,
                        converged: false,
                        probe_iters: 0,
                        nnz_kept: 1.0,
                        // More divergent ⇒ worse, so the sampler still
                        // gets a gradient out of failed builds.
                        score: divergent_penalty * (1.0 + last.rho_estimate.min(1e3)),
                        attempts: attempts.clone(),
                    }
                }
                Ok(guarded) => {
                    let (precond, report) = guarded.compress(&policy);
                    let results = solve_batch(&a_op, &rhs, &precond, flex, relaxed_opts);
                    let converged = results.iter().all(|r| r.converged);
                    let iters = results.iter().map(|r| r.iterations).max().unwrap_or(0);
                    let rel = results
                        .iter()
                        .map(|r| r.rel_residual)
                        .fold(0.0f64, f64::max);
                    best_rel = best_rel.min(rel);
                    let bytes = Self::iteration_bytes(a, precond.nnz(), report.value_bytes_after);
                    let score = if converged {
                        iters as f64 * bytes
                    } else {
                        probe_penalty * (1.0 + rel.min(1e3))
                    };
                    let trial = TrialRecord {
                        requested,
                        effective_alpha: Some(guarded.params.alpha),
                        policy,
                        rho_estimate: guarded.rho_estimate,
                        converged,
                        probe_iters: iters,
                        nnz_kept: report.nnz_kept,
                        score,
                        attempts: guarded.attempts.clone(),
                    };
                    if converged {
                        candidates.push(Candidate {
                            precond,
                            report,
                            trial: trial.clone(),
                        });
                        // Bounded retention: only the certification set
                        // survives (stable sort ⇒ insertion order breaks
                        // score ties deterministically).
                        candidates.sort_by(|p, q| {
                            p.trial
                                .score
                                .partial_cmp(&q.trial.score)
                                .expect("scores are finite")
                        });
                        candidates.truncate(CERTIFY_LIMIT);
                    }
                    trial
                }
            };
            tpe.observe(x, trial.score);
            trials.push(trial);
        }

        // Certification: full-fidelity solves for the best-ranked
        // candidates (already sorted and capped), first convergence wins.
        // Bounded so a pathological relaxed ranking cannot re-spend the
        // whole probe budget.
        for (attempt, cand) in candidates.into_iter().enumerate() {
            let results = solve_batch(&a_op, &rhs, &cand.precond, flex, budget.probe_opts);
            let rel = results
                .iter()
                .map(|r| r.rel_residual)
                .fold(0.0f64, f64::max);
            best_rel = best_rel.min(rel);
            if !results.iter().all(|r| r.converged) {
                continue;
            }
            let iters = results.iter().map(|r| r.iterations).max().unwrap_or(0);
            let bytes = Self::iteration_bytes(a, cand.precond.nnz(), cand.report.value_bytes_after);
            let report = AutotuneReport {
                params: McmcParams::new(
                    cand.trial
                        .effective_alpha
                        .expect("certified trial always built"),
                    cand.trial.requested.eps,
                    cand.trial.requested.delta,
                ),
                requested_params: cand.trial.requested,
                policy: cand.trial.policy,
                solver: flex,
                probe_iters: iters,
                score: iters as f64 * bytes,
                compression: cand.report,
                backed_off: cand.trial.effective_alpha != Some(cand.trial.requested.alpha),
                relaxed_probe_opts: relaxed_opts,
                certification_attempts: attempt + 1,
                trials,
            };
            return Ok((cand.precond, report));
        }

        if trials.iter().all(|t| t.effective_alpha.is_none()) {
            let detail = trials
                .iter()
                .map(|t| format!("α={:.4}: ρ̂={:.3}", t.requested.alpha, t.rho_estimate))
                .collect::<Vec<_>>()
                .join("; ");
            Err(TuneError::AllBuildsDivergent { detail })
        } else {
            Err(TuneError::NoConvergingCandidate {
                trials: trials.len(),
                best_rel_residual: best_rel,
            })
        }
    }

    /// One-call tuned session: search, then bind the winner to `a`
    /// (convenience over `SolveSession::auto` that skips the trait
    /// import).
    pub fn auto_session(
        &mut self,
        a: &Csr,
        budget: TuneBudget,
    ) -> Result<(SolveSession<CompressedPrecond>, AutotuneReport), TuneError> {
        SolveSession::auto(a, budget, self)
    }
}

impl SessionTuner for AutoTuner {
    type Precond = CompressedPrecond;
    type Report = AutotuneReport;

    fn tune(
        &mut self,
        a: &Csr,
        budget: &TuneBudget,
    ) -> Result<TunedParts<CompressedPrecond, AutotuneReport>, TuneError> {
        let (precond, report) = self.tune_parts(a, budget)?;
        Ok(TunedParts {
            precond,
            solver: report.solver,
            opts: budget.probe_opts,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmcmi_matgen::{fd_laplace_2d, pdd_real_sparse};

    #[test]
    fn joint_space_has_six_named_dimensions() {
        let sp = AutoTuner::joint_space();
        assert_eq!(sp.dim(), 6);
        let names: Vec<&str> = sp.specs().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["alpha", "eps", "delta", "drop_tol", "row_topk", "precision"]
        );
    }

    #[test]
    fn decode_maps_choices_onto_policy() {
        let (params, policy) = AutoTuner::decode(&[2.0, 0.25, 0.125, 5e-2, 2.0, 1.0]);
        assert_eq!(params, McmcParams::new(2.0, 0.25, 0.125));
        assert_eq!(policy.drop_tol, 5e-2);
        assert_eq!(policy.row_topk, Some(8));
        assert_eq!(policy.precision, StoragePrecision::F32);
        // Out-of-box (α, ε, δ) clamp into the search box.
        let (p2, _) = AutoTuner::decode(&[100.0, 2.0, 1e-9, 1e-2, 0.0, 0.0]);
        let (lo, hi) = McmcParams::search_box();
        assert_eq!(p2.alpha, hi[0]);
        assert_eq!(p2.eps, hi[1]);
        assert_eq!(p2.delta, lo[2]);
    }

    #[test]
    fn encode_round_trips_through_decode() {
        let params = McmcParams::new(1.5, 0.3, 0.1);
        let policy = CompressionPolicy {
            drop_tol: 2e-2,
            row_topk: Some(16),
            precision: StoragePrecision::F32,
        };
        let (p2, pol2) = AutoTuner::decode(&AutoTuner::encode(params, &policy));
        assert_eq!(p2, params);
        assert_eq!(pol2.drop_tol, policy.drop_tol);
        assert_eq!(pol2.row_topk, policy.row_topk);
        assert_eq!(pol2.precision, policy.precision);
    }

    #[test]
    fn tunes_a_small_system_and_session_solves() {
        let a = fd_laplace_2d(10);
        let mut tuner = AutoTuner::new(AutotuneConfig::default());
        let (mut session, report) = tuner
            .auto_session(&a, TuneBudget::smoke(3))
            .expect("laplacian tunes");
        assert!(report.probe_iters > 0);
        assert!(report.solver.is_flexible());
        assert!(report.trials.len() <= TuneBudget::smoke(3).trials);
        assert!(report.compression.nnz_kept <= 1.0);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin()).collect();
        let r = session.solve(&b);
        assert!(
            r.converged,
            "tuned session must solve: {:?}",
            r.rel_residual
        );
    }

    #[test]
    fn report_serialises() {
        let a = pdd_real_sparse(48, 5);
        let mut tuner = AutoTuner::new(AutotuneConfig::default());
        let (_, report) = tuner
            .tune_parts(&a, &TuneBudget::smoke(1))
            .expect("pdd tunes");
        let s = serde_json::to_string(&report).unwrap();
        let back: AutotuneReport = serde_json::from_str(&s).unwrap();
        assert_eq!(back.params, report.params);
        assert_eq!(back.trials.len(), report.trials.len());
        assert_eq!(back.score, report.score);
    }

    #[test]
    fn winner_is_a_certified_converged_trial() {
        let a = fd_laplace_2d(8);
        let mut tuner = AutoTuner::new(AutotuneConfig::default());
        let budget = TuneBudget::smoke(9);
        let (_, report) = tuner.tune_parts(&a, &budget).unwrap();
        // The winner came out of certification, not the relaxed pass.
        assert!((1..=3).contains(&report.certification_attempts));
        assert!(report.relaxed_probe_opts.tol > budget.probe_opts.tol);
        assert!(report.relaxed_probe_opts.max_iter < budget.probe_opts.max_iter);
        // It corresponds to a trial that converged its relaxed probe.
        assert!(report
            .trials
            .iter()
            .any(|t| t.converged && t.requested == report.requested_params));
        // Byte-cost score: certified iters × bytes > 0.
        assert!(report.score > 0.0 && report.score.is_finite());
        assert!(report.probe_iters > 0);
    }

    #[test]
    fn divergence_prone_matrix_survives_via_backoff_and_reports_it() {
        // Non-dominant ring: every sampled α below ~4 needs backoff; the
        // tuner must still deliver a converging session.
        let mut coo = mcmcmi_sparse::Coo::new(48, 48);
        for i in 0..48usize {
            coo.push(i, i, 1.0);
            coo.push(i, (i + 1) % 48, 2.5);
            coo.push(i, (i + 5) % 48, -2.5);
        }
        let a = coo.to_csr();
        let mut tuner = AutoTuner::new(AutotuneConfig::default());
        let (mut session, report) = tuner
            .auto_session(&a, TuneBudget::smoke(2))
            .expect("backoff must rescue the ring");
        assert!(report
            .trials
            .iter()
            .any(|t| t.effective_alpha.unwrap_or(0.0) > t.requested.alpha));
        // The backoff trail rides along in each trial record: a backed-off
        // build shows every α it burned, with the rejected ones first.
        let backed = report
            .trials
            .iter()
            .find(|t| t.effective_alpha.unwrap_or(0.0) > t.requested.alpha)
            .unwrap();
        assert!(backed.attempts.len() > 1, "backoff must record each α");
        assert!(backed.attempts.windows(2).all(|w| w[0].alpha < w[1].alpha));
        let b: Vec<f64> = (0..48).map(|i| (i as f64 * 0.4).cos()).collect();
        assert!(session.solve(&b).converged);
    }
}
