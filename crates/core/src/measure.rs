//! The measurement runner: `MCMC build + Krylov solve`, reporting the
//! performance metric of Eq. 4.

use mcmcmi_krylov::{solve, IdentityPrecond, SolveOptions, SolverType};
use mcmcmi_mcmc::{BuildConfig, McmcInverse, McmcParams};
use mcmcmi_sparse::Csr;
use serde::{Deserialize, Serialize};

/// Measurement settings.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MeasureConfig {
    /// Krylov solver settings (tolerance, caps, restart).
    pub solve: SolveOptions,
    /// MCMC build settings (filling factor 2φ(A), truncation 1e−9, …).
    pub build: BuildConfig,
    /// Cap applied to the metric so divergent preconditioners produce a
    /// large-but-finite training signal (the paper's near-zero-α rows).
    pub y_cap: f64,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        Self {
            solve: SolveOptions {
                tol: 1e-8,
                max_iter: 2000,
                restart: 50,
                ..Default::default()
            },
            build: BuildConfig::default(),
            y_cap: 5.0,
        }
    }
}

/// One measured replicate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Measurement {
    /// Metric y (Eq. 4), capped at `y_cap`.
    pub y: f64,
    /// Steps with the preconditioner.
    pub steps_with: usize,
    /// Steps without (shared baseline).
    pub steps_without: usize,
    /// Whether the preconditioned run converged.
    pub converged: bool,
    /// Whether the build looked divergent.
    pub build_divergent: bool,
}

/// Runs solver measurements with a fixed manufactured right-hand side
/// (`b = A·x*` for an oscillatory `x*`), so the exact solution is known and
/// the baseline is deterministic.
#[derive(Clone, Debug)]
pub struct MeasurementRunner {
    cfg: MeasureConfig,
}

impl MeasurementRunner {
    /// New runner.
    pub fn new(cfg: MeasureConfig) -> Self {
        Self { cfg }
    }

    /// Configuration accessor.
    pub fn config(&self) -> &MeasureConfig {
        &self.cfg
    }

    /// Deterministic right-hand side `b = A·x*` with the oscillatory
    /// manufactured solution `x*_i = sin(0.7i) + 0.3·cos(2.3i)`.
    ///
    /// A non-trivial `x*` matters: differential operators annihilate
    /// constants, so the naive `b = A·1` is an (almost) exact eigenvector
    /// and Krylov methods converge in O(1) steps — a degenerate baseline
    /// that would make Eq. 4 meaningless on exactly the matrices the paper
    /// cares about.
    pub fn rhs(&self, a: &Csr) -> Vec<f64> {
        let xstar: Vec<f64> = (0..a.ncols())
            .map(|i| (0.7 * i as f64).sin() + 0.3 * (2.3 * i as f64).cos())
            .collect();
        a.spmv_alloc(&xstar)
    }

    /// Unpreconditioned step count — the denominator of Eq. 4, computed
    /// once per (matrix, solver).
    pub fn baseline_steps(&self, a: &Csr, solver: SolverType) -> usize {
        let b = self.rhs(a);
        let r = solve(
            a,
            &b,
            &IdentityPrecond::new(a.nrows()),
            solver,
            self.cfg.solve,
        );
        r.iterations.max(1)
    }

    /// One replicate: build the MCMC preconditioner with `seed`, solve, and
    /// return the metric against the supplied baseline.
    pub fn measure_once(
        &self,
        a: &Csr,
        params: McmcParams,
        solver: SolverType,
        baseline: usize,
        seed: u64,
    ) -> Measurement {
        let build_cfg = BuildConfig {
            seed,
            ..self.cfg.build
        };
        let outcome = McmcInverse::new(build_cfg).build(a, params);
        let b = self.rhs(a);
        let result = if solver == SolverType::Cg {
            // CG needs a symmetric operator: symmetrise the MCMC inverse,
            // as the paper does for the SPD Laplace family.
            let sym = outcome.precond.symmetrized();
            solve(a, &b, &sym, solver, self.cfg.solve)
        } else {
            solve(a, &b, &outcome.precond, solver, self.cfg.solve)
        };
        let steps_with = if result.converged {
            result.iterations
        } else {
            self.cfg.solve.max_iter
        };
        let y = (steps_with as f64 / baseline as f64).min(self.cfg.y_cap);
        Measurement {
            y,
            steps_with,
            steps_without: baseline,
            converged: result.converged,
            build_divergent: outcome.likely_divergent(),
        }
    }

    /// `reps` replicates (different MCMC seeds); returns `(ȳ, s, raw)` —
    /// the labelled datum of §4.2.
    pub fn measure_replicated(
        &self,
        a: &Csr,
        params: McmcParams,
        solver: SolverType,
        reps: usize,
        seed0: u64,
    ) -> (f64, f64, Vec<Measurement>) {
        let baseline = self.baseline_steps(a, solver);
        self.measure_replicated_with_baseline(a, params, solver, reps, seed0, baseline)
    }

    /// As [`MeasurementRunner::measure_replicated`], with a precomputed
    /// baseline — the dataset builder caches one baseline per
    /// (matrix, solver) instead of re-solving the unpreconditioned system
    /// for every grid cell.
    pub fn measure_replicated_with_baseline(
        &self,
        a: &Csr,
        params: McmcParams,
        solver: SolverType,
        reps: usize,
        seed0: u64,
        baseline: usize,
    ) -> (f64, f64, Vec<Measurement>) {
        assert!(reps >= 1, "measure_replicated: need at least one replicate");
        let ms: Vec<Measurement> = (0..reps)
            .map(|r| self.measure_once(a, params, solver, baseline, seed0 + 1000 * r as u64))
            .collect();
        let ys: Vec<f64> = ms.iter().map(|m| m.y).collect();
        (mcmcmi_stats::mean(&ys), mcmcmi_stats::sample_std(&ys), ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmcmi_matgen::{fd_laplace_2d, pdd_real_sparse};

    fn runner() -> MeasurementRunner {
        MeasurementRunner::new(MeasureConfig::default())
    }

    #[test]
    fn baseline_is_positive_and_deterministic() {
        let a = fd_laplace_2d(12);
        let r = runner();
        let b1 = r.baseline_steps(&a, SolverType::Gmres);
        let b2 = r.baseline_steps(&a, SolverType::Gmres);
        assert!(b1 > 0);
        assert_eq!(b1, b2);
    }

    #[test]
    fn good_parameters_beat_baseline_on_laplacian() {
        let a = fd_laplace_2d(16);
        let r = runner();
        let baseline = r.baseline_steps(&a, SolverType::Gmres);
        let m = r.measure_once(
            &a,
            McmcParams::new(0.1, 0.0625, 0.03125),
            SolverType::Gmres,
            baseline,
            0,
        );
        assert!(m.converged);
        assert!(m.y < 1.0, "y = {}", m.y);
    }

    #[test]
    fn divergent_parameters_produce_capped_large_y() {
        // Non-dominant matrix + near-zero alpha: the paper's divergence rows.
        let mut coo = mcmcmi_sparse::Coo::new(24, 24);
        for i in 0..24usize {
            coo.push(i, i, 1.0);
            coo.push(i, (i + 1) % 24, 2.0);
            coo.push(i, (i + 7) % 24, -2.0);
        }
        let a = coo.to_csr();
        let r = runner();
        let baseline = r.baseline_steps(&a, SolverType::Gmres);
        let m = r.measure_once(
            &a,
            McmcParams::new(0.001, 0.125, 0.001),
            SolverType::Gmres,
            baseline,
            1,
        );
        assert!(m.y >= 1.0, "divergent build should not help: y = {}", m.y);
        assert!(m.y <= MeasureConfig::default().y_cap);
    }

    #[test]
    fn replicates_vary_with_mcmc_seed_but_mean_is_stable() {
        let a = pdd_real_sparse(64, 3);
        let r = runner();
        let (mean, std, ms) = r.measure_replicated(
            &a,
            McmcParams::new(1.0, 0.25, 0.25),
            SolverType::Gmres,
            5,
            0,
        );
        assert_eq!(ms.len(), 5);
        assert!(mean > 0.0);
        assert!(std >= 0.0);
        // All replicates share the same baseline.
        assert!(ms
            .windows(2)
            .all(|w| w[0].steps_without == w[1].steps_without));
    }

    #[test]
    fn cg_path_symmetrises() {
        let a = fd_laplace_2d(8);
        let r = runner();
        let baseline = r.baseline_steps(&a, SolverType::Cg);
        let m = r.measure_once(
            &a,
            McmcParams::new(0.1, 0.125, 0.0625),
            SolverType::Cg,
            baseline,
            2,
        );
        assert!(
            m.converged,
            "CG with symmetrised MCMC inverse should converge"
        );
    }

    #[test]
    fn rhs_is_nontrivial_and_deterministic() {
        let a = fd_laplace_2d(4);
        let b1 = runner().rhs(&a);
        let b2 = runner().rhs(&a);
        assert_eq!(b1, b2);
        // Must not be a constant multiple of A·1 (the degenerate case).
        assert!(b1.iter().any(|&v| v > 0.0) && b1.iter().any(|&v| v < 0.0));
    }

    #[test]
    fn baseline_is_nondegenerate_on_spectral_operator() {
        // Regression: with b = A·1 the Chebyshev operator's baseline was a
        // single GMRES step (1 is an eigenvector); the manufactured rhs must
        // give a real iteration count.
        let a = mcmcmi_matgen::unsteady_adv_diff(10, mcmcmi_matgen::AdvDiffOrder::One);
        let r = MeasurementRunner::new(MeasureConfig {
            solve: SolveOptions {
                tol: 1e-8,
                max_iter: 500,
                restart: 200,
                ..Default::default()
            },
            ..Default::default()
        });
        assert!(r.baseline_steps(&a, SolverType::Gmres) > 10);
    }
}
