//! Cheap matrix features `x_A` (paper §3.1: "norms, sparsity and
//! symmetricity … standardised").

use mcmcmi_dense::{power_iteration, PowerOptions};
use mcmcmi_sparse::Csr;

/// Number of features produced by [`matrix_features`].
pub const N_MATRIX_FEATURES: usize = 11;

/// Extract the paper's inexpensive feature vector from a sparse matrix.
///
/// Components (heavy-tailed quantities are log-scaled so the downstream
/// z-standardisation is meaningful):
/// `[ln n, ln nnz, φ, symmetry score, ln‖A‖₁, ln‖A‖∞, ln‖A‖_F,
///   diagonal dominance, mean degree, max degree, Jacobi spectral-radius
///   estimate]`.
pub fn matrix_features(a: &Csr) -> Vec<f64> {
    let n = a.nrows();
    let degs = a.row_degrees();
    let mean_deg = degs.iter().sum::<usize>() as f64 / n.max(1) as f64;
    let max_deg = degs.iter().copied().max().unwrap_or(0) as f64;
    let safe_ln = |v: f64| (v.max(1e-300)).ln();

    // Spectral radius of the Jacobi iteration matrix C = I − D⁻¹A — the
    // quantity that decides whether α = 0 walks converge; a few power
    // iterations give a usable estimate at O(nnz) cost.
    let jacobi_rho = {
        let diag = a.diag();
        let scaled_rows: Vec<f64> = (0..n)
            .map(|i| {
                let d = if diag[i].abs() > 1e-300 {
                    diag[i].abs()
                } else {
                    1.0
                };
                a.row_values(i)
                    .iter()
                    .zip(a.row_indices(i))
                    .filter(|&(_, &j)| j != i)
                    .map(|(v, _)| v.abs())
                    .sum::<f64>()
                    / d
            })
            .collect();
        // Row-sum bound is cheap and monotone in the true ρ(|C|); refine
        // with a short power iteration on |C| via the operator closure.
        struct AbsJacobi<'a> {
            a: &'a Csr,
            diag: Vec<f64>,
        }
        impl mcmcmi_dense::LinearOp for AbsJacobi<'_> {
            fn nrows(&self) -> usize {
                self.a.nrows()
            }
            fn ncols(&self) -> usize {
                self.a.ncols()
            }
            fn apply(&self, x: &[f64], y: &mut [f64]) {
                for i in 0..self.a.nrows() {
                    let mut s = 0.0;
                    for (&j, &v) in self.a.row_indices(i).iter().zip(self.a.row_values(i)) {
                        if j != i {
                            s += v.abs() * x[j];
                        }
                    }
                    y[i] = s / self.diag[i];
                }
            }
            fn apply_transpose(&self, x: &[f64], y: &mut [f64]) {
                y.iter_mut().for_each(|v| *v = 0.0);
                for i in 0..self.a.nrows() {
                    let xi = x[i] / self.diag[i];
                    for (&j, &v) in self.a.row_indices(i).iter().zip(self.a.row_values(i)) {
                        if j != i {
                            y[j] += v.abs() * xi;
                        }
                    }
                }
            }
        }
        let op = AbsJacobi {
            a,
            diag: diag
                .iter()
                .map(|d| if d.abs() > 1e-300 { d.abs() } else { 1.0 })
                .collect(),
        };
        let (rho, _) = power_iteration(
            &op,
            PowerOptions {
                max_iter: 16,
                tol: 1e-4,
                seed: 3,
            },
        );
        // Fall back to the row-sum bound when the iteration stagnates at 0.
        if rho > 0.0 {
            rho
        } else {
            scaled_rows.into_iter().fold(0.0, f64::max)
        }
    };

    vec![
        safe_ln(n as f64),
        safe_ln(a.nnz() as f64),
        a.density(),
        a.symmetry_score(),
        safe_ln(a.norm_1()),
        safe_ln(a.norm_inf()),
        safe_ln(a.norm_fro()),
        a.diag_dominance(),
        mean_deg,
        max_deg,
        jacobi_rho,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmcmi_matgen::{fd_laplace_2d, pdd_real_sparse, PaperMatrix};

    #[test]
    fn feature_vector_has_documented_length() {
        let a = fd_laplace_2d(8);
        assert_eq!(matrix_features(&a).len(), N_MATRIX_FEATURES);
    }

    #[test]
    fn all_features_finite_across_suite_smalls() {
        for m in PaperMatrix::lite_training_set() {
            let a = m.generate();
            let f = matrix_features(&a);
            assert!(f.iter().all(|v| v.is_finite()), "{m:?}: {f:?}");
        }
    }

    #[test]
    fn symmetric_matrix_scores_one() {
        let f = matrix_features(&fd_laplace_2d(8));
        assert!((f[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jacobi_radius_reflects_dominance() {
        // Strictly diagonally dominant ⇒ ρ(|C|) < 1; the 2D Laplacian is
        // only weakly dominant ⇒ ρ close to 1.
        let dominant = matrix_features(&pdd_real_sparse(64, 2));
        let weak = matrix_features(&fd_laplace_2d(16));
        assert!(dominant[10] < 1.0, "PDD ρ = {}", dominant[10]);
        assert!(weak[10] > dominant[10]);
    }

    #[test]
    fn size_features_grow_with_n() {
        let f1 = matrix_features(&fd_laplace_2d(8));
        let f2 = matrix_features(&fd_laplace_2d(16));
        assert!(f2[0] > f1[0]); // ln n
        assert!(f2[1] > f1[1]); // ln nnz
    }

    #[test]
    fn features_deterministic() {
        let a = pdd_real_sparse(32, 9);
        assert_eq!(matrix_features(&a), matrix_features(&a));
    }
}
