//! The AI-tuned MCMC preconditioner framework — the paper's primary
//! contribution, assembled from the workspace substrates.
//!
//! Flow (paper §3, Algorithm 1):
//! 1. [`features`] extracts the cheap matrix features `x_A`.
//! 2. [`measure`] runs `MCMC build + Krylov solve` and reports the
//!    performance metric `y = steps_with / steps_without` (Eq. 4).
//! 3. [`dataset`] assembles the labelled grid dataset of §4.2.
//! 4. The GNN surrogate (from `mcmcmi-gnn`) is trained on it; [`adapter`]
//!    exposes it to the Bayesian optimiser through the `SurrogateModel`
//!    trait with standardisation folded into the gradients.
//! 5. [`pipeline`] runs BO rounds (32 EI-maximising recommendations per
//!    round, ξ ∈ {0.05, 1.0}) and produces the BO-enhanced model and the
//!    final `recommend(A) → x_M*` API.
//! 6. [`autotune`] closes the loop into the solve path: joint
//!    `(α, ε, δ) × CompressionPolicy` search with safeguarded builds and
//!    probe solves, delivering a tuned compressed `SolveSession` in one
//!    call.

pub mod adapter;
pub mod autotune;
pub mod dataset;
pub mod drift;
pub mod features;
pub mod measure;
pub mod pipeline;
pub mod snapshot;

pub use adapter::GnnSurrogateAdapter;
pub use autotune::{AutoTuner, AutotuneConfig, AutotuneReport, TrialRecord};
pub use dataset::{DatasetRecord, PaperDataset};
pub use drift::{DriftSession, RefreshAction, RefreshPolicy, RefreshStep, RefreshTrail};
pub use features::matrix_features;
pub use measure::{MeasureConfig, Measurement, MeasurementRunner};
pub use pipeline::{BoRoundOutcome, PipelineConfig, Recommender};
pub use snapshot::{load_json_snapshot, save_json_snapshot};
