//! Drift-tolerant serving: the escalating refresh ladder.
//!
//! A deployed session rarely solves one fixed system; it solves a *drifting
//! sequence* — time-stepped coefficients, re-linearised Jacobians, locally
//! refined meshes. Rebuilding the MCMC preconditioner every step wastes the
//! build's amortisation; never rebuilding lets iteration counts creep until
//! solves fail. [`DriftSession`] sits between those extremes with an
//! escalating ladder, decided per step from the
//! [`StalenessMonitor`]'s verdict and the accumulated dirty-row set:
//!
//! 1. **Keep applying** — the verdict is `Fresh`: the old inverse still
//!    preconditions well, do nothing.
//! 2. **Partial row rebuild** — `Degrading`, and few enough rows have
//!    drifted: re-estimate only the dirty rows
//!    ([`McmcInverse::rebuild_rows`]), a cost proportional to the drift,
//!    not the operator.
//! 3. **Safeguarded full rebuild** — `Stale`, the solve failed, or too much
//!    of the operator is dirty for a partial refresh to be honest.
//! 4. **Full retune** — repeated full rebuilds mean the operator has walked
//!    out of the parameter regime it was tuned for; re-run the
//!    [`AutoTuner`] and rebuild from the winning `(α, ε, δ)`.
//!
//! Every decision is recorded in a serialisable [`RefreshTrail`], the
//! drift-side sibling of the recovery ladder's `RecoveryTrail`: after a
//! 100-step sequence you can read back exactly which steps rebuilt what
//! and why.

use crate::autotune::{AutoTuner, AutotuneConfig};
use mcmcmi_krylov::{
    SolveOptions, SolveResult, SolveSession, SolverType, SparsePrecond, StalenessConfig,
    StalenessMonitor, StalenessVerdict, TuneBudget,
};
use mcmcmi_mcmc::{BuildConfig, BuildOutcome, McmcInverse, McmcParams, SafeguardConfig};
use mcmcmi_sparse::Csr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Thresholds governing the refresh ladder.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RefreshPolicy {
    /// Iteration-drift thresholds fed to the [`StalenessMonitor`].
    pub staleness: StalenessConfig,
    /// Largest fraction of rows a *partial* rebuild may cover; past it a
    /// full rebuild is cheaper and honest (the splice would redo most of
    /// the walk work anyway, and clean-row entries grow stale against the
    /// re-derived splitting).
    pub max_partial_fraction: f64,
    /// Full rebuilds tolerated since the last (re)tune before the ladder
    /// escalates to a full [`AutoTuner`] retune.
    pub retune_after_full_rebuilds: usize,
}

impl Default for RefreshPolicy {
    fn default() -> Self {
        Self {
            staleness: StalenessConfig::default(),
            max_partial_fraction: 0.3,
            retune_after_full_rebuilds: 3,
        }
    }
}

/// Which refresh rung a drift step executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefreshAction {
    /// Verdict `Fresh`: the preconditioner was left alone.
    KeepApplying,
    /// Dirty rows re-estimated and spliced into the preconditioner.
    PartialRebuild,
    /// Safeguarded full rebuild at the current parameters.
    FullRebuild,
    /// Autotuner re-run; rebuilt at the winning parameters.
    Retune,
}

impl RefreshAction {
    /// Short stable label for logs and summaries.
    pub fn label(&self) -> &'static str {
        match self {
            RefreshAction::KeepApplying => "keep",
            RefreshAction::PartialRebuild => "partial-rebuild",
            RefreshAction::FullRebuild => "full-rebuild",
            RefreshAction::Retune => "retune",
        }
    }
}

/// One drift step's decision record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RefreshStep {
    /// Zero-based drift step index.
    pub step: usize,
    /// Rows this step's operator diff dirtied.
    pub dirty_new: usize,
    /// Accumulated dirty rows at decision time (since the last refresh).
    pub dirty_pending: usize,
    /// The staleness verdict the decision was made from.
    pub verdict: StalenessVerdict,
    /// The rung executed.
    pub action: RefreshAction,
    /// Rows actually re-estimated (partial rebuilds only; full rebuilds
    /// and retunes re-estimate everything).
    pub rows_rebuilt: usize,
    /// Iterations of the step's *first* solve (the one the verdict judged).
    pub iterations: usize,
    /// Iterations of the re-solve after an in-step rescue rebuild (only
    /// set when the first solve failed).
    pub resolve_iterations: Option<usize>,
    /// Warm-start quality of the step's first solve.
    pub initial_rel_residual: f64,
    /// Did the step end with a converged solution?
    pub converged: bool,
}

/// The whole sequence's decision trail — serialisable, like the recovery
/// ladder's `RecoveryTrail`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RefreshTrail {
    /// One record per drift step, in order.
    pub steps: Vec<RefreshStep>,
}

impl RefreshTrail {
    /// One-line human summary, e.g.
    /// `"100 steps: 82 keep, 14 partial-rebuild, 3 full-rebuild, 1 retune"`.
    pub fn summary(&self) -> String {
        let count = |a: RefreshAction| self.steps.iter().filter(|s| s.action == a).count();
        format!(
            "{} steps: {} keep, {} partial-rebuild, {} full-rebuild, {} retune",
            self.steps.len(),
            count(RefreshAction::KeepApplying),
            count(RefreshAction::PartialRebuild),
            count(RefreshAction::FullRebuild),
            count(RefreshAction::Retune),
        )
    }

    /// Total refresh work: rows re-estimated across partial rebuilds plus
    /// `n` per full rebuild/retune.
    pub fn rows_rebuilt_total(&self, n: usize) -> usize {
        self.steps
            .iter()
            .map(|s| match s.action {
                RefreshAction::KeepApplying => 0,
                RefreshAction::PartialRebuild => s.rows_rebuilt,
                RefreshAction::FullRebuild | RefreshAction::Retune => n,
            })
            .sum()
    }
}

/// A solve session for a drifting operator sequence: warm starts from the
/// previous step's solution, staleness-monitored solves, and the
/// escalating refresh ladder described in the module docs.
pub struct DriftSession {
    a: Csr,
    outcome: BuildOutcome,
    session: SolveSession<SparsePrecond>,
    monitor: StalenessMonitor,
    policy: RefreshPolicy,
    build: BuildConfig,
    guard: SafeguardConfig,
    params: McmcParams,
    solver: SolverType,
    symmetrize: bool,
    pending_dirty: BTreeSet<usize>,
    full_rebuilds_since_tune: usize,
    prev_x: Option<Vec<f64>>,
    trail: RefreshTrail,
}

impl DriftSession {
    /// Build the initial preconditioner for `a` and bind the session.
    /// CG-family solvers get a symmetrized copy of the (generally
    /// nonsymmetric) MCMC inverse; the raw build is kept for partial
    /// rebuilds.
    pub fn new(
        a: Csr,
        params: McmcParams,
        build: BuildConfig,
        guard: SafeguardConfig,
        solver: SolverType,
        opts: SolveOptions,
        policy: RefreshPolicy,
    ) -> Self {
        let builder = McmcInverse::new(build);
        let outcome = builder.build(&a, params);
        let symmetrize = matches!(solver, SolverType::Cg | SolverType::FCg);
        let precond = if symmetrize {
            outcome.precond.symmetrized()
        } else {
            outcome.precond.clone()
        };
        let session = SolveSession::new(a.clone(), precond, solver, opts);
        Self {
            a,
            outcome,
            session,
            monitor: StalenessMonitor::new(policy.staleness),
            policy,
            build,
            guard,
            params,
            solver,
            symmetrize,
            pending_dirty: BTreeSet::new(),
            full_rebuilds_since_tune: 0,
            prev_x: None,
            trail: RefreshTrail::default(),
        }
    }

    /// The decision trail so far.
    pub fn trail(&self) -> &RefreshTrail {
        &self.trail
    }

    /// The current effective MCMC parameters (a retune replaces them).
    pub fn params(&self) -> McmcParams {
        self.params
    }

    /// Dirty rows accumulated since the last refresh.
    pub fn pending_dirty(&self) -> usize {
        self.pending_dirty.len()
    }

    /// Push the preconditioner (re-symmetrized if needed) into the session.
    fn sync_precond(&mut self) {
        let precond = if self.symmetrize {
            self.outcome.precond.symmetrized()
        } else {
            self.outcome.precond.clone()
        };
        self.session.replace_precond(precond);
        self.monitor.recalibrate();
        self.pending_dirty.clear();
    }

    /// Safeguarded full rebuild at the current parameters. Falls back to
    /// the pre-backoff build if every attempt diverges (the guard can only
    /// make α larger, so this keeps the session serving rather than
    /// panicking mid-sequence).
    fn full_rebuild(&mut self) {
        let builder = McmcInverse::new(self.build);
        match builder.build_safeguarded(&self.a, self.params, &self.guard) {
            Ok(guarded) => {
                self.params = guarded.params;
                self.outcome = guarded.outcome;
            }
            Err(_) => {
                self.outcome = builder.build(&self.a, self.params);
            }
        }
        self.full_rebuilds_since_tune += 1;
        self.sync_precond();
    }

    /// Autotuner retune: joint search from scratch on the current operator,
    /// then a safeguarded rebuild at the winning parameters. Falls back to
    /// a plain full rebuild when the tuner cannot certify any candidate.
    fn retune(&mut self) {
        let mut tuner = AutoTuner::new(AutotuneConfig {
            solver: self.solver,
            build: self.build,
            safeguard: self.guard,
        });
        let budget = TuneBudget {
            probe_opts: self.session.opts(),
            ..Default::default()
        };
        if let Ok((_, report)) = tuner.tune_parts(&self.a, &budget) {
            self.params = report.params;
        }
        self.full_rebuild();
        self.full_rebuilds_since_tune = 0;
    }

    /// Partial refresh: re-estimate exactly the pending dirty rows.
    fn partial_rebuild(&mut self) -> usize {
        let rows: Vec<usize> = self.pending_dirty.iter().copied().collect();
        McmcInverse::new(self.build).rebuild_rows(&mut self.outcome, &self.a, &rows, self.params);
        self.sync_precond();
        rows.len()
    }

    /// Advance one drift step: diff the incoming operator against the
    /// current one, swap it under the session, solve warm-started from the
    /// previous step's solution, classify staleness, and run the refresh
    /// ladder. A failed solve triggers an in-step rescue (full rebuild —
    /// or retune when the rebuild budget is spent — plus one re-solve), so
    /// the returned result is the step's best effort.
    ///
    /// # Panics
    /// Panics if `a_new` changes dimension (a dimension change is a new
    /// operator sequence, not drift) or `b` has the wrong length.
    pub fn step(&mut self, a_new: Csr, b: &[f64]) -> SolveResult {
        let step_idx = self.trail.steps.len();
        let dirty_new = self.a.diff_rows(&a_new);
        self.pending_dirty.extend(dirty_new.iter().copied());
        self.session.replace_matrix(a_new.clone());
        self.a = a_new;

        let first = self.session.solve_warm(b, self.prev_x.as_deref());
        let first_iters = first.iterations;
        let verdict = self.monitor.observe(&first);
        let n = self.a.nrows();
        let dirty_pending = self.pending_dirty.len();
        let partial_ok = dirty_pending > 0
            && (dirty_pending as f64) <= self.policy.max_partial_fraction * n as f64;
        let retune_due = self.full_rebuilds_since_tune >= self.policy.retune_after_full_rebuilds;

        let (action, rows_rebuilt, result, resolve_iterations) = if !first.converged {
            // Rescue: refresh *now* and re-solve the same system.
            let (action, rows) = if retune_due {
                self.retune();
                (RefreshAction::Retune, n)
            } else {
                self.full_rebuild();
                (RefreshAction::FullRebuild, n)
            };
            let second = self.session.solve_warm(b, self.prev_x.as_deref());
            let it = second.iterations;
            (action, rows, second, Some(it))
        } else {
            match verdict {
                StalenessVerdict::Fresh => (RefreshAction::KeepApplying, 0, first, None),
                StalenessVerdict::Degrading { .. } if partial_ok => {
                    // The solve already met its contract; the refresh pays
                    // off on the *next* step.
                    let rows = self.partial_rebuild();
                    (RefreshAction::PartialRebuild, rows, first, None)
                }
                StalenessVerdict::Degrading { .. } | StalenessVerdict::Stale => {
                    if retune_due {
                        self.retune();
                        (RefreshAction::Retune, n, first, None)
                    } else {
                        self.full_rebuild();
                        (RefreshAction::FullRebuild, n, first, None)
                    }
                }
            }
        };

        if result.converged {
            self.prev_x = Some(result.x.clone());
        } else {
            // Do not warm-start the next step from a non-converged vector.
            self.prev_x = None;
        }
        self.trail.steps.push(RefreshStep {
            step: step_idx,
            dirty_new: dirty_new.len(),
            dirty_pending,
            verdict,
            action,
            rows_rebuilt,
            iterations: first_iters,
            resolve_iterations,
            initial_rel_residual: result.initial_rel_residual,
            converged: result.converged,
        });
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmcmi_matgen::fd_laplace_2d;

    fn rhs(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.17).sin() + 0.5).collect()
    }

    fn drift_some_rows(a: &Csr, rows: &[usize], scale: f64) -> Csr {
        let mut b = a.clone();
        for &i in rows {
            for v in b.row_values_mut(i) {
                *v *= scale;
            }
        }
        b
    }

    fn session_for(a: &Csr) -> DriftSession {
        DriftSession::new(
            a.clone(),
            McmcParams::new(0.1, 0.0625, 0.0625),
            BuildConfig::default(),
            SafeguardConfig::default(),
            SolverType::Gmres,
            SolveOptions::default(),
            RefreshPolicy::default(),
        )
    }

    #[test]
    fn identical_steps_stay_fresh_and_keep_applying() {
        let a = fd_laplace_2d(10);
        let b = rhs(a.nrows());
        let mut sess = session_for(&a);
        for _ in 0..5 {
            let res = sess.step(a.clone(), &b);
            assert!(res.converged);
        }
        assert!(sess
            .trail()
            .steps
            .iter()
            .all(|s| s.action == RefreshAction::KeepApplying));
        // After the first step the previous solution is the exact answer:
        // zero-iteration warm-started steps.
        assert_eq!(sess.trail().steps.last().unwrap().iterations, 0);
    }

    #[test]
    fn mild_drift_accumulates_dirty_rows() {
        let a = fd_laplace_2d(10);
        let n = a.nrows();
        let b = rhs(n);
        let mut sess = session_for(&a);
        let _ = sess.step(a.clone(), &b);
        let a2 = drift_some_rows(&a, &[3, 4, 5], 1.0 + 1e-6);
        let _ = sess.step(a2, &b);
        let s = &sess.trail().steps[1];
        assert_eq!(s.dirty_new, 3);
        assert!(sess.pending_dirty() >= 3);
    }

    #[test]
    fn failed_solve_triggers_in_step_rescue() {
        let a = fd_laplace_2d(12);
        let n = a.nrows();
        let b = rhs(n);
        let mut sess = DriftSession::new(
            a.clone(),
            McmcParams::new(0.1, 0.0625, 0.0625),
            BuildConfig::default(),
            SafeguardConfig::default(),
            SolverType::Gmres,
            SolveOptions {
                max_iter: 40,
                ..Default::default()
            },
            RefreshPolicy::default(),
        );
        let _ = sess.step(a.clone(), &b);
        // A violent drift the stale inverse cannot handle in 40 iterations.
        let rows: Vec<usize> = (0..n).collect();
        let a2 = drift_some_rows(&a, &rows, 6.0);
        let res = sess.step(a2, &b);
        let s = sess.trail().steps.last().unwrap();
        if s.resolve_iterations.is_some() {
            assert!(matches!(
                s.action,
                RefreshAction::FullRebuild | RefreshAction::Retune
            ));
            assert!(res.converged, "rescue rebuild must recover this operator");
        }
    }

    #[test]
    fn trail_serialises_and_summarises() {
        let a = fd_laplace_2d(8);
        let b = rhs(a.nrows());
        let mut sess = session_for(&a);
        for _ in 0..3 {
            let _ = sess.step(a.clone(), &b);
        }
        let json = serde_json::to_string(sess.trail()).unwrap();
        let back: RefreshTrail = serde_json::from_str(&json).unwrap();
        assert_eq!(back.steps.len(), 3);
        assert!(sess.trail().summary().contains("3 steps"));
        assert_eq!(sess.trail().rows_rebuilt_total(a.nrows()), 0);
    }
}
