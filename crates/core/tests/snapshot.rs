//! Recommender snapshot round-trip: persistence must preserve *bits*.
//!
//! The workspace-level `tests/persistence.rs` checks the snapshot path to
//! 1e−12; that tolerance would hide a real bug class (e.g. a standardiser
//! field serialised at reduced precision, or a weight tensor reordered on
//! load) that only bites after many BO rounds compound the drift. The
//! contract here is exact: `from_snapshot(to_snapshot(r))` predicts
//! **bit-for-bit** the same `(μ̂, σ̂)` as `r`, for every solver family and
//! across a JSON round trip.

use mcmcmi_core::{MeasureConfig, MeasurementRunner, PaperDataset, Recommender};
use mcmcmi_gnn::{SurrogateConfig, TrainConfig};
use mcmcmi_krylov::{SolveOptions, SolverType};
use mcmcmi_matgen::{laplace_1d, pdd_real_sparse};
use mcmcmi_mcmc::McmcParams;
use mcmcmi_sparse::Csr;

fn small_recommender(matrices: &[(String, Csr, bool)]) -> Recommender {
    let runner = MeasurementRunner::new(MeasureConfig {
        solve: SolveOptions {
            tol: 1e-6,
            max_iter: 200,
            restart: 25,
            ..Default::default()
        },
        ..Default::default()
    });
    let ds = PaperDataset::build(&runner, matrices, 1, 0, 0);
    let scfg = SurrogateConfig {
        gnn_hidden: 8,
        xa_hidden: 4,
        xm_hidden: 4,
        comb_hidden: 8,
        dropout: 0.0,
        ..SurrogateConfig::lite(mcmcmi_core::features::N_MATRIX_FEATURES, 6)
    };
    let tcfg = TrainConfig {
        epochs: 4,
        patience: 0,
        ..Default::default()
    };
    Recommender::fit(&ds, matrices, scfg, tcfg)
}

#[test]
fn snapshot_round_trip_preserves_predict_bit_for_bit() {
    let matrices: Vec<(String, Csr, bool)> = vec![
        ("lap".into(), laplace_1d(16), true),
        ("pdd".into(), pdd_real_sparse(32, 7), false),
    ];
    let mut rec = small_recommender(&matrices);

    // A grid of probe points spanning the box, on a *training* matrix and
    // an *unseen* one, across all three solver families.
    let unseen = pdd_real_sparse(24, 11);
    let probes: Vec<McmcParams> = vec![
        McmcParams::new(0.05, 1.0 / 32.0, 1.0 / 32.0),
        McmcParams::new(1.0, 0.25, 0.125),
        McmcParams::new(2.5, 0.3, 0.7),
        McmcParams::new(8.0, 1.0, 1.0),
    ];
    let solvers = [SolverType::Gmres, SolverType::BiCgStab, SolverType::Cg];
    let mut before: Vec<(f64, f64)> = Vec::new();
    for a in [&matrices[1].1, &unseen] {
        for &s in &solvers {
            for &p in &probes {
                before.push(rec.predict(a, s, p));
            }
        }
    }

    // Round trip through the in-memory snapshot AND through JSON (the
    // persistence format experiments actually use).
    let snap = rec.to_snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    let reloaded: mcmcmi_core::pipeline::RecommenderSnapshot = serde_json::from_str(&json).unwrap();
    let mut rec_mem = Recommender::from_snapshot(snap);
    let mut rec_json = Recommender::from_snapshot(reloaded);

    let mut idx = 0;
    for a in [&matrices[1].1, &unseen] {
        for &s in &solvers {
            for &p in &probes {
                let want = before[idx];
                let via_mem = rec_mem.predict(a, s, p);
                let via_json = rec_json.predict(a, s, p);
                assert_eq!(via_mem, want, "in-memory snapshot drifted at probe {idx}");
                assert_eq!(via_json, want, "JSON snapshot drifted at probe {idx}");
                idx += 1;
            }
        }
    }

    // The original recommender is untouched by snapshotting: predictions
    // repeat bit-for-bit.
    let again = rec.predict(&unseen, SolverType::Gmres, probes[1]);
    // (unseen, Gmres, probes[1]) lives right after the training matrix's
    // solvers×probes block.
    let reference = before[solvers.len() * probes.len() + 1];
    assert_eq!(again, reference);
}

#[test]
fn snapshot_preserves_the_training_report() {
    let matrices: Vec<(String, Csr, bool)> = vec![("pdd".into(), pdd_real_sparse(28, 3), false)];
    let rec = small_recommender(&matrices);
    let snap = rec.to_snapshot();
    let rec2 = Recommender::from_snapshot(snap.clone());
    assert_eq!(
        rec2.train_report().train_loss,
        rec.train_report().train_loss
    );
    assert_eq!(snap.train_report.train_loss, rec.train_report().train_loss);
}
