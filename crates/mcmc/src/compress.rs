//! Post-build preconditioner compression: drop-tolerance sparsification
//! and reduced-precision storage.
//!
//! The MCMC inverse is *already* an approximation — its entries carry O(ε)
//! stochastic error by construction — so applying it at full f64 bandwidth
//! and full fill spends the memory system on precision the operator does
//! not possess. Compression trades a little preconditioner quality
//! (iterations) for a lot of apply cost (bytes/traversal), the dominant
//! per-iteration expense once the build is amortised. The two knobs:
//!
//! * **drop tolerance** — within each row, entries below `drop_tol` times
//!   the row's largest magnitude are discarded (relative, so uniformly
//!   scaled matrices compress identically), optionally capped at the
//!   `row_topk` largest entries per row;
//! * **storage precision** — keep f64, or demote values to f32
//!   ([`mcmcmi_sparse::Csr::to_precision`]); every kernel still
//!   accumulates in f64, so demotion is one rounding per entry, not a
//!   change of arithmetic.
//!
//! The identity policy (`drop_tol = 0`, no cap, f64) reproduces the input
//! CSR bit for bit — pattern and values — which is what lets the
//! compressed path be validated against the uncompressed baseline exactly.
//!
//! Compressed operators are consumed through the flexible Krylov drivers
//! (`FCG`/`FGMRES`): classical CG/GMRES assume an exact fixed
//! preconditioner, and a sparsified, rounded inverse is deliberately not
//! one.

use mcmcmi_krylov::{CompressedPrecond, SparsePrecond};
use mcmcmi_sparse::Csr;
use serde::{Deserialize, Serialize};

/// Value storage format for a compressed preconditioner.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoragePrecision {
    /// Full 8-byte values (sparsification only).
    F64,
    /// Demoted 4-byte values: half the value bandwidth per apply; kernels
    /// still accumulate in f64.
    F32,
}

impl StoragePrecision {
    /// Display name (delegates to [`mcmcmi_sparse::Scalar::NAME`]).
    pub fn name(self) -> &'static str {
        use mcmcmi_sparse::Scalar;
        match self {
            StoragePrecision::F64 => <f64 as Scalar>::NAME,
            StoragePrecision::F32 => <f32 as Scalar>::NAME,
        }
    }
}

/// Tunable compression settings — a candidate axis for the AI tuner next
/// to `(α, ε, δ)`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CompressionPolicy {
    /// Per-row relative drop threshold: entry `(i, j)` survives iff
    /// `|p_ij| ≥ drop_tol · max_j |p_ij|`. `0.0` keeps everything. A
    /// stored diagonal entry is exempt (see [`sparsify`]).
    pub drop_tol: f64,
    /// Optional hard cap on surviving entries per row (the `drop_tol`
    /// filter runs first, then the largest-magnitude `k` are kept;
    /// a stored diagonal always claims one slot, and magnitude ties break
    /// toward smaller column index, so the result is deterministic).
    pub row_topk: Option<usize>,
    /// Value storage format for the compressed operator.
    pub precision: StoragePrecision,
}

impl Default for CompressionPolicy {
    /// The identity policy: nothing dropped, f64 storage — byte-for-byte
    /// the uncompressed preconditioner.
    fn default() -> Self {
        Self {
            drop_tol: 0.0,
            row_topk: None,
            precision: StoragePrecision::F64,
        }
    }
}

impl CompressionPolicy {
    /// Sparsify at `drop_tol` and demote to f32 — the full mixed-precision
    /// policy the perf record sweeps.
    pub fn f32(drop_tol: f64) -> Self {
        Self {
            drop_tol,
            row_topk: None,
            precision: StoragePrecision::F32,
        }
    }

    /// Sparsify at `drop_tol`, keep f64 storage.
    pub fn f64(drop_tol: f64) -> Self {
        Self {
            drop_tol,
            row_topk: None,
            precision: StoragePrecision::F64,
        }
    }
}

/// What compression kept: the diagnostics the tuner (and the perf record)
/// reads to relate policy knobs to apply cost and preconditioner mass.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CompressionReport {
    /// Stored entries before compression.
    pub nnz_before: usize,
    /// Stored entries after sparsification.
    pub nnz_after: usize,
    /// `nnz_after / nnz_before` (1.0 for an empty input).
    pub nnz_kept: f64,
    /// Fraction of squared Frobenius mass surviving sparsification,
    /// `‖P_kept‖²_F / ‖P‖²_F`, measured in f64 *before* any demotion
    /// (1.0 for a zero input). Near-1 values at small `nnz_kept` are the
    /// signature of a preconditioner whose tail entries were noise.
    pub fro_mass_kept: f64,
    /// Value bytes streamed per apply before compression (`nnz·8`).
    pub value_bytes_before: usize,
    /// Value bytes streamed per apply after compression.
    pub value_bytes_after: usize,
    /// Storage precision of the compressed operator.
    pub precision: StoragePrecision,
}

/// Drop-tolerance sparsification of a CSR matrix (pattern + values stay
/// f64; precision is applied by [`compress`]). See
/// [`CompressionPolicy::drop_tol`]/[`CompressionPolicy::row_topk`] for the
/// per-row rule. With `drop_tol = 0` and no cap this is an exact copy.
///
/// A stored diagonal entry always survives — both the drop threshold and
/// the top-k cap (it occupies one of the cap's slots, displacing the
/// smallest off-diagonal). The diagonal carries the Jacobi core of the
/// approximate inverse; letting an aggressive tuner proposal drop `p_ii`
/// turns the preconditioner singular on that row, which no iteration-count
/// saving can repay.
pub fn sparsify(p: &Csr<f64>, drop_tol: f64, row_topk: Option<usize>) -> Csr<f64> {
    // Fail fast on a nonsense tolerance (e.g. a NaN from a bad tuner
    // proposal): a NaN threshold would silently drop *every* entry.
    assert!(
        drop_tol.is_finite() && drop_tol >= 0.0,
        "sparsify: drop_tol must be finite and non-negative, got {drop_tol}"
    );
    // A zero cap would empty every row — diagonal included — which the
    // diagonal-survival guarantee exists to forbid; no caller can mean it.
    assert!(
        row_topk != Some(0),
        "sparsify: row_topk = 0 would drop every entry (including the diagonal)"
    );
    let n = p.nrows();
    let mut indptr = Vec::with_capacity(n + 1);
    let mut indices = Vec::with_capacity(p.nnz());
    let mut data = Vec::with_capacity(p.nnz());
    indptr.push(0);
    // Scratch for the top-k selection, reused across rows.
    let mut keep: Vec<(usize, f64)> = Vec::new();
    for i in 0..n {
        let cols = p.row_indices(i);
        let vals = p.row_values(i);
        let row_max = vals.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        // `drop_tol = 0` keeps everything unconditionally (the
        // bit-identical round-trip contract) — short-circuiting also keeps
        // an infinite `row_max` from poisoning the threshold with
        // `0.0 · ∞ = NaN`, which would silently drop the whole row.
        let threshold = if drop_tol == 0.0 {
            0.0
        } else {
            drop_tol * row_max
        };
        keep.clear();
        for (&j, &v) in cols.iter().zip(vals) {
            // `>=` so a zero threshold keeps stored exact zeros too. (A
            // NaN entry would fail every comparison and drop; the builder
            // never stores one.) The diagonal bypasses the threshold.
            if j == i || v.abs() >= threshold {
                keep.push((j, v));
            }
        }
        if let Some(cap) = row_topk {
            if keep.len() > cap {
                // Diagonal first, then largest |v|; ties toward smaller
                // column index.
                keep.sort_unstable_by(|a, b| {
                    (b.0 == i)
                        .cmp(&(a.0 == i))
                        .then(b.1.abs().partial_cmp(&a.1.abs()).unwrap())
                        .then(a.0.cmp(&b.0))
                });
                keep.truncate(cap);
                keep.sort_unstable_by_key(|&(j, _)| j);
            }
        }
        for &(j, v) in &keep {
            indices.push(j);
            data.push(v);
        }
        indptr.push(indices.len());
    }
    Csr::from_raw(n, p.ncols(), indptr, indices, data)
}

/// Apply a [`CompressionPolicy`] to an explicit approximate inverse,
/// producing the block-aware compressed operator and its diagnostics.
pub fn compress(
    p: &Csr<f64>,
    policy: &CompressionPolicy,
) -> (CompressedPrecond, CompressionReport) {
    let kept = sparsify(p, policy.drop_tol, policy.row_topk);
    // Non-finite entries are excluded from the mass accounting: an ∞ from a
    // divergent build would otherwise make the ratio ∞/∞ = NaN, poisoning
    // the JSON diagnostics downstream.
    let mass = |m: &Csr<f64>| -> f64 {
        m.triplets()
            .map(|(_, _, v)| v * v)
            .filter(|v| v.is_finite())
            .sum()
    };
    let total = mass(p);
    let survived = mass(&kept);
    let nnz_after = kept.nnz();
    let precond = match policy.precision {
        StoragePrecision::F64 => CompressedPrecond::F64(SparsePrecond::new(kept)),
        StoragePrecision::F32 => CompressedPrecond::F32(SparsePrecond::new(kept.to_precision())),
    };
    let report = CompressionReport {
        nnz_before: p.nnz(),
        nnz_after,
        nnz_kept: if p.nnz() == 0 {
            1.0
        } else {
            nnz_after as f64 / p.nnz() as f64
        },
        fro_mass_kept: if total == 0.0 { 1.0 } else { survived / total },
        value_bytes_before: p.value_bytes(),
        // Read back from the built operator (`Scalar::BYTES`) so the
        // report can't drift from the storage formats it describes.
        value_bytes_after: precond.value_bytes(),
        precision: policy.precision,
    };
    (precond, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmcmi_krylov::Preconditioner;
    use mcmcmi_sparse::Coo;

    fn sample() -> Csr<f64> {
        let mut coo = Coo::new(4, 4);
        for &(i, j, v) in &[
            (0usize, 0usize, 1.0f64),
            (0, 1, 0.001),
            (0, 3, -0.5),
            (1, 1, 2.0),
            (1, 2, 0.01),
            (2, 0, 0.002),
            (2, 2, -1.5),
            (3, 3, 0.75),
            (3, 0, 0.7),
            (3, 1, 0.0005),
        ] {
            coo.push(i, j, v);
        }
        coo.to_csr()
    }

    #[test]
    fn identity_policy_is_bit_identical() {
        let p = sample();
        let kept = sparsify(&p, 0.0, None);
        assert_eq!(kept, p);
        let (cp, report) = compress(&p, &CompressionPolicy::default());
        assert_eq!(report.nnz_kept, 1.0);
        assert_eq!(report.fro_mass_kept, 1.0);
        match cp {
            CompressedPrecond::F64(sp) => assert_eq!(sp.matrix(), &p),
            _ => panic!("default policy must keep f64"),
        }
    }

    #[test]
    fn drop_tol_removes_relatively_small_entries_per_row() {
        let p = sample();
        let kept = sparsify(&p, 0.05, None);
        // Row 0: max 1.0 → threshold 0.05 drops the 0.001 entry only.
        assert_eq!(kept.row_indices(0), &[0, 3]);
        // Row 1: max 2.0 → 0.1 drops 0.01.
        assert_eq!(kept.row_indices(1), &[1]);
        // Row 3: max 0.75 → 0.0375 drops 0.0005, keeps 0.7 and 0.75.
        assert_eq!(kept.row_indices(3), &[0, 3]);
        assert!(kept.nnz() < p.nnz());
        // Values of the survivors are untouched.
        for (i, j, v) in kept.triplets() {
            assert_eq!(v, p.get(i, j));
        }
    }

    #[test]
    fn row_topk_caps_each_row_deterministically() {
        let p = sample();
        let kept = sparsify(&p, 0.0, Some(1));
        for i in 0..4 {
            assert!(kept.row_indices(i).len() <= 1);
        }
        // Row 3 keeps its largest-|v| entry (0.75 at column 3).
        assert_eq!(kept.row_indices(3), &[3]);
        assert_eq!(kept.get(3, 3), 0.75);
    }

    #[test]
    fn infinite_entry_does_not_poison_the_identity_policy() {
        // A divergent build can overflow an entry to ±∞; `0 · ∞ = NaN`
        // must not become the drop threshold and silently empty the row.
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, f64::INFINITY);
        coo.push(0, 1, 2.0);
        coo.push(1, 1, 3.0);
        let p = coo.to_csr();
        let kept = sparsify(&p, 0.0, None);
        assert_eq!(kept, p, "drop_tol = 0 must round-trip even with ∞");
        // With a positive tolerance only the infinite entry survives its
        // row (threshold ∞): finite rows are untouched.
        let harsh = sparsify(&p, 0.5, None);
        assert_eq!(harsh.row_indices(0), &[0]);
        assert_eq!(harsh.row_indices(1), &[1]);
    }

    #[test]
    #[should_panic(expected = "row_topk = 0")]
    fn zero_row_cap_is_rejected() {
        let _ = sparsify(&sample(), 0.0, Some(0));
    }

    #[test]
    fn report_tracks_mass_and_bytes() {
        let p = sample();
        let (_, r) = compress(&p, &CompressionPolicy::f32(0.05));
        assert!(r.nnz_after < r.nnz_before);
        assert!(r.nnz_kept < 1.0 && r.nnz_kept > 0.0);
        // Dropping only relatively tiny entries keeps almost all the mass.
        assert!(r.fro_mass_kept > 0.99, "{}", r.fro_mass_kept);
        assert_eq!(r.value_bytes_before, p.nnz() * 8);
        assert_eq!(r.value_bytes_after, r.nnz_after * 4);
        assert_eq!(r.precision.name(), "f32");
    }

    #[test]
    fn compression_rediscovers_structure_after_sparsification() {
        // A tridiagonal inverse polluted by tiny far-off-band couplings: the
        // raw operator defeats both banded and stencil detection, but the
        // drop tolerance removes exactly those entries, so the compressed
        // precond re-detects and dispatches the banded kernels.
        let n = 24;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -0.5);
                coo.push(i - 1, i, -0.5);
            }
            if i + 7 < n && i % 3 == 0 {
                coo.push(i, i + 7, 1e-8);
            }
        }
        let p = coo.to_csr();
        assert_eq!(
            mcmcmi_sparse::detect_structure(&p).kernel_name(),
            "generic-csr"
        );
        for policy in [CompressionPolicy::f64(1e-4), CompressionPolicy::f32(1e-4)] {
            let (c, _) = compress(&p, &policy);
            assert_eq!(c.kernel_name(), "banded", "{}", policy.precision.name());
        }
        // A tolerance that keeps the stray couplings keeps the generic path.
        let (c, _) = compress(&p, &CompressionPolicy::f64(0.0));
        assert_eq!(c.kernel_name(), "generic-csr");
    }

    #[test]
    fn f32_compressed_apply_tracks_f64_apply() {
        let p = sample();
        let (c64, _) = compress(&p, &CompressionPolicy::f64(0.01));
        let (c32, _) = compress(&p, &CompressionPolicy::f32(0.01));
        let r = [0.3, -1.0, 2.0, 0.25];
        let mut z64 = vec![0.0; 4];
        let mut z32 = vec![0.0; 4];
        c64.apply(&r, &mut z64);
        c32.apply(&r, &mut z32);
        assert_eq!(c64.nnz(), c32.nnz());
        assert_eq!(c64.value_bytes(), 2 * c32.value_bytes());
        for (a, b) in z32.iter().zip(&z64) {
            assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }
}
