//! The Ulam–von Neumann random-walk engine.
//!
//! Estimates rows of `M = (I − C)⁻¹ = Σ_k C^k` by running independent Markov
//! chains with MAO (Monte-Carlo-almost-optimal) transition probabilities
//! `p_ij = |c_ij| / Σ_l |c_il|`. Each visited state `k_m` contributes the
//! current weight `W_m` to entry `(i, k_m)`; on transition `k → j` the weight
//! is multiplied by `c_kj / p_kj = sign(c_kj)·S_k`, with `S_k` the row
//! absolute sum. Chains stop when `|W| < δ`, on absorption (`S_k = 0`), or at
//! a hard step cap.
//!
//! # Transition sampling: Walker/Vose alias tables
//!
//! Every transition draws from the *fixed* discrete distribution of its
//! current row, so the classic repeated-sampling optimisation applies:
//! [`WalkMatrix::from_perturbed`] precomputes a Walker/Vose **alias table**
//! per row (O(nnz) once), and [`WalkMatrix::sample_transition`] then costs
//! O(1) — a single 64-bit draw is split into a slot index (high bits,
//! multiply-shift) and a 32-bit fixed-point coin flip (low bits) against
//! the slot's cutoff, replacing the O(log nnz_row) binary search of
//! inverse-CDF sampling. Slots are packed to 12 bytes (cutoff, donor,
//! column+sign) so a transition resolves in one or two cache-line touches
//! with no floating-point arithmetic. The inverse-CDF path is retained as
//! [`WalkMatrix::sample_transition_invcdf`] purely as a reference/baseline
//! for benchmarks and distribution-equivalence tests.
//!
//! Alias construction (Vose's stable variant): scale the row's MAO
//! probabilities by the row length `m` so they average 1, split the entries
//! into a "small" (< 1) and "large" (≥ 1) worklist, and repeatedly pair one
//! small entry with one large donor — the small entry's slot keeps its own
//! probability as the cutoff and records the donor as its alias; the donor's
//! residual mass is pushed back onto the appropriate worklist. Leftovers get
//! cutoff 1 (no alias ever taken). Construction is branch-deterministic:
//! worklists are filled in ascending index order, so the table — and hence
//! every sampled stream — is identical on every run.
//!
//! # Determinism contract
//!
//! Sampling consumes exactly **one** 64-bit word from the per-chain ChaCha
//! stream per transition, and the stream is keyed by `(seed, row, chain)`
//! only. The result of a build is therefore bit-identical for any thread
//! count or scheduling order (`RAYON_NUM_THREADS=1` vs `=8` produce equal
//! preconditioners; see `tests/determinism.rs`) — and, because the streams
//! are per *chain* rather than per row, independent of how chains are
//! scheduled onto lanes inside a row. Note the alias and inverse-CDF
//! samplers realise the *same distribution* but map uniform draws to states
//! differently, so swapping samplers changes individual walk trajectories
//! while leaving all estimator statistics intact.
//!
//! # Engines: scalar reference vs lockstep SoA
//!
//! Two interchangeable walk engines implement the estimator:
//!
//! * [`WalkEngine::Scalar`] — one chain at a time, the straightforward
//!   reference loop ([`WalkMatrix::walk_row`]).
//! * [`WalkEngine::Soa`] (default) — a lockstep structure-of-arrays batch
//!   ([`WalkMatrix::walk_row_soa`]): the row's O(10³) chains stream through
//!   a window of [`MAX_LANES`] lanes held in parallel weight/step/RNG/
//!   row-cursor arrays, stepped together. Each lockstep round sweeps the
//!   live lanes once — one `u64` draw, a branchless alias pick (the coin
//!   selects between slot and donor by conditional move, then a single
//!   unconditional load), the weight update, and the per-lane journal
//!   append — retiring finished lanes by swap-compaction and regenerating
//!   freed lanes from the row's pending chains at the end of the round.
//!   Lanes carry their row cursor (alias-table offset, width, row sum) so
//!   the steady-state loop touches only lane arrays and the alias table.
//!   Breaking the scalar loop's serial draw→lookup→branch dependency chain
//!   exposes instruction-level and memory-level parallelism (many
//!   independent alias-table fetches in flight), which is where the
//!   speed-up comes from on working sets beyond the cache hierarchy — and
//!   the lane layout is exactly what a SIMD/GPU port would vectorise.
//!
//! The SoA engine is **bit-identical** to the scalar engine: chains draw
//! from the same per-`(seed, row, chain)` streams regardless of lane
//! scheduling, and lane contributions are journalled per chain and flushed
//! into the dense tally in chain order, replaying the scalar engine's exact
//! sequence of floating-point adds (FP addition is not associative, so the
//! flush order — not just the set of contributions — must match). Rows,
//! not lanes, are sharded across rayon workers, so `rebuild_rows` and
//! `build_safeguarded` ride on either engine unchanged.

use mcmcmi_sparse::Csr;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Which engine runs the row walks. Both produce **bit-identical** output
/// (same per-`(seed, row, chain)` streams, same floating-point add order);
/// they differ only in throughput and memory access pattern.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalkEngine {
    /// One chain at a time — the reference implementation
    /// ([`WalkMatrix::walk_row`]).
    Scalar,
    /// Lockstep structure-of-arrays lane batch
    /// ([`WalkMatrix::walk_row_soa`]) — the default build path.
    #[default]
    Soa,
}

/// Lane-window width for the lockstep SoA engine. A row's whole O(10³)
/// chain population (1138 at the paper's ε = 0.02) streams through this
/// many concurrent lanes; finished lanes are swap-retired and refilled, so
/// the batch, not the window, is what gets walked per step. Sized so one
/// worker's lane state (weight/steps/chain/RNG/row-cursor arrays plus the
/// hot journal tails, ≈ 60 B per lane) stays L1-resident while still
/// keeping hundreds of independent alias-table fetches in flight per
/// round.
pub const MAX_LANES: usize = 256;

/// Deterministic stream for chain `chain` of row `row`: both engines draw
/// every transition of that chain from this exact stream, so the estimate
/// is independent of engine choice, thread count, and lane scheduling.
#[inline]
pub(crate) fn chain_rng(seed: u64, row: usize, chain: usize) -> ChaCha8Rng {
    let h = seed
        ^ 0x9e3779b97f4a7c15u64.wrapping_mul(row as u64 + 1)
        ^ 0x94d049bb133111ebu64.wrapping_mul(chain as u64 + 1);
    ChaCha8Rng::seed_from_u64(h)
}

/// The Jacobi-splitting iteration matrix `C = I − D̂⁻¹Â` in walk-ready form:
/// per row, the column indices, signed values, a Walker/Vose alias table for
/// O(1) sampling (plus the cumulative |value| table for the reference
/// inverse-CDF path), and the absolute row sum.
#[derive(Clone, Debug)]
pub struct WalkMatrix {
    n: usize,
    indptr: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
    /// Cumulative |vals| within each row — reference inverse-CDF sampler
    /// only (benchmark baseline and distribution cross-checks).
    cum: Vec<f64>,
    /// Packed alias table, one slot per entry (aligned with `cols`).
    alias: Vec<AliasSlot>,
    /// Absolute row sums `S_k` (the weight multiplier magnitude).
    rowsum: Vec<f64>,
    /// Inverse of the perturbed diagonal `D̂⁻¹` (for assembling `P = M·D̂⁻¹`).
    inv_diag: Vec<f64>,
}

/// Sign flag packed into [`AliasSlot::col_sign`] bit 31.
const SIGN_BIT: u32 = 1 << 31;

/// One alias-table slot, packed to 12 bytes so a transition touches one
/// (sometimes two) cache lines and needs **zero floating-point ops** to
/// resolve: the coin flip is a `u32` compare against the fixed-point
/// cutoff, and the signed weight multiplier is reconstructed as
/// `±rowsum[k]` from the sign bit folded into the column word.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct AliasSlot {
    /// In-slot acceptance cutoff, fixed point in 2⁻³² units. Saturated
    /// slots store `u32::MAX` and alias to themselves, so the 2⁻³²
    /// acceptance shortfall still selects the same entry.
    prob: u32,
    /// Donor slot within the row, selected when the coin flip fails.
    alias: u32,
    /// Column (next state) in bits 0..31; sign of the entry in bit 31.
    col_sign: u32,
}

/// Append the Walker/Vose alias table of one row (`cols`/`vals` are the
/// row's entries, `s > 0` their absolute sum) to the flat slot array.
/// Vose runs in f64 and the final cutoffs are quantised to 32-bit fixed
/// point (≈2⁻³³ rounding per slot — orders of magnitude below any Monte
/// Carlo error this engine can reach). Worklists are filled in ascending
/// index order so construction is fully deterministic.
fn push_row_alias(cols: &[usize], vals: &[f64], s: f64, slots: &mut Vec<AliasSlot>) {
    let m = cols.len();
    debug_assert!(m > 0 && s > 0.0);
    assert_row_width(m);
    let scale = m as f64 / s;
    let mut prob: Vec<f64> = vals.iter().map(|v| v.abs() * scale).collect();
    let mut alias: Vec<u32> = (0..m as u32).collect();
    let mut small: Vec<u32> = Vec::new();
    let mut large: Vec<u32> = Vec::new();
    for (i, &p) in prob.iter().enumerate() {
        if p < 1.0 {
            small.push(i as u32);
        } else {
            large.push(i as u32);
        }
    }
    while let (Some(l), Some(&g)) = (small.pop(), large.last()) {
        alias[l as usize] = g;
        // Donor g covers slot l's deficit; fold the transfer into g's mass.
        let residual = (prob[g as usize] + prob[l as usize]) - 1.0;
        prob[g as usize] = residual;
        if residual < 1.0 {
            large.pop();
            small.push(g);
        }
    }
    // Leftovers (numerically ≈ 1): saturate so the alias is never taken.
    for &g in large.iter().chain(small.iter()) {
        prob[g as usize] = 1.0;
    }
    slots.extend((0..m).map(|i| AliasSlot {
        prob: (prob[i] * 4294967296.0).round().min(u32::MAX as f64) as u32,
        alias: alias[i],
        col_sign: cols[i] as u32 | if vals[i] < 0.0 { SIGN_BIT } else { 0 },
    }));
}

/// Hard guard on the packed alias representation: a row with more than
/// `u32::MAX` entries cannot be indexed by the 32-bit slot/donor fields —
/// the old `debug_assert!` here meant a release build would silently
/// truncate such a row into garbage alias slots. Unreachable through
/// [`WalkMatrix::from_perturbed`] (which rejects `n ≥ 2³¹` outright, and a
/// row holds at most `n − 1` off-diagonals), but kept as a hard assert so
/// any future construction path fails loudly instead of corrupting walks.
#[inline]
fn assert_row_width(m: usize) {
    assert!(
        m <= u32::MAX as usize,
        "alias table: row with {m} entries exceeds the u32 slot-index range"
    );
}

/// Outcome summary of one row's walks.
#[derive(Clone, Copy, Debug, Default)]
pub struct RowWalkStats {
    /// Total transitions taken.
    pub transitions: usize,
    /// Chains that hit the hard step cap (possible divergence).
    pub capped: usize,
    /// Chains whose weight grew beyond the blow-up guard.
    pub blown_up: usize,
}

impl WalkMatrix {
    /// Build the splitting for `Â = A + α·diag(A)` — the paper's "scale the
    /// added diagonal" perturbation, i.e. `â_ii = (1 + α)·a_ii`, which
    /// amplifies the diagonal *sign-preservingly* (so rows with negative
    /// diagonals are regularised too, and every row's splitting sum shrinks
    /// monotonically: `S_k(α) = S_k(0)/(1 + α)`). `C = I − D̂⁻¹Â`
    /// (so `c_ii = 0`, `c_ij = −â_ij/â_ii`).
    ///
    /// Rows whose diagonal is zero fall back to `â_ii = α·‖row‖₁` so the
    /// perturbation still regularises them; if that is also zero the walk
    /// row is empty (identity fallback).
    pub fn from_perturbed(a: &Csr, alpha: f64) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "WalkMatrix: matrix must be square");
        let n = a.nrows();
        let mut indptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        assert!(
            n < SIGN_BIT as usize,
            "WalkMatrix: dimension exceeds 2^31 − 1 (alias slots pack the \
             column and sign into one u32)"
        );
        let mut cum = Vec::new();
        let mut alias = Vec::new();
        let mut rowsum = Vec::with_capacity(n);
        let mut inv_diag = Vec::with_capacity(n);
        indptr.push(0);
        for i in 0..n {
            let aii = a.get(i, i);
            let dii = if aii != 0.0 {
                (1.0 + alpha) * aii
            } else {
                alpha
                    * a.row_values(i)
                        .iter()
                        .map(|v| v.abs())
                        .sum::<f64>()
                        .max(1.0)
            };
            if dii.abs() < f64::MIN_POSITIVE {
                // Degenerate row: identity action.
                inv_diag.push(1.0);
                rowsum.push(0.0);
                indptr.push(cols.len());
                continue;
            }
            inv_diag.push(1.0 / dii);
            let mut s = 0.0;
            let row_start = cols.len();
            for (&j, &v) in a.row_indices(i).iter().zip(a.row_values(i)) {
                // c_ij = −â_ij / â_ii; off-diagonal entries of Â equal A's.
                if j == i {
                    continue;
                }
                let c = -v / dii;
                if c != 0.0 {
                    cols.push(j);
                    vals.push(c);
                    s += c.abs();
                    cum.push(s);
                }
            }
            if cols.len() > row_start {
                push_row_alias(&cols[row_start..], &vals[row_start..], s, &mut alias);
            }
            rowsum.push(s);
            indptr.push(cols.len());
        }
        debug_assert_eq!(alias.len(), cols.len());
        Self {
            n,
            indptr,
            cols,
            vals,
            cum,
            alias,
            rowsum,
            inv_diag,
        }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Absolute row sum `S_k` (‖row k of C‖₁). Values ≥ 1 signal a
    /// non-contractive row: walks through it can diverge.
    pub fn rowsum(&self, k: usize) -> f64 {
        self.rowsum[k]
    }

    /// Fraction of rows with `S_k ≥ 1` — a cheap divergence predictor.
    pub fn noncontractive_fraction(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.rowsum.iter().filter(|&&s| s >= 1.0).count() as f64 / self.n as f64
    }

    /// Inverse perturbed diagonal.
    pub fn inv_diag(&self) -> &[f64] {
        &self.inv_diag
    }

    /// Deterministic power-iteration estimate of `ρ(|C|)`, the spectral
    /// radius of the entrywise-absolute iteration matrix — the quantity
    /// that actually governs walk-weight growth: the expected absolute
    /// weight mass after `k` steps is `‖|C|ᵏx‖`, so `ρ(|C|) < 1` means
    /// chains contract in expectation and the Neumann estimator's mass is
    /// summable, while `ρ(|C|) > 1` means weights blow up no matter how
    /// many chains are run. This is sharper than the ∞-norm bound
    /// `max_k S_k` (a matrix can have non-contractive rows yet still
    /// satisfy `ρ(|C|) < 1`) and far cheaper than running pilot walks:
    /// `iters` sweeps over the nnz of `C`, no RNG, no allocation beyond
    /// two dense vectors.
    ///
    /// The iteration actually runs on the **shifted** matrix
    /// `|C| + σI` (σ = ½) and subtracts σ from the final ratio. The shift
    /// is what makes the estimate trustworthy: Jacobi iteration matrices
    /// have zero diagonal, so `|C|` is frequently *imprimitive*
    /// (bipartite grids, directed cyclic coupling), and a plain power
    /// iteration's per-step ratio then oscillates around ρ forever —
    /// period 2 flips between `ρ·c` and `ρ/c`, longer cycles are worse —
    /// which can pass a divergent splitting or reject a contractive one.
    /// Adding σI leaves the eigenvectors untouched and shifts every
    /// eigenvalue by exactly σ (so `ρ(|C|+σI) = ρ(|C|) + σ` for a
    /// nonnegative matrix), but makes the matrix primitive whenever
    /// `|C|` is irreducible: the peripheral eigenvalues `ρ·ω` (ω a root
    /// of unity) land at `|ρω + σ| < ρ + σ`, so the ratio converges
    /// geometrically for *any* cycle period.
    ///
    /// Starts from the all-ones vector (∞-norm 1, so the very first
    /// ratio is `max_k S_k + σ` — the honest ∞-norm upper bound).
    /// `iters` below 8 is clamped: the shifted ratio needs a few sweeps
    /// to damp the oscillatory transient, and 8 extra nnz-sweeps are
    /// noise next to any build, so a degenerate `probe_iters` can never
    /// silently disable the guard. Zero rows and reducible structure are
    /// handled naturally — an all-absorbing matrix reports 0.
    pub fn abs_spectral_radius_estimate(&self, iters: usize) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        const SHIFT: f64 = 0.5;
        let mut x = vec![1.0; self.n];
        let mut y = vec![0.0; self.n];
        let mut lam = SHIFT;
        for _ in 0..iters.max(8) {
            for i in 0..self.n {
                let (rs, re) = (self.indptr[i], self.indptr[i + 1]);
                let mut s = SHIFT * x[i];
                for e in rs..re {
                    s += self.vals[e].abs() * x[self.cols[e]];
                }
                y[i] = s;
            }
            let norm = y.iter().fold(0.0f64, |m, &v| m.max(v));
            if !norm.is_finite() {
                return norm;
            }
            lam = norm;
            let inv = 1.0 / norm;
            for (xi, &yi) in x.iter_mut().zip(&y) {
                *xi = yi * inv;
            }
        }
        // The shifted iteration's ratio converges to ρ(|C|) + σ.
        (lam - SHIFT).max(0.0)
    }

    /// Entry range of row `k` in the flat arrays (empty ⇒ absorbing row).
    /// Exposed for the regenerative variant's custom walk loop.
    #[inline]
    pub fn row_range(&self, k: usize) -> (usize, usize) {
        (self.indptr[k], self.indptr[k + 1])
    }

    /// Sample one transition from a non-absorbing row `k` with the O(1)
    /// alias method; returns `(next_state, signed weight multiplier)`.
    ///
    /// # Panics
    /// Panics (in debug builds) if the row is absorbing — check
    /// [`WalkMatrix::row_range`] first.
    #[inline]
    pub fn sample_transition<R: Rng>(&self, k: usize, rng: &mut R) -> (usize, f64) {
        self.step(k, rng).expect("sample_transition: absorbing row")
    }

    /// Reference O(log nnz_row) sampler: inverse-CDF binary search on the
    /// cumulative table. Same distribution as [`WalkMatrix::sample_transition`]
    /// (and the same single uniform draw), different draw→state mapping.
    /// Kept as the benchmark baseline — the production walk loop uses the
    /// alias path.
    ///
    /// # Panics
    /// Panics (in debug builds) if the row is absorbing.
    #[inline]
    pub fn sample_transition_invcdf<R: Rng>(&self, k: usize, rng: &mut R) -> (usize, f64) {
        self.step_invcdf(k, rng)
            .expect("sample_transition_invcdf: absorbing row")
    }

    /// Sample the next state from row `k` via the alias table; returns
    /// `(next_state, signed weight multiplier)` or `None` on absorption.
    /// One `u64` draw, split into disjoint bit ranges: the high 32 bits
    /// pick the slot by multiply-shift, the low 32 bits are the
    /// fixed-point coin flip against the slot's cutoff — no float ops
    /// until the multiplier is produced.
    #[inline]
    fn step<R: Rng>(&self, k: usize, rng: &mut R) -> Option<(usize, f64)> {
        let (rs, re) = (self.indptr[k], self.indptr[k + 1]);
        if rs == re {
            return None;
        }
        Some(self.resolve_draw(k, rng.next_u64()))
    }

    /// Map one raw 64-bit draw to a transition out of non-absorbing row
    /// `k`: `(next_state, signed weight multiplier)`. Shared by the scalar
    /// sampler and the SoA gather pass, so both engines turn identical
    /// draws into identical transitions.
    #[inline]
    pub(crate) fn resolve_draw(&self, k: usize, r: u64) -> (usize, f64) {
        let (rs, re) = (self.indptr[k], self.indptr[k + 1]);
        debug_assert!(re > rs, "resolve_draw: absorbing row");
        let m = (re - rs) as u64;
        let idx = (((r >> 32) * m) >> 32) as usize;
        let coin = r as u32;
        let slot = self.alias[rs + idx];
        let chosen = if coin < slot.prob {
            slot
        } else {
            self.alias[rs + slot.alias as usize]
        };
        let s = self.rowsum[k];
        let mult = if chosen.col_sign & SIGN_BIT == 0 {
            s
        } else {
            -s
        };
        ((chosen.col_sign & !SIGN_BIT) as usize, mult)
    }

    /// Inverse-CDF sampling (binary search on the cumulative table).
    #[inline]
    fn step_invcdf<R: Rng>(&self, k: usize, rng: &mut R) -> Option<(usize, f64)> {
        let (rs, re) = (self.indptr[k], self.indptr[k + 1]);
        if rs == re {
            return None;
        }
        let s = self.rowsum[k];
        let u: f64 = rng.gen::<f64>() * s;
        let row_cum = &self.cum[rs..re];
        let idx = match row_cum.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => (i + 1).min(row_cum.len() - 1),
            Err(i) => i.min(row_cum.len() - 1),
        };
        let j = self.cols[rs + idx];
        let mult = self.vals[rs + idx].signum() * s;
        Some((j, mult))
    }

    /// Run `n_chains` walks from row `i`, accumulating weight tallies into
    /// `scratch` (dense, length n, zeroed on entry; `touched` records the
    /// indices written so the caller can harvest sparsely). `delta` is the
    /// truncation error; `max_len` the hard step cap.
    ///
    /// Returns per-row statistics. The scratch tallies are *sums*; divide by
    /// `n_chains` to get the estimator.
    pub fn walk_row(
        &self,
        i: usize,
        n_chains: usize,
        delta: f64,
        max_len: usize,
        seed: u64,
        scratch: &mut [f64],
        touched: &mut Vec<usize>,
    ) -> RowWalkStats {
        debug_assert_eq!(scratch.len(), self.n);
        let mut stats = RowWalkStats::default();
        const BLOWUP: f64 = 1e12;
        for chain in 0..n_chains {
            // Per-chain deterministic stream: independent of scheduling,
            // and of how the SoA engine maps chains onto lanes.
            let mut rng = chain_rng(seed, i, chain);
            let mut k = i;
            let mut w = 1.0f64;
            // Step 0 contribution.
            if scratch[k] == 0.0 {
                touched.push(k);
            }
            scratch[k] += w;
            let mut steps = 0usize;
            loop {
                if steps >= max_len {
                    stats.capped += 1;
                    break;
                }
                match self.step(k, &mut rng) {
                    None => break, // absorbed
                    Some((j, mult)) => {
                        w *= mult;
                        k = j;
                        steps += 1;
                        stats.transitions += 1;
                        if w.abs() < delta {
                            break;
                        }
                        if w.abs() > BLOWUP || !w.is_finite() {
                            stats.blown_up += 1;
                            break;
                        }
                        if scratch[k] == 0.0 {
                            touched.push(k);
                        }
                        scratch[k] += w;
                    }
                }
            }
        }
        stats
    }

    /// Lockstep SoA twin of [`WalkMatrix::walk_row`]: identical signature
    /// (plus the reusable [`SoaBatch`]), **bit-identical** tallies and
    /// statistics, batched execution.
    ///
    /// Up to [`MAX_LANES`] chains of row `i` run concurrently as lanes of
    /// parallel weight/step/row-constant arrays. The scalar loop is a
    /// pointer chase — each transition's alias-slot load depends on the
    /// previous transition's outcome, so on operators whose tables exceed
    /// the cache working set every step eats a full miss latency, and the
    /// alias coin flip is an inherently unpredictable branch whose
    /// mispredictions flush whatever memory parallelism the core had
    /// extracted. The lockstep round fixes both: consecutive loop
    /// iterations belong to *different* lanes, so their alias gathers are
    /// mutually independent and overlap, and the coin flip compiles to a
    /// conditional move between the primary slot index and its donor — no
    /// branch at all. Each lane carries its current row's constants
    /// (flat-array offset, width, absolute row sum), gathered one round
    /// early when the lane advanced, so a transition touches no `indptr`
    /// re-loads on the critical path. Retired lanes (truncation `|W| < δ`,
    /// blowup, step cap, absorption — the latter two checked *after* the
    /// tally, in the scalar loop's order, and consuming no RNG word)
    /// swap-compact away and immediately regenerate as the row's next
    /// pending chains, re-seeding their per-lane stream in place.
    ///
    /// Contributions are journalled per chain and flushed into `scratch`
    /// in chain order afterwards, replaying the scalar engine's exact
    /// floating-point add sequence (FP addition is non-associative, so
    /// flushing in lane-interleaved order would change low-order bits).
    pub fn walk_row_soa(
        &self,
        i: usize,
        n_chains: usize,
        delta: f64,
        max_len: usize,
        seed: u64,
        batch: &mut SoaBatch,
        scratch: &mut [f64],
        touched: &mut Vec<usize>,
    ) -> RowWalkStats {
        debug_assert_eq!(scratch.len(), self.n);
        let mut stats = RowWalkStats::default();
        const BLOWUP: f64 = 1e12;
        if n_chains == 0 {
            return stats;
        }

        let row_rs = self.indptr[i];
        let row_re = self.indptr[i + 1];
        // Absorbing start row or zero step cap: every chain tallies its
        // step-0 contribution and ends without drawing — the scalar loop
        // takes the same exit before its first draw, cap counted first.
        if row_rs == row_re || max_len == 0 {
            for _ in 0..n_chains {
                if scratch[i] == 0.0 {
                    touched.push(i);
                }
                scratch[i] += 1.0;
            }
            if max_len == 0 {
                stats.capped = n_chains;
            }
            return stats;
        }

        let lanes = n_chains.min(MAX_LANES);
        batch.reset(n_chains, lanes);
        let row_width = (row_re - row_rs) as u32;
        let row_srow = self.rowsum[i];
        for lane in 0..lanes {
            batch.weight[lane] = 1.0;
            batch.chain[lane] = lane as u32;
            batch.rng[lane] = chain_rng(seed, i, lane);
            batch.rs[lane] = row_rs;
            batch.width[lane] = row_width;
            batch.srow[lane] = row_srow;
            // Step 0 contribution of chain `lane`.
            batch.logs[lane].push((i as u32, 1.0));
        }
        let mut next_chain = lanes;
        let mut n_active = lanes;

        // Loop invariant: every active lane sits on a non-absorbing state
        // with `steps < max_len` and carries that state's row constants
        // (`rs`/`width`/`srow`), so every round draws for every lane.
        while n_active > 0 {
            let mut l = 0;
            while l < n_active {
                let r = batch.rng[l].next_u64();
                let rs = batch.rs[l];
                let idx = (((r >> 32) * batch.width[l] as u64) >> 32) as usize;
                let slot = self.alias[rs + idx];
                // Branchless coin: a conditional move between the primary
                // index and its donor, then one unconditional load (a
                // cache hit on acceptance — same line as `slot`).
                let pick = if (r as u32) < slot.prob {
                    idx
                } else {
                    slot.alias as usize
                };
                let chosen = self.alias[rs + pick];
                let s = batch.srow[l];
                let mult = if chosen.col_sign & SIGN_BIT == 0 {
                    s
                } else {
                    -s
                };
                let j = (chosen.col_sign & !SIGN_BIT) as usize;
                let w = batch.weight[l] * mult;
                batch.weight[l] = w;
                batch.steps[l] += 1;
                stats.transitions += 1;
                if w.abs() < delta {
                    n_active -= 1;
                    batch.retire_lane(l, n_active);
                    continue;
                }
                if w.abs() > BLOWUP || !w.is_finite() {
                    stats.blown_up += 1;
                    n_active -= 1;
                    batch.retire_lane(l, n_active);
                    continue;
                }
                batch.logs[batch.chain[l] as usize].push((j as u32, w));
                // The scalar loop's next iteration checks the cap first,
                // then absorption — replicate that order. Both retire
                // without consuming a draw, exactly like the scalar exit.
                if (batch.steps[l] as usize) >= max_len {
                    stats.capped += 1;
                    n_active -= 1;
                    batch.retire_lane(l, n_active);
                    continue;
                }
                let nrs = self.indptr[j];
                let nre = self.indptr[j + 1];
                if nrs == nre {
                    // Absorbed: chain ends with no draw next round.
                    n_active -= 1;
                    batch.retire_lane(l, n_active);
                    continue;
                }
                batch.rs[l] = nrs;
                batch.width[l] = (nre - nrs) as u32;
                batch.srow[l] = self.rowsum[j];
                l += 1;
            }
            // Regenerate freed lanes into the next pending chains; their
            // first draw happens next round.
            while n_active < lanes && next_chain < n_chains {
                let l = n_active;
                batch.weight[l] = 1.0;
                batch.steps[l] = 0;
                batch.chain[l] = next_chain as u32;
                batch.rng[l] = chain_rng(seed, i, next_chain);
                batch.rs[l] = row_rs;
                batch.width[l] = row_width;
                batch.srow[l] = row_srow;
                batch.logs[next_chain].push((i as u32, 1.0));
                next_chain += 1;
                n_active += 1;
            }
        }

        // Chain-major flush: the scalar engine's exact FP-add sequence.
        for log in batch.logs[..n_chains].iter() {
            for &(j, w) in log {
                let j = j as usize;
                if scratch[j] == 0.0 {
                    touched.push(j);
                }
                scratch[j] += w;
            }
        }
        stats
    }
}

/// Reusable lockstep lane-batch state for [`WalkMatrix::walk_row_soa`] —
/// one per worker (like the dense scratch in the builder), so the lane
/// arrays, the per-round draw block, and the per-chain contribution
/// journals are allocated once and recycled across rows.
#[derive(Default)]
pub struct SoaBatch {
    /// Current state (row of `C`) per lane.
    pub(crate) state: Vec<u32>,
    /// Current chain weight per lane.
    pub(crate) weight: Vec<f64>,
    /// Steps taken by the lane's chain so far.
    pub(crate) steps: Vec<u32>,
    /// Chain id owning each lane (indexes `logs`; in the regenerative
    /// engine, the lane's RNG *slot*).
    pub(crate) chain: Vec<u32>,
    /// RNG streams (`chain_rng`), positioned mid-stream. The walk engine
    /// keeps one per *lane*, re-seeded in place on regeneration, so the
    /// draw pass streams sequentially; the regenerative engine sizes this
    /// per chain-slot and indexes it through `chain`.
    pub(crate) rng: Vec<ChaCha8Rng>,
    /// The contiguous per-round draw block, one `u64` per active lane
    /// (regenerative engine only; the walk engine consumes each draw
    /// in-register).
    pub(crate) draws: Vec<u64>,
    /// Row constants of the lane's current state, carried across rounds
    /// so each transition gathers them one round early: flat-array start
    /// of the row...
    pub(crate) rs: Vec<usize>,
    /// ...its entry count...
    pub(crate) width: Vec<u32>,
    /// ...and its absolute row sum (the weight multiplier magnitude).
    pub(crate) srow: Vec<f64>,
    /// Per-chain contribution journal `(state, weight)` in step order.
    pub(crate) logs: Vec<Vec<(u32, f64)>>,
}

impl SoaBatch {
    /// Fresh (empty) batch; arrays grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size the lane arrays for a row of `n_chains` chains run on `lanes`
    /// lanes, clearing the journals while keeping their capacity.
    pub(crate) fn reset(&mut self, n_chains: usize, lanes: usize) {
        self.state.clear();
        self.state.resize(lanes, 0);
        self.weight.clear();
        self.weight.resize(lanes, 0.0);
        self.steps.clear();
        self.steps.resize(lanes, 0);
        self.chain.clear();
        self.chain.resize(lanes, 0);
        self.draws.clear();
        self.draws.resize(lanes, 0);
        self.rs.clear();
        self.rs.resize(lanes, 0);
        self.width.clear();
        self.width.resize(lanes, 0);
        self.srow.clear();
        self.srow.resize(lanes, 0.0);
        // One RNG per lane (callers seed them); one journal per chain,
        // with the journals pooling their buffers across rows.
        self.rng.clear();
        self.rng.resize(lanes, ChaCha8Rng::seed_from_u64(0));
        if self.logs.len() < n_chains {
            self.logs.resize_with(n_chains, Vec::new);
        }
        for log in self.logs[..n_chains].iter_mut() {
            log.clear();
        }
    }

    /// Swap two lanes across the regenerative engine's parallel arrays
    /// (`draws` included: the retire passes pull the yet-unprocessed tail
    /// lane — and its draw — into the freed slot). The RNG array is *not*
    /// swapped: that engine addresses it through the `chain` slot ids,
    /// which travel with the lanes.
    #[inline]
    pub(crate) fn swap_lanes(&mut self, a: usize, b: usize) {
        self.state.swap(a, b);
        self.weight.swap(a, b);
        self.steps.swap(a, b);
        self.chain.swap(a, b);
        self.draws.swap(a, b);
    }

    /// Retire lane `a` in the walk engine by pulling in tail lane `b`:
    /// everything the round still reads for the pulled-in lane must
    /// travel — the carried row constants and the per-lane RNG stream.
    #[inline]
    pub(crate) fn retire_lane(&mut self, a: usize, b: usize) {
        self.swap_lanes(a, b);
        self.rng.swap(a, b);
        self.rs.swap(a, b);
        self.width.swap(a, b);
        self.srow.swap(a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmcmi_sparse::Coo;

    fn two_by_two() -> Csr {
        // A = [[2, -1], [-1, 2]]; with α = 0: C = [[0, 1/2], [1/2, 0]],
        // (I−C)⁻¹ = (4/3)·[[1, 1/2],[1/2, 1]].
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(0, 1, -1.0);
        coo.push(1, 0, -1.0);
        coo.push(1, 1, 2.0);
        coo.to_csr()
    }

    #[test]
    fn splitting_values_are_correct() {
        let w = WalkMatrix::from_perturbed(&two_by_two(), 0.0);
        assert_eq!(w.dim(), 2);
        assert!((w.rowsum(0) - 0.5).abs() < 1e-15);
        assert!((w.rowsum(1) - 0.5).abs() < 1e-15);
        assert!((w.inv_diag()[0] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn perturbation_shrinks_rowsums() {
        let w0 = WalkMatrix::from_perturbed(&two_by_two(), 0.0);
        let w2 = WalkMatrix::from_perturbed(&two_by_two(), 2.0);
        // α = 2: â_ii = 2 + 2·2 = 6 ⇒ |c_ij| = 1/6.
        assert!(w2.rowsum(0) < w0.rowsum(0));
        assert!((w2.rowsum(0) - 1.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn walks_estimate_neumann_sum() {
        // Monte Carlo estimate of (I−C)⁻¹ row 0 = (4/3)·[1, 1/2].
        let w = WalkMatrix::from_perturbed(&two_by_two(), 0.0);
        let mut scratch = vec![0.0; 2];
        let mut touched = Vec::new();
        let chains = 200_000;
        let stats = w.walk_row(0, chains, 1e-6, 10_000, 42, &mut scratch, &mut touched);
        assert_eq!(stats.blown_up, 0);
        let m00 = scratch[0] / chains as f64;
        let m01 = scratch[1] / chains as f64;
        assert!((m00 - 4.0 / 3.0).abs() < 0.01, "m00 = {m00}");
        assert!((m01 - 2.0 / 3.0).abs() < 0.01, "m01 = {m01}");
    }

    #[test]
    fn determinism_per_seed() {
        // A ring with two neighbours per row so transitions actually branch
        // (a 2×2 system has deterministic walks regardless of seed).
        let mut coo = Coo::new(4, 4);
        for i in 0..4usize {
            coo.push(i, i, 3.0);
            coo.push(i, (i + 1) % 4, -1.0);
            coo.push(i, (i + 3) % 4, -0.5);
        }
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.5);
        let run = |seed| {
            let mut scratch = vec![0.0; 4];
            let mut touched = Vec::new();
            w.walk_row(0, 100, 1e-4, 100, seed, &mut scratch, &mut touched);
            scratch
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn spectral_estimate_handles_imprimitive_structure() {
        // |C| = [[0, 4], [0.5, 0]] is period-2 (cyclic), so the raw
        // per-step ∞-norm ratio oscillates between 0.5 and 4 forever; the
        // true ρ(|C|) = √2. The geometric-mean estimator must report ≈√2
        // at any iteration count — including counts of both parities and
        // the degenerate 0/1 (clamped to 2).
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, -4.0);
        coo.push(1, 0, -0.5);
        coo.push(1, 1, 1.0);
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.0);
        let rho = 2.0f64.sqrt();
        for iters in [31usize, 32, 33] {
            let est = w.abs_spectral_radius_estimate(iters);
            assert!(
                (est - rho).abs() < 1e-9,
                "iters = {iters}: estimate {est} vs ρ = {rho}"
            );
        }
        // Degenerate iteration counts are clamped past the oscillatory
        // transient: even iters = 0 must flag this divergent splitting
        // (the old last-ratio estimator reported 0.5 here and let a
        // divergent build through).
        for iters in [0usize, 1, 2, 8] {
            let est = w.abs_spectral_radius_estimate(iters);
            assert!(
                (est - rho).abs() < 0.05,
                "iters = {iters}: estimate {est} vs ρ = {rho}"
            );
            assert!(est > 1.0, "iters = {iters} must still flag divergence");
        }
    }

    #[test]
    fn spectral_estimate_handles_longer_cycles() {
        // Directed 3-cycle with wildly unequal weights: |C| entries 9.6,
        // 1.2, 0.15 around the cycle ⇒ ρ = (9.6·1.2·0.15)^(1/3) = 1.2.
        // Per-step ratios cycle with period 3, so any fixed-window
        // geometric mean not a multiple of 3 misestimates badly (down to
        // ~0.42 — below the safeguard limit); the shifted iteration must
        // converge to the true ρ regardless of `iters` mod 3.
        let mut coo = Coo::new(3, 3);
        for (i, wgt) in [(0usize, 9.6f64), (1, 1.2), (2, 0.15)] {
            coo.push(i, i, 1.0);
            coo.push(i, (i + 1) % 3, wgt);
        }
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.0);
        for iters in [30usize, 31, 32] {
            let est = w.abs_spectral_radius_estimate(iters);
            assert!(
                (est - 1.2).abs() < 1e-4,
                "iters = {iters}: estimate {est} vs ρ = 1.2"
            );
            assert!(est > 1.0, "divergent 3-cycle must be flagged");
        }
    }

    #[test]
    fn spectral_estimate_converges_on_aperiodic_structure() {
        // Ring with unequal neighbour weights and a self-damping diagonal
        // contribution through α: the estimate must agree with the exact
        // ρ(|C|) computed densely. For a circulant |C| with entries
        // (0, a, 0, b) per row, ρ = a + b (Perron value at eigenvector 1).
        let mut coo = Coo::new(4, 4);
        for i in 0..4usize {
            coo.push(i, i, 3.0);
            coo.push(i, (i + 1) % 4, -1.0);
            coo.push(i, (i + 3) % 4, -0.5);
        }
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.5);
        // |c| entries: 1/4.5 and 0.5/4.5 ⇒ ρ = 1.5/4.5 = 1/3.
        let est = w.abs_spectral_radius_estimate(64);
        assert!((est - 1.0 / 3.0).abs() < 1e-9, "estimate {est}");
    }

    #[test]
    fn noncontractive_rows_detected() {
        // Off-diagonal heavier than diagonal and α = 0 ⇒ S ≥ 1.
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 3.0);
        coo.push(1, 0, 3.0);
        coo.push(1, 1, 1.0);
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.0);
        assert_eq!(w.noncontractive_fraction(), 1.0);
        // Perturbation cures it: â_ii = 1 + 4·1 = 5, S = 3/5.
        let w4 = WalkMatrix::from_perturbed(&coo.to_csr(), 4.0);
        assert_eq!(w4.noncontractive_fraction(), 0.0);
    }

    #[test]
    fn blowup_guard_fires_on_divergent_walks() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 5.0);
        coo.push(1, 0, 5.0);
        coo.push(1, 1, 1.0);
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.0);
        let mut scratch = vec![0.0; 2];
        let mut touched = Vec::new();
        // δ tiny so truncation never stops the chain before blow-up.
        let stats = w.walk_row(0, 50, 1e-300, 100_000, 1, &mut scratch, &mut touched);
        assert!(stats.blown_up > 0);
    }

    /// Implied selection probability of entry `e` of row `k` under the alias
    /// table: own-slot mass plus donated mass from every slot aliasing to it.
    fn alias_implied_prob(w: &WalkMatrix, k: usize, e: usize) -> f64 {
        const FIX: f64 = 4294967296.0; // 2³², the fixed-point scale
        let (rs, re) = w.row_range(k);
        let m = (re - rs) as f64;
        let mut p = w.alias[rs + e].prob as f64 / FIX;
        for t in 0..(re - rs) {
            if t != e && w.alias[rs + t].alias as usize == e {
                p += 1.0 - w.alias[rs + t].prob as f64 / FIX;
            }
        }
        p / m
    }

    #[test]
    fn alias_table_reconstructs_mao_probabilities() {
        // Property: for every row of several suite matrices, the alias
        // table's implied probabilities equal |c_kj| / S_k up to the 2⁻³²
        // fixed-point quantisation, and each slot carries its own entry's
        // column and sign.
        let mats = [
            mcmcmi_matgen::pdd_real_sparse(64, 7),
            mcmcmi_matgen::fd_laplace_2d(8),
            mcmcmi_matgen::unsteady_adv_diff(8, mcmcmi_matgen::AdvDiffOrder::One),
        ];
        for a in &mats {
            let w = WalkMatrix::from_perturbed(a, 0.5);
            for k in 0..w.dim() {
                let (rs, re) = w.row_range(k);
                let s = w.rowsum(k);
                for e in 0..(re - rs) {
                    let expect = w.vals[rs + e].abs() / s;
                    let got = alias_implied_prob(&w, k, e);
                    assert!(
                        (got - expect).abs() < 1e-8,
                        "row {k} entry {e}: implied {got} vs MAO {expect}"
                    );
                    let slot = w.alias[rs + e];
                    assert_eq!((slot.col_sign & !SIGN_BIT) as usize, w.cols[rs + e]);
                    assert_eq!(slot.col_sign & SIGN_BIT != 0, w.vals[rs + e] < 0.0);
                }
            }
        }
    }

    #[test]
    fn alias_sampler_passes_chi_square_against_mao_distribution() {
        // One heavily skewed 10-entry row; both samplers must match the MAO
        // distribution |c_kj|/S_k. χ²₀.₉₉₉(9 dof) = 27.88.
        let n = 11;
        let mut coo = Coo::new(n, n);
        coo.push(0, 0, 20.0);
        for j in 1..n {
            // Off-diagonal weights 1, 2, …, 10 — far from uniform.
            coo.push(0, j, j as f64);
        }
        for j in 1..n {
            coo.push(j, j, 1.0);
        }
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.0);
        let (rs, re) = w.row_range(0);
        let m = re - rs;
        assert_eq!(m, 10);
        let s = w.rowsum(0);
        let draws = 200_000usize;

        let chi2 = |sampler: &dyn Fn(&WalkMatrix, &mut ChaCha8Rng) -> (usize, f64)| {
            let mut rng = ChaCha8Rng::seed_from_u64(12345);
            let mut counts = vec![0usize; n];
            for _ in 0..draws {
                let (j, mult) = sampler(&w, &mut rng);
                assert!((mult.abs() - s).abs() < 1e-15);
                counts[j] += 1;
            }
            let mut stat = 0.0;
            for e in 0..m {
                let p = w.vals[rs + e].abs() / s;
                let expected = p * draws as f64;
                let d = counts[w.cols[rs + e]] as f64 - expected;
                stat += d * d / expected;
            }
            stat
        };

        let chi2_alias = chi2(&|w, rng| w.sample_transition(0, rng));
        let chi2_invcdf = chi2(&|w, rng| w.sample_transition_invcdf(0, rng));
        assert!(chi2_alias < 27.88, "alias χ² = {chi2_alias}");
        assert!(chi2_invcdf < 27.88, "invcdf χ² = {chi2_invcdf}");
    }

    #[test]
    fn alias_and_invcdf_estimators_agree_statistically() {
        // Same Neumann-series target through both samplers on a branching
        // ring: the estimators must agree within Monte Carlo error even
        // though individual trajectories differ draw-by-draw.
        let nn = 4usize;
        let mut coo = Coo::new(nn, nn);
        for i in 0..nn {
            coo.push(i, i, 3.0);
            coo.push(i, (i + 1) % nn, -1.0);
            coo.push(i, (i + 3) % nn, -0.5);
        }
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.5);
        let chains = 100_000usize;
        let delta = 1e-4f64;

        // Alias path through the production walk loop.
        let mut scratch = vec![0.0; nn];
        let mut touched = Vec::new();
        w.walk_row(0, chains, delta, 10_000, 9, &mut scratch, &mut touched);

        // Inverse-CDF path, replicating walk_row's contribution rule.
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let mut scratch_inv = vec![0.0; nn];
        for _ in 0..chains {
            let mut k = 0usize;
            let mut wgt = 1.0f64;
            scratch_inv[k] += wgt;
            loop {
                let (rs, re) = w.row_range(k);
                if rs == re {
                    break;
                }
                let (j, mult) = w.sample_transition_invcdf(k, &mut rng);
                wgt *= mult;
                k = j;
                if wgt.abs() < delta {
                    break;
                }
                scratch_inv[k] += wgt;
            }
        }
        for j in 0..nn {
            let a = scratch[j] / chains as f64;
            let b = scratch_inv[j] / chains as f64;
            assert!((a - b).abs() < 0.02, "col {j}: alias {a} vs invcdf {b}");
        }
    }

    #[test]
    fn alias_row_width_guard_panics_in_release_too() {
        // Regression for the silent-truncation hazard: the guard used to be
        // a `debug_assert!`, so a release build would pack a > 2³²-entry
        // row into garbage 32-bit slot indices. It must be a hard assert.
        let wide = u32::MAX as usize + 1;
        let caught = std::panic::catch_unwind(|| assert_row_width(wide));
        let err = caught.expect_err("oversized row must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(
            msg.contains("exceeds the u32 slot-index range"),
            "unexpected panic message: {msg}"
        );
        // And the boundary itself is fine.
        assert_row_width(u32::MAX as usize);
    }

    /// The SoA engine must reproduce the scalar engine **bit for bit**:
    /// identical scratch tallies (FP add order included), identical touched
    /// discovery order, identical stats — across branching structure,
    /// absorbing rows, step caps, blow-ups, and chain counts on both sides
    /// of the lane cap (n_chains > MAX_LANES exercises lane regeneration).
    #[test]
    fn soa_engine_bit_identical_to_scalar() {
        let mats = [
            mcmcmi_matgen::pdd_real_sparse(64, 7),
            mcmcmi_matgen::fd_laplace_2d(8),
            mcmcmi_matgen::unsteady_adv_diff(8, mcmcmi_matgen::AdvDiffOrder::One),
        ];
        let mut batch = SoaBatch::new();
        for (mi, a) in mats.iter().enumerate() {
            let w = WalkMatrix::from_perturbed(a, 0.5);
            let n = w.dim();
            // max_len = 3 forces capped retirement through pass 1.
            for (chains, delta, max_len) in [
                (1usize, 1e-6, 10_000usize),
                (37, 1e-4, 10_000),
                (1500, 1e-3, 3),
            ] {
                let seed = 1000 + mi as u64;
                let mut s_ref = vec![0.0; n];
                let mut t_ref = Vec::new();
                let st_ref = w.walk_row(0, chains, delta, max_len, seed, &mut s_ref, &mut t_ref);
                let mut s_soa = vec![0.0; n];
                let mut t_soa = Vec::new();
                let st_soa = w.walk_row_soa(
                    0, chains, delta, max_len, seed, &mut batch, &mut s_soa, &mut t_soa,
                );
                assert_eq!(s_ref, s_soa, "matrix {mi}, chains {chains}: tallies differ");
                assert_eq!(t_ref, t_soa, "matrix {mi}, chains {chains}: touched differ");
                assert_eq!(st_ref.transitions, st_soa.transitions);
                assert_eq!(st_ref.capped, st_soa.capped);
                assert_eq!(st_ref.blown_up, st_soa.blown_up);
            }
        }
    }

    #[test]
    fn soa_engine_matches_scalar_on_blowups() {
        // Divergent splitting: every chain blows up. Stats and tallies must
        // still agree bit-for-bit (blow-up retirement happens in pass 3).
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 5.0);
        coo.push(1, 0, 5.0);
        coo.push(1, 1, 1.0);
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.0);
        let mut s_ref = vec![0.0; 2];
        let mut t_ref = Vec::new();
        let st_ref = w.walk_row(0, 2000, 1e-300, 100_000, 1, &mut s_ref, &mut t_ref);
        assert!(st_ref.blown_up > 0);
        let mut batch = SoaBatch::new();
        let mut s_soa = vec![0.0; 2];
        let mut t_soa = Vec::new();
        let st_soa = w.walk_row_soa(
            0, 2000, 1e-300, 100_000, 1, &mut batch, &mut s_soa, &mut t_soa,
        );
        assert_eq!(s_ref, s_soa);
        assert_eq!(t_ref, t_soa);
        assert_eq!(st_ref.blown_up, st_soa.blown_up);
        assert_eq!(st_ref.transitions, st_soa.transitions);
    }

    #[test]
    fn soa_all_absorbed_batch_makes_progress() {
        // Regression for the lane-masking hazard: when every lane of a
        // batch is absorbed at once (start row has no off-diagonals), the
        // round must still retire all lanes, regenerate pending chains, and
        // terminate — spending the whole chain budget with zero draws.
        let n = 3;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
        }
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.0);
        let chains = 5000; // > MAX_LANES: forces multiple regeneration waves
        let mut batch = SoaBatch::new();
        let mut s_soa = vec![0.0; n];
        let mut t_soa = Vec::new();
        let st_soa = w.walk_row_soa(
            1, chains, 1e-6, 10_000, 5, &mut batch, &mut s_soa, &mut t_soa,
        );
        assert_eq!(st_soa.transitions, 0);
        assert_eq!(st_soa.capped, 0);
        assert_eq!(s_soa[1], chains as f64);
        assert_eq!(t_soa, vec![1]);
        // And it is exactly what the scalar engine produces.
        let mut s_ref = vec![0.0; n];
        let mut t_ref = Vec::new();
        let st_ref = w.walk_row(1, chains, 1e-6, 10_000, 5, &mut s_ref, &mut t_ref);
        assert_eq!(s_ref, s_soa);
        assert_eq!(t_ref, t_soa);
        assert_eq!(st_ref.transitions, st_soa.transitions);
    }

    #[test]
    fn soa_zero_chains_is_a_noop() {
        let w = WalkMatrix::from_perturbed(&two_by_two(), 0.0);
        let mut batch = SoaBatch::new();
        let mut scratch = vec![0.0; 2];
        let mut touched = Vec::new();
        let st = w.walk_row_soa(0, 0, 1e-6, 100, 0, &mut batch, &mut scratch, &mut touched);
        assert_eq!(st.transitions, 0);
        assert_eq!(scratch, vec![0.0; 2]);
        assert!(touched.is_empty());
    }

    #[test]
    fn gathered_lane_sampling_passes_chi_square() {
        // Drive the SoA pass-2/pass-3 mechanics directly — a contiguous
        // block of draws from per-lane chain streams, resolved through the
        // gathered alias lookup — and χ²-test the pooled transition counts
        // against the MAO distribution. Catches any bias introduced by the
        // block-draw/gather restructuring (e.g. reusing a draw across
        // lanes, or misindexing the draw block). χ²₀.₉₉₉(9 dof) = 27.88.
        let n = 11;
        let mut coo = Coo::new(n, n);
        coo.push(0, 0, 20.0);
        for j in 1..n {
            coo.push(0, j, j as f64);
        }
        for j in 1..n {
            coo.push(j, j, 1.0);
        }
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.0);
        let (rs, re) = w.row_range(0);
        let m = re - rs;
        let s = w.rowsum(0);

        let lanes = 512usize;
        let rounds = 400usize;
        let mut rngs: Vec<ChaCha8Rng> = (0..lanes).map(|c| chain_rng(99, 0, c)).collect();
        let mut draws = vec![0u64; lanes];
        let mut counts = vec![0usize; n];
        for _ in 0..rounds {
            // Pass 2: contiguous draw block.
            for (d, rng) in draws.iter_mut().zip(rngs.iter_mut()) {
                *d = rng.next_u64();
            }
            // Pass 3: gathered resolution (every lane samples row 0).
            for &r in &draws {
                let (j, mult) = w.resolve_draw(0, r);
                assert!((mult.abs() - s).abs() < 1e-15);
                counts[j] += 1;
            }
        }
        let total = (lanes * rounds) as f64;
        let mut stat = 0.0;
        for e in 0..m {
            let p = w.vals[rs + e].abs() / s;
            let expected = p * total;
            let d = counts[w.cols[rs + e]] as f64 - expected;
            stat += d * d / expected;
        }
        assert!(stat < 27.88, "gathered-lane χ² = {stat}");
    }

    /// Micro-profile of the SoA passes vs the scalar loop. Ignored: a
    /// perf-tuning aid, not a correctness test — run release-mode with
    /// `cargo test -p mcmcmi_mcmc --release soa_profile -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn soa_profile() {
        use std::time::Instant;
        // Climate-operator-class system: wide rows, far-flung columns.
        let n = 20_000usize;
        let nnz_row = 90usize;
        let mut coo = Coo::new(n, n);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for i in 0..n {
            coo.push(i, i, 200.0);
            for _ in 0..nnz_row {
                let j = (rng.next_u64() % n as u64) as usize;
                if j != i {
                    coo.push(i, j, 1.0 - 2.0 * ((rng.next_u64() & 1) as f64));
                }
            }
        }
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.5);
        let chains = 1138usize;
        let (delta, max_len, seed) = (1e-3, 10_000usize, 42u64);
        let rows: Vec<usize> = (0..200).map(|r| r * 97 % n).collect();
        let mut scratch = vec![0.0; n];
        let mut touched = Vec::new();
        let mut batch = SoaBatch::new();
        for pass in 0..2 {
            let t0 = Instant::now();
            let mut tr = 0usize;
            for &i in &rows {
                tr += w
                    .walk_row(i, chains, delta, max_len, seed, &mut scratch, &mut touched)
                    .transitions;
                for &j in touched.iter() {
                    scratch[j] = 0.0;
                }
                touched.clear();
            }
            let scalar_ns = t0.elapsed().as_nanos() as f64 / tr as f64;
            let t0 = Instant::now();
            let mut tr2 = 0usize;
            for &i in &rows {
                tr2 += w
                    .walk_row_soa(
                        i,
                        chains,
                        delta,
                        max_len,
                        seed,
                        &mut batch,
                        &mut scratch,
                        &mut touched,
                    )
                    .transitions;
                for &j in touched.iter() {
                    scratch[j] = 0.0;
                }
                touched.clear();
            }
            let soa_ns = t0.elapsed().as_nanos() as f64 / tr2 as f64;
            assert_eq!(tr, tr2);
            // Flush replay alone (journals left from the last row).
            let t0 = Instant::now();
            let mut sink = 0u64;
            for log in batch.logs.iter() {
                for &(j, v) in log {
                    sink ^= (j as u64).wrapping_add(v.to_bits());
                }
            }
            let replay_ns = t0.elapsed().as_nanos() as f64;
            println!(
                "pass {pass}: scalar {scalar_ns:.2} ns/t  soa {soa_ns:.2} ns/t  \
                 (journal replay of last row: {replay_ns:.0} ns, sink {sink})"
            );
        }
    }

    #[test]
    fn absorbing_rows_end_walks() {
        // Row 1 has no off-diagonals: every chain entering it is absorbed.
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(0, 1, -1.0);
        coo.push(1, 1, 3.0);
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.0);
        let mut scratch = vec![0.0; 2];
        let mut touched = Vec::new();
        let stats = w.walk_row(0, 1000, 1e-12, 10_000, 3, &mut scratch, &mut touched);
        assert_eq!(stats.capped, 0);
        assert_eq!(stats.blown_up, 0);
        // M = (I−C)⁻¹ with C = [[0, 1/2], [0, 0]] ⇒ row 0 of M = [1, 1/2].
        let m00 = scratch[0] / 1000.0;
        let m01 = scratch[1] / 1000.0;
        assert!((m00 - 1.0).abs() < 1e-12);
        assert!((m01 - 0.5).abs() < 1e-12);
    }
}
