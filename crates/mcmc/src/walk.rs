//! The Ulam–von Neumann random-walk engine.
//!
//! Estimates rows of `M = (I − C)⁻¹ = Σ_k C^k` by running independent Markov
//! chains with MAO (Monte-Carlo-almost-optimal) transition probabilities
//! `p_ij = |c_ij| / Σ_l |c_il|`. Each visited state `k_m` contributes the
//! current weight `W_m` to entry `(i, k_m)`; on transition `k → j` the weight
//! is multiplied by `c_kj / p_kj = sign(c_kj)·S_k`, with `S_k` the row
//! absolute sum. Chains stop when `|W| < δ`, on absorption (`S_k = 0`), or at
//! a hard step cap.

use mcmcmi_sparse::Csr;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The Jacobi-splitting iteration matrix `C = I − D̂⁻¹Â` in walk-ready form:
/// per row, the column indices, signed values, cumulative |value| table for
/// sampling, and the absolute row sum.
#[derive(Clone, Debug)]
pub struct WalkMatrix {
    n: usize,
    indptr: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
    /// Cumulative |vals| within each row, for inverse-CDF sampling.
    cum: Vec<f64>,
    /// Absolute row sums `S_k` (the weight multiplier magnitude).
    rowsum: Vec<f64>,
    /// Inverse of the perturbed diagonal `D̂⁻¹` (for assembling `P = M·D̂⁻¹`).
    inv_diag: Vec<f64>,
}

/// Outcome summary of one row's walks.
#[derive(Clone, Copy, Debug, Default)]
pub struct RowWalkStats {
    /// Total transitions taken.
    pub transitions: usize,
    /// Chains that hit the hard step cap (possible divergence).
    pub capped: usize,
    /// Chains whose weight grew beyond the blow-up guard.
    pub blown_up: usize,
}

impl WalkMatrix {
    /// Build the splitting for `Â = A + α·diag(A)` — the paper's "scale the
    /// added diagonal" perturbation, i.e. `â_ii = (1 + α)·a_ii`, which
    /// amplifies the diagonal *sign-preservingly* (so rows with negative
    /// diagonals are regularised too, and every row's splitting sum shrinks
    /// monotonically: `S_k(α) = S_k(0)/(1 + α)`). `C = I − D̂⁻¹Â`
    /// (so `c_ii = 0`, `c_ij = −â_ij/â_ii`).
    ///
    /// Rows whose diagonal is zero fall back to `â_ii = α·‖row‖₁` so the
    /// perturbation still regularises them; if that is also zero the walk
    /// row is empty (identity fallback).
    pub fn from_perturbed(a: &Csr, alpha: f64) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "WalkMatrix: matrix must be square");
        let n = a.nrows();
        let mut indptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut cum = Vec::new();
        let mut rowsum = Vec::with_capacity(n);
        let mut inv_diag = Vec::with_capacity(n);
        indptr.push(0);
        for i in 0..n {
            let aii = a.get(i, i);
            let dii = if aii != 0.0 {
                (1.0 + alpha) * aii
            } else {
                alpha
                    * a.row_values(i)
                        .iter()
                        .map(|v| v.abs())
                        .sum::<f64>()
                        .max(1.0)
            };
            if dii.abs() < f64::MIN_POSITIVE {
                // Degenerate row: identity action.
                inv_diag.push(1.0);
                rowsum.push(0.0);
                indptr.push(cols.len());
                continue;
            }
            inv_diag.push(1.0 / dii);
            let mut s = 0.0;
            for (&j, &v) in a.row_indices(i).iter().zip(a.row_values(i)) {
                // c_ij = −â_ij / â_ii; off-diagonal entries of Â equal A's.
                if j == i {
                    continue;
                }
                let c = -v / dii;
                if c != 0.0 {
                    cols.push(j);
                    vals.push(c);
                    s += c.abs();
                    cum.push(s);
                }
            }
            rowsum.push(s);
            indptr.push(cols.len());
        }
        Self {
            n,
            indptr,
            cols,
            vals,
            cum,
            rowsum,
            inv_diag,
        }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Absolute row sum `S_k` (‖row k of C‖₁). Values ≥ 1 signal a
    /// non-contractive row: walks through it can diverge.
    pub fn rowsum(&self, k: usize) -> f64 {
        self.rowsum[k]
    }

    /// Fraction of rows with `S_k ≥ 1` — a cheap divergence predictor.
    pub fn noncontractive_fraction(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.rowsum.iter().filter(|&&s| s >= 1.0).count() as f64 / self.n as f64
    }

    /// Inverse perturbed diagonal.
    pub fn inv_diag(&self) -> &[f64] {
        &self.inv_diag
    }

    /// Entry range of row `k` in the flat arrays (empty ⇒ absorbing row).
    /// Exposed for the regenerative variant's custom walk loop.
    #[inline]
    pub fn row_range(&self, k: usize) -> (usize, usize) {
        (self.indptr[k], self.indptr[k + 1])
    }

    /// Sample one transition from a non-absorbing row `k`; returns
    /// `(next_state, signed weight multiplier)`.
    ///
    /// # Panics
    /// Panics (in debug builds) if the row is absorbing — check
    /// [`WalkMatrix::row_range`] first.
    #[inline]
    pub fn sample_transition<R: Rng>(&self, k: usize, rng: &mut R) -> (usize, f64) {
        self.step(k, rng).expect("sample_transition: absorbing row")
    }

    /// Sample the next state from row `k`; returns `(next_state, signed
    /// weight multiplier)` or `None` on absorption.
    #[inline]
    fn step<R: Rng>(&self, k: usize, rng: &mut R) -> Option<(usize, f64)> {
        let (rs, re) = (self.indptr[k], self.indptr[k + 1]);
        if rs == re {
            return None;
        }
        let s = self.rowsum[k];
        let u: f64 = rng.gen::<f64>() * s;
        // Inverse-CDF lookup via binary search on the cumulative table.
        let row_cum = &self.cum[rs..re];
        let idx = match row_cum.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => (i + 1).min(row_cum.len() - 1),
            Err(i) => i.min(row_cum.len() - 1),
        };
        let j = self.cols[rs + idx];
        let mult = self.vals[rs + idx].signum() * s;
        Some((j, mult))
    }

    /// Run `n_chains` walks from row `i`, accumulating weight tallies into
    /// `scratch` (dense, length n, zeroed on entry; `touched` records the
    /// indices written so the caller can harvest sparsely). `delta` is the
    /// truncation error; `max_len` the hard step cap.
    ///
    /// Returns per-row statistics. The scratch tallies are *sums*; divide by
    /// `n_chains` to get the estimator.
    pub fn walk_row(
        &self,
        i: usize,
        n_chains: usize,
        delta: f64,
        max_len: usize,
        seed: u64,
        scratch: &mut [f64],
        touched: &mut Vec<usize>,
    ) -> RowWalkStats {
        debug_assert_eq!(scratch.len(), self.n);
        let mut stats = RowWalkStats::default();
        // Per-row deterministic stream: independent of scheduling.
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1)));
        const BLOWUP: f64 = 1e12;
        for _ in 0..n_chains {
            let mut k = i;
            let mut w = 1.0f64;
            // Step 0 contribution.
            if scratch[k] == 0.0 {
                touched.push(k);
            }
            scratch[k] += w;
            let mut steps = 0usize;
            loop {
                if steps >= max_len {
                    stats.capped += 1;
                    break;
                }
                match self.step(k, &mut rng) {
                    None => break, // absorbed
                    Some((j, mult)) => {
                        w *= mult;
                        k = j;
                        steps += 1;
                        stats.transitions += 1;
                        if w.abs() < delta {
                            break;
                        }
                        if w.abs() > BLOWUP || !w.is_finite() {
                            stats.blown_up += 1;
                            break;
                        }
                        if scratch[k] == 0.0 {
                            touched.push(k);
                        }
                        scratch[k] += w;
                    }
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmcmi_sparse::Coo;

    fn two_by_two() -> Csr {
        // A = [[2, -1], [-1, 2]]; with α = 0: C = [[0, 1/2], [1/2, 0]],
        // (I−C)⁻¹ = (4/3)·[[1, 1/2],[1/2, 1]].
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(0, 1, -1.0);
        coo.push(1, 0, -1.0);
        coo.push(1, 1, 2.0);
        coo.to_csr()
    }

    #[test]
    fn splitting_values_are_correct() {
        let w = WalkMatrix::from_perturbed(&two_by_two(), 0.0);
        assert_eq!(w.dim(), 2);
        assert!((w.rowsum(0) - 0.5).abs() < 1e-15);
        assert!((w.rowsum(1) - 0.5).abs() < 1e-15);
        assert!((w.inv_diag()[0] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn perturbation_shrinks_rowsums() {
        let w0 = WalkMatrix::from_perturbed(&two_by_two(), 0.0);
        let w2 = WalkMatrix::from_perturbed(&two_by_two(), 2.0);
        // α = 2: â_ii = 2 + 2·2 = 6 ⇒ |c_ij| = 1/6.
        assert!(w2.rowsum(0) < w0.rowsum(0));
        assert!((w2.rowsum(0) - 1.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn walks_estimate_neumann_sum() {
        // Monte Carlo estimate of (I−C)⁻¹ row 0 = (4/3)·[1, 1/2].
        let w = WalkMatrix::from_perturbed(&two_by_two(), 0.0);
        let mut scratch = vec![0.0; 2];
        let mut touched = Vec::new();
        let chains = 200_000;
        let stats = w.walk_row(0, chains, 1e-6, 10_000, 42, &mut scratch, &mut touched);
        assert_eq!(stats.blown_up, 0);
        let m00 = scratch[0] / chains as f64;
        let m01 = scratch[1] / chains as f64;
        assert!((m00 - 4.0 / 3.0).abs() < 0.01, "m00 = {m00}");
        assert!((m01 - 2.0 / 3.0).abs() < 0.01, "m01 = {m01}");
    }

    #[test]
    fn determinism_per_seed() {
        // A ring with two neighbours per row so transitions actually branch
        // (a 2×2 system has deterministic walks regardless of seed).
        let mut coo = Coo::new(4, 4);
        for i in 0..4usize {
            coo.push(i, i, 3.0);
            coo.push(i, (i + 1) % 4, -1.0);
            coo.push(i, (i + 3) % 4, -0.5);
        }
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.5);
        let run = |seed| {
            let mut scratch = vec![0.0; 4];
            let mut touched = Vec::new();
            w.walk_row(0, 100, 1e-4, 100, seed, &mut scratch, &mut touched);
            scratch
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn noncontractive_rows_detected() {
        // Off-diagonal heavier than diagonal and α = 0 ⇒ S ≥ 1.
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 3.0);
        coo.push(1, 0, 3.0);
        coo.push(1, 1, 1.0);
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.0);
        assert_eq!(w.noncontractive_fraction(), 1.0);
        // Perturbation cures it: â_ii = 1 + 4·1 = 5, S = 3/5.
        let w4 = WalkMatrix::from_perturbed(&coo.to_csr(), 4.0);
        assert_eq!(w4.noncontractive_fraction(), 0.0);
    }

    #[test]
    fn blowup_guard_fires_on_divergent_walks() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 5.0);
        coo.push(1, 0, 5.0);
        coo.push(1, 1, 1.0);
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.0);
        let mut scratch = vec![0.0; 2];
        let mut touched = Vec::new();
        // δ tiny so truncation never stops the chain before blow-up.
        let stats = w.walk_row(0, 50, 1e-300, 100_000, 1, &mut scratch, &mut touched);
        assert!(stats.blown_up > 0);
    }

    #[test]
    fn absorbing_rows_end_walks() {
        // Row 1 has no off-diagonals: every chain entering it is absorbed.
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(0, 1, -1.0);
        coo.push(1, 1, 3.0);
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.0);
        let mut scratch = vec![0.0; 2];
        let mut touched = Vec::new();
        let stats = w.walk_row(0, 1000, 1e-12, 10_000, 3, &mut scratch, &mut touched);
        assert_eq!(stats.capped, 0);
        assert_eq!(stats.blown_up, 0);
        // M = (I−C)⁻¹ with C = [[0, 1/2], [0, 0]] ⇒ row 0 of M = [1, 1/2].
        let m00 = scratch[0] / 1000.0;
        let m01 = scratch[1] / 1000.0;
        assert!((m00 - 1.0).abs() < 1e-12);
        assert!((m01 - 0.5).abs() < 1e-12);
    }
}
