//! The Ulam–von Neumann random-walk engine.
//!
//! Estimates rows of `M = (I − C)⁻¹ = Σ_k C^k` by running independent Markov
//! chains with MAO (Monte-Carlo-almost-optimal) transition probabilities
//! `p_ij = |c_ij| / Σ_l |c_il|`. Each visited state `k_m` contributes the
//! current weight `W_m` to entry `(i, k_m)`; on transition `k → j` the weight
//! is multiplied by `c_kj / p_kj = sign(c_kj)·S_k`, with `S_k` the row
//! absolute sum. Chains stop when `|W| < δ`, on absorption (`S_k = 0`), or at
//! a hard step cap.
//!
//! # Transition sampling: Walker/Vose alias tables
//!
//! Every transition draws from the *fixed* discrete distribution of its
//! current row, so the classic repeated-sampling optimisation applies:
//! [`WalkMatrix::from_perturbed`] precomputes a Walker/Vose **alias table**
//! per row (O(nnz) once), and [`WalkMatrix::sample_transition`] then costs
//! O(1) — a single 64-bit draw is split into a slot index (high bits,
//! multiply-shift) and a 32-bit fixed-point coin flip (low bits) against
//! the slot's cutoff, replacing the O(log nnz_row) binary search of
//! inverse-CDF sampling. Slots are packed to 12 bytes (cutoff, donor,
//! column+sign) so a transition resolves in one or two cache-line touches
//! with no floating-point arithmetic. The inverse-CDF path is retained as
//! [`WalkMatrix::sample_transition_invcdf`] purely as a reference/baseline
//! for benchmarks and distribution-equivalence tests.
//!
//! Alias construction (Vose's stable variant): scale the row's MAO
//! probabilities by the row length `m` so they average 1, split the entries
//! into a "small" (< 1) and "large" (≥ 1) worklist, and repeatedly pair one
//! small entry with one large donor — the small entry's slot keeps its own
//! probability as the cutoff and records the donor as its alias; the donor's
//! residual mass is pushed back onto the appropriate worklist. Leftovers get
//! cutoff 1 (no alias ever taken). Construction is branch-deterministic:
//! worklists are filled in ascending index order, so the table — and hence
//! every sampled stream — is identical on every run.
//!
//! # Determinism contract
//!
//! Sampling consumes exactly **one** 64-bit word from the per-row ChaCha
//! stream per transition, and the stream is keyed by `(seed, row)` only. The
//! result of a build is therefore bit-identical for any thread count or
//! scheduling order (`RAYON_NUM_THREADS=1` vs `=8` produce equal
//! preconditioners; see `tests/determinism.rs`). Note the alias and
//! inverse-CDF samplers realise the *same distribution* but map uniform
//! draws to states differently, so swapping samplers changes individual
//! walk trajectories while leaving all estimator statistics intact.

use mcmcmi_sparse::Csr;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The Jacobi-splitting iteration matrix `C = I − D̂⁻¹Â` in walk-ready form:
/// per row, the column indices, signed values, a Walker/Vose alias table for
/// O(1) sampling (plus the cumulative |value| table for the reference
/// inverse-CDF path), and the absolute row sum.
#[derive(Clone, Debug)]
pub struct WalkMatrix {
    n: usize,
    indptr: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
    /// Cumulative |vals| within each row — reference inverse-CDF sampler
    /// only (benchmark baseline and distribution cross-checks).
    cum: Vec<f64>,
    /// Packed alias table, one slot per entry (aligned with `cols`).
    alias: Vec<AliasSlot>,
    /// Absolute row sums `S_k` (the weight multiplier magnitude).
    rowsum: Vec<f64>,
    /// Inverse of the perturbed diagonal `D̂⁻¹` (for assembling `P = M·D̂⁻¹`).
    inv_diag: Vec<f64>,
}

/// Sign flag packed into [`AliasSlot::col_sign`] bit 31.
const SIGN_BIT: u32 = 1 << 31;

/// One alias-table slot, packed to 12 bytes so a transition touches one
/// (sometimes two) cache lines and needs **zero floating-point ops** to
/// resolve: the coin flip is a `u32` compare against the fixed-point
/// cutoff, and the signed weight multiplier is reconstructed as
/// `±rowsum[k]` from the sign bit folded into the column word.
#[derive(Clone, Copy, Debug)]
struct AliasSlot {
    /// In-slot acceptance cutoff, fixed point in 2⁻³² units. Saturated
    /// slots store `u32::MAX` and alias to themselves, so the 2⁻³²
    /// acceptance shortfall still selects the same entry.
    prob: u32,
    /// Donor slot within the row, selected when the coin flip fails.
    alias: u32,
    /// Column (next state) in bits 0..31; sign of the entry in bit 31.
    col_sign: u32,
}

/// Append the Walker/Vose alias table of one row (`cols`/`vals` are the
/// row's entries, `s > 0` their absolute sum) to the flat slot array.
/// Vose runs in f64 and the final cutoffs are quantised to 32-bit fixed
/// point (≈2⁻³³ rounding per slot — orders of magnitude below any Monte
/// Carlo error this engine can reach). Worklists are filled in ascending
/// index order so construction is fully deterministic.
fn push_row_alias(cols: &[usize], vals: &[f64], s: f64, slots: &mut Vec<AliasSlot>) {
    let m = cols.len();
    debug_assert!(m > 0 && s > 0.0);
    debug_assert!(m <= u32::MAX as usize, "row too wide for u32 alias slots");
    let scale = m as f64 / s;
    let mut prob: Vec<f64> = vals.iter().map(|v| v.abs() * scale).collect();
    let mut alias: Vec<u32> = (0..m as u32).collect();
    let mut small: Vec<u32> = Vec::new();
    let mut large: Vec<u32> = Vec::new();
    for (i, &p) in prob.iter().enumerate() {
        if p < 1.0 {
            small.push(i as u32);
        } else {
            large.push(i as u32);
        }
    }
    while let (Some(l), Some(&g)) = (small.pop(), large.last()) {
        alias[l as usize] = g;
        // Donor g covers slot l's deficit; fold the transfer into g's mass.
        let residual = (prob[g as usize] + prob[l as usize]) - 1.0;
        prob[g as usize] = residual;
        if residual < 1.0 {
            large.pop();
            small.push(g);
        }
    }
    // Leftovers (numerically ≈ 1): saturate so the alias is never taken.
    for &g in large.iter().chain(small.iter()) {
        prob[g as usize] = 1.0;
    }
    slots.extend((0..m).map(|i| AliasSlot {
        prob: (prob[i] * 4294967296.0).round().min(u32::MAX as f64) as u32,
        alias: alias[i],
        col_sign: cols[i] as u32 | if vals[i] < 0.0 { SIGN_BIT } else { 0 },
    }));
}

/// Outcome summary of one row's walks.
#[derive(Clone, Copy, Debug, Default)]
pub struct RowWalkStats {
    /// Total transitions taken.
    pub transitions: usize,
    /// Chains that hit the hard step cap (possible divergence).
    pub capped: usize,
    /// Chains whose weight grew beyond the blow-up guard.
    pub blown_up: usize,
}

impl WalkMatrix {
    /// Build the splitting for `Â = A + α·diag(A)` — the paper's "scale the
    /// added diagonal" perturbation, i.e. `â_ii = (1 + α)·a_ii`, which
    /// amplifies the diagonal *sign-preservingly* (so rows with negative
    /// diagonals are regularised too, and every row's splitting sum shrinks
    /// monotonically: `S_k(α) = S_k(0)/(1 + α)`). `C = I − D̂⁻¹Â`
    /// (so `c_ii = 0`, `c_ij = −â_ij/â_ii`).
    ///
    /// Rows whose diagonal is zero fall back to `â_ii = α·‖row‖₁` so the
    /// perturbation still regularises them; if that is also zero the walk
    /// row is empty (identity fallback).
    pub fn from_perturbed(a: &Csr, alpha: f64) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "WalkMatrix: matrix must be square");
        let n = a.nrows();
        let mut indptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        assert!(
            n < SIGN_BIT as usize,
            "WalkMatrix: dimension exceeds 2^31 − 1 (alias slots pack the \
             column and sign into one u32)"
        );
        let mut cum = Vec::new();
        let mut alias = Vec::new();
        let mut rowsum = Vec::with_capacity(n);
        let mut inv_diag = Vec::with_capacity(n);
        indptr.push(0);
        for i in 0..n {
            let aii = a.get(i, i);
            let dii = if aii != 0.0 {
                (1.0 + alpha) * aii
            } else {
                alpha
                    * a.row_values(i)
                        .iter()
                        .map(|v| v.abs())
                        .sum::<f64>()
                        .max(1.0)
            };
            if dii.abs() < f64::MIN_POSITIVE {
                // Degenerate row: identity action.
                inv_diag.push(1.0);
                rowsum.push(0.0);
                indptr.push(cols.len());
                continue;
            }
            inv_diag.push(1.0 / dii);
            let mut s = 0.0;
            let row_start = cols.len();
            for (&j, &v) in a.row_indices(i).iter().zip(a.row_values(i)) {
                // c_ij = −â_ij / â_ii; off-diagonal entries of Â equal A's.
                if j == i {
                    continue;
                }
                let c = -v / dii;
                if c != 0.0 {
                    cols.push(j);
                    vals.push(c);
                    s += c.abs();
                    cum.push(s);
                }
            }
            if cols.len() > row_start {
                push_row_alias(&cols[row_start..], &vals[row_start..], s, &mut alias);
            }
            rowsum.push(s);
            indptr.push(cols.len());
        }
        debug_assert_eq!(alias.len(), cols.len());
        Self {
            n,
            indptr,
            cols,
            vals,
            cum,
            alias,
            rowsum,
            inv_diag,
        }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Absolute row sum `S_k` (‖row k of C‖₁). Values ≥ 1 signal a
    /// non-contractive row: walks through it can diverge.
    pub fn rowsum(&self, k: usize) -> f64 {
        self.rowsum[k]
    }

    /// Fraction of rows with `S_k ≥ 1` — a cheap divergence predictor.
    pub fn noncontractive_fraction(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.rowsum.iter().filter(|&&s| s >= 1.0).count() as f64 / self.n as f64
    }

    /// Inverse perturbed diagonal.
    pub fn inv_diag(&self) -> &[f64] {
        &self.inv_diag
    }

    /// Deterministic power-iteration estimate of `ρ(|C|)`, the spectral
    /// radius of the entrywise-absolute iteration matrix — the quantity
    /// that actually governs walk-weight growth: the expected absolute
    /// weight mass after `k` steps is `‖|C|ᵏx‖`, so `ρ(|C|) < 1` means
    /// chains contract in expectation and the Neumann estimator's mass is
    /// summable, while `ρ(|C|) > 1` means weights blow up no matter how
    /// many chains are run. This is sharper than the ∞-norm bound
    /// `max_k S_k` (a matrix can have non-contractive rows yet still
    /// satisfy `ρ(|C|) < 1`) and far cheaper than running pilot walks:
    /// `iters` sweeps over the nnz of `C`, no RNG, no allocation beyond
    /// two dense vectors.
    ///
    /// The iteration actually runs on the **shifted** matrix
    /// `|C| + σI` (σ = ½) and subtracts σ from the final ratio. The shift
    /// is what makes the estimate trustworthy: Jacobi iteration matrices
    /// have zero diagonal, so `|C|` is frequently *imprimitive*
    /// (bipartite grids, directed cyclic coupling), and a plain power
    /// iteration's per-step ratio then oscillates around ρ forever —
    /// period 2 flips between `ρ·c` and `ρ/c`, longer cycles are worse —
    /// which can pass a divergent splitting or reject a contractive one.
    /// Adding σI leaves the eigenvectors untouched and shifts every
    /// eigenvalue by exactly σ (so `ρ(|C|+σI) = ρ(|C|) + σ` for a
    /// nonnegative matrix), but makes the matrix primitive whenever
    /// `|C|` is irreducible: the peripheral eigenvalues `ρ·ω` (ω a root
    /// of unity) land at `|ρω + σ| < ρ + σ`, so the ratio converges
    /// geometrically for *any* cycle period.
    ///
    /// Starts from the all-ones vector (∞-norm 1, so the very first
    /// ratio is `max_k S_k + σ` — the honest ∞-norm upper bound).
    /// `iters` below 8 is clamped: the shifted ratio needs a few sweeps
    /// to damp the oscillatory transient, and 8 extra nnz-sweeps are
    /// noise next to any build, so a degenerate `probe_iters` can never
    /// silently disable the guard. Zero rows and reducible structure are
    /// handled naturally — an all-absorbing matrix reports 0.
    pub fn abs_spectral_radius_estimate(&self, iters: usize) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        const SHIFT: f64 = 0.5;
        let mut x = vec![1.0; self.n];
        let mut y = vec![0.0; self.n];
        let mut lam = SHIFT;
        for _ in 0..iters.max(8) {
            for i in 0..self.n {
                let (rs, re) = (self.indptr[i], self.indptr[i + 1]);
                let mut s = SHIFT * x[i];
                for e in rs..re {
                    s += self.vals[e].abs() * x[self.cols[e]];
                }
                y[i] = s;
            }
            let norm = y.iter().fold(0.0f64, |m, &v| m.max(v));
            if !norm.is_finite() {
                return norm;
            }
            lam = norm;
            let inv = 1.0 / norm;
            for (xi, &yi) in x.iter_mut().zip(&y) {
                *xi = yi * inv;
            }
        }
        // The shifted iteration's ratio converges to ρ(|C|) + σ.
        (lam - SHIFT).max(0.0)
    }

    /// Entry range of row `k` in the flat arrays (empty ⇒ absorbing row).
    /// Exposed for the regenerative variant's custom walk loop.
    #[inline]
    pub fn row_range(&self, k: usize) -> (usize, usize) {
        (self.indptr[k], self.indptr[k + 1])
    }

    /// Sample one transition from a non-absorbing row `k` with the O(1)
    /// alias method; returns `(next_state, signed weight multiplier)`.
    ///
    /// # Panics
    /// Panics (in debug builds) if the row is absorbing — check
    /// [`WalkMatrix::row_range`] first.
    #[inline]
    pub fn sample_transition<R: Rng>(&self, k: usize, rng: &mut R) -> (usize, f64) {
        self.step(k, rng).expect("sample_transition: absorbing row")
    }

    /// Reference O(log nnz_row) sampler: inverse-CDF binary search on the
    /// cumulative table. Same distribution as [`WalkMatrix::sample_transition`]
    /// (and the same single uniform draw), different draw→state mapping.
    /// Kept as the benchmark baseline — the production walk loop uses the
    /// alias path.
    ///
    /// # Panics
    /// Panics (in debug builds) if the row is absorbing.
    #[inline]
    pub fn sample_transition_invcdf<R: Rng>(&self, k: usize, rng: &mut R) -> (usize, f64) {
        self.step_invcdf(k, rng)
            .expect("sample_transition_invcdf: absorbing row")
    }

    /// Sample the next state from row `k` via the alias table; returns
    /// `(next_state, signed weight multiplier)` or `None` on absorption.
    /// One `u64` draw, split into disjoint bit ranges: the high 32 bits
    /// pick the slot by multiply-shift, the low 32 bits are the
    /// fixed-point coin flip against the slot's cutoff — no float ops
    /// until the multiplier is produced.
    #[inline]
    fn step<R: Rng>(&self, k: usize, rng: &mut R) -> Option<(usize, f64)> {
        let (rs, re) = (self.indptr[k], self.indptr[k + 1]);
        if rs == re {
            return None;
        }
        let m = (re - rs) as u64;
        let r = rng.next_u64();
        let idx = (((r >> 32) * m) >> 32) as usize;
        let coin = r as u32;
        let slot = self.alias[rs + idx];
        let chosen = if coin < slot.prob {
            slot
        } else {
            self.alias[rs + slot.alias as usize]
        };
        let s = self.rowsum[k];
        let mult = if chosen.col_sign & SIGN_BIT == 0 {
            s
        } else {
            -s
        };
        Some(((chosen.col_sign & !SIGN_BIT) as usize, mult))
    }

    /// Inverse-CDF sampling (binary search on the cumulative table).
    #[inline]
    fn step_invcdf<R: Rng>(&self, k: usize, rng: &mut R) -> Option<(usize, f64)> {
        let (rs, re) = (self.indptr[k], self.indptr[k + 1]);
        if rs == re {
            return None;
        }
        let s = self.rowsum[k];
        let u: f64 = rng.gen::<f64>() * s;
        let row_cum = &self.cum[rs..re];
        let idx = match row_cum.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => (i + 1).min(row_cum.len() - 1),
            Err(i) => i.min(row_cum.len() - 1),
        };
        let j = self.cols[rs + idx];
        let mult = self.vals[rs + idx].signum() * s;
        Some((j, mult))
    }

    /// Run `n_chains` walks from row `i`, accumulating weight tallies into
    /// `scratch` (dense, length n, zeroed on entry; `touched` records the
    /// indices written so the caller can harvest sparsely). `delta` is the
    /// truncation error; `max_len` the hard step cap.
    ///
    /// Returns per-row statistics. The scratch tallies are *sums*; divide by
    /// `n_chains` to get the estimator.
    pub fn walk_row(
        &self,
        i: usize,
        n_chains: usize,
        delta: f64,
        max_len: usize,
        seed: u64,
        scratch: &mut [f64],
        touched: &mut Vec<usize>,
    ) -> RowWalkStats {
        debug_assert_eq!(scratch.len(), self.n);
        let mut stats = RowWalkStats::default();
        // Per-row deterministic stream: independent of scheduling.
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1)));
        const BLOWUP: f64 = 1e12;
        for _ in 0..n_chains {
            let mut k = i;
            let mut w = 1.0f64;
            // Step 0 contribution.
            if scratch[k] == 0.0 {
                touched.push(k);
            }
            scratch[k] += w;
            let mut steps = 0usize;
            loop {
                if steps >= max_len {
                    stats.capped += 1;
                    break;
                }
                match self.step(k, &mut rng) {
                    None => break, // absorbed
                    Some((j, mult)) => {
                        w *= mult;
                        k = j;
                        steps += 1;
                        stats.transitions += 1;
                        if w.abs() < delta {
                            break;
                        }
                        if w.abs() > BLOWUP || !w.is_finite() {
                            stats.blown_up += 1;
                            break;
                        }
                        if scratch[k] == 0.0 {
                            touched.push(k);
                        }
                        scratch[k] += w;
                    }
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmcmi_sparse::Coo;

    fn two_by_two() -> Csr {
        // A = [[2, -1], [-1, 2]]; with α = 0: C = [[0, 1/2], [1/2, 0]],
        // (I−C)⁻¹ = (4/3)·[[1, 1/2],[1/2, 1]].
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(0, 1, -1.0);
        coo.push(1, 0, -1.0);
        coo.push(1, 1, 2.0);
        coo.to_csr()
    }

    #[test]
    fn splitting_values_are_correct() {
        let w = WalkMatrix::from_perturbed(&two_by_two(), 0.0);
        assert_eq!(w.dim(), 2);
        assert!((w.rowsum(0) - 0.5).abs() < 1e-15);
        assert!((w.rowsum(1) - 0.5).abs() < 1e-15);
        assert!((w.inv_diag()[0] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn perturbation_shrinks_rowsums() {
        let w0 = WalkMatrix::from_perturbed(&two_by_two(), 0.0);
        let w2 = WalkMatrix::from_perturbed(&two_by_two(), 2.0);
        // α = 2: â_ii = 2 + 2·2 = 6 ⇒ |c_ij| = 1/6.
        assert!(w2.rowsum(0) < w0.rowsum(0));
        assert!((w2.rowsum(0) - 1.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn walks_estimate_neumann_sum() {
        // Monte Carlo estimate of (I−C)⁻¹ row 0 = (4/3)·[1, 1/2].
        let w = WalkMatrix::from_perturbed(&two_by_two(), 0.0);
        let mut scratch = vec![0.0; 2];
        let mut touched = Vec::new();
        let chains = 200_000;
        let stats = w.walk_row(0, chains, 1e-6, 10_000, 42, &mut scratch, &mut touched);
        assert_eq!(stats.blown_up, 0);
        let m00 = scratch[0] / chains as f64;
        let m01 = scratch[1] / chains as f64;
        assert!((m00 - 4.0 / 3.0).abs() < 0.01, "m00 = {m00}");
        assert!((m01 - 2.0 / 3.0).abs() < 0.01, "m01 = {m01}");
    }

    #[test]
    fn determinism_per_seed() {
        // A ring with two neighbours per row so transitions actually branch
        // (a 2×2 system has deterministic walks regardless of seed).
        let mut coo = Coo::new(4, 4);
        for i in 0..4usize {
            coo.push(i, i, 3.0);
            coo.push(i, (i + 1) % 4, -1.0);
            coo.push(i, (i + 3) % 4, -0.5);
        }
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.5);
        let run = |seed| {
            let mut scratch = vec![0.0; 4];
            let mut touched = Vec::new();
            w.walk_row(0, 100, 1e-4, 100, seed, &mut scratch, &mut touched);
            scratch
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn spectral_estimate_handles_imprimitive_structure() {
        // |C| = [[0, 4], [0.5, 0]] is period-2 (cyclic), so the raw
        // per-step ∞-norm ratio oscillates between 0.5 and 4 forever; the
        // true ρ(|C|) = √2. The geometric-mean estimator must report ≈√2
        // at any iteration count — including counts of both parities and
        // the degenerate 0/1 (clamped to 2).
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, -4.0);
        coo.push(1, 0, -0.5);
        coo.push(1, 1, 1.0);
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.0);
        let rho = 2.0f64.sqrt();
        for iters in [31usize, 32, 33] {
            let est = w.abs_spectral_radius_estimate(iters);
            assert!(
                (est - rho).abs() < 1e-9,
                "iters = {iters}: estimate {est} vs ρ = {rho}"
            );
        }
        // Degenerate iteration counts are clamped past the oscillatory
        // transient: even iters = 0 must flag this divergent splitting
        // (the old last-ratio estimator reported 0.5 here and let a
        // divergent build through).
        for iters in [0usize, 1, 2, 8] {
            let est = w.abs_spectral_radius_estimate(iters);
            assert!(
                (est - rho).abs() < 0.05,
                "iters = {iters}: estimate {est} vs ρ = {rho}"
            );
            assert!(est > 1.0, "iters = {iters} must still flag divergence");
        }
    }

    #[test]
    fn spectral_estimate_handles_longer_cycles() {
        // Directed 3-cycle with wildly unequal weights: |C| entries 9.6,
        // 1.2, 0.15 around the cycle ⇒ ρ = (9.6·1.2·0.15)^(1/3) = 1.2.
        // Per-step ratios cycle with period 3, so any fixed-window
        // geometric mean not a multiple of 3 misestimates badly (down to
        // ~0.42 — below the safeguard limit); the shifted iteration must
        // converge to the true ρ regardless of `iters` mod 3.
        let mut coo = Coo::new(3, 3);
        for (i, wgt) in [(0usize, 9.6f64), (1, 1.2), (2, 0.15)] {
            coo.push(i, i, 1.0);
            coo.push(i, (i + 1) % 3, wgt);
        }
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.0);
        for iters in [30usize, 31, 32] {
            let est = w.abs_spectral_radius_estimate(iters);
            assert!(
                (est - 1.2).abs() < 1e-4,
                "iters = {iters}: estimate {est} vs ρ = 1.2"
            );
            assert!(est > 1.0, "divergent 3-cycle must be flagged");
        }
    }

    #[test]
    fn spectral_estimate_converges_on_aperiodic_structure() {
        // Ring with unequal neighbour weights and a self-damping diagonal
        // contribution through α: the estimate must agree with the exact
        // ρ(|C|) computed densely. For a circulant |C| with entries
        // (0, a, 0, b) per row, ρ = a + b (Perron value at eigenvector 1).
        let mut coo = Coo::new(4, 4);
        for i in 0..4usize {
            coo.push(i, i, 3.0);
            coo.push(i, (i + 1) % 4, -1.0);
            coo.push(i, (i + 3) % 4, -0.5);
        }
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.5);
        // |c| entries: 1/4.5 and 0.5/4.5 ⇒ ρ = 1.5/4.5 = 1/3.
        let est = w.abs_spectral_radius_estimate(64);
        assert!((est - 1.0 / 3.0).abs() < 1e-9, "estimate {est}");
    }

    #[test]
    fn noncontractive_rows_detected() {
        // Off-diagonal heavier than diagonal and α = 0 ⇒ S ≥ 1.
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 3.0);
        coo.push(1, 0, 3.0);
        coo.push(1, 1, 1.0);
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.0);
        assert_eq!(w.noncontractive_fraction(), 1.0);
        // Perturbation cures it: â_ii = 1 + 4·1 = 5, S = 3/5.
        let w4 = WalkMatrix::from_perturbed(&coo.to_csr(), 4.0);
        assert_eq!(w4.noncontractive_fraction(), 0.0);
    }

    #[test]
    fn blowup_guard_fires_on_divergent_walks() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 5.0);
        coo.push(1, 0, 5.0);
        coo.push(1, 1, 1.0);
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.0);
        let mut scratch = vec![0.0; 2];
        let mut touched = Vec::new();
        // δ tiny so truncation never stops the chain before blow-up.
        let stats = w.walk_row(0, 50, 1e-300, 100_000, 1, &mut scratch, &mut touched);
        assert!(stats.blown_up > 0);
    }

    /// Implied selection probability of entry `e` of row `k` under the alias
    /// table: own-slot mass plus donated mass from every slot aliasing to it.
    fn alias_implied_prob(w: &WalkMatrix, k: usize, e: usize) -> f64 {
        const FIX: f64 = 4294967296.0; // 2³², the fixed-point scale
        let (rs, re) = w.row_range(k);
        let m = (re - rs) as f64;
        let mut p = w.alias[rs + e].prob as f64 / FIX;
        for t in 0..(re - rs) {
            if t != e && w.alias[rs + t].alias as usize == e {
                p += 1.0 - w.alias[rs + t].prob as f64 / FIX;
            }
        }
        p / m
    }

    #[test]
    fn alias_table_reconstructs_mao_probabilities() {
        // Property: for every row of several suite matrices, the alias
        // table's implied probabilities equal |c_kj| / S_k up to the 2⁻³²
        // fixed-point quantisation, and each slot carries its own entry's
        // column and sign.
        let mats = [
            mcmcmi_matgen::pdd_real_sparse(64, 7),
            mcmcmi_matgen::fd_laplace_2d(8),
            mcmcmi_matgen::unsteady_adv_diff(8, mcmcmi_matgen::AdvDiffOrder::One),
        ];
        for a in &mats {
            let w = WalkMatrix::from_perturbed(a, 0.5);
            for k in 0..w.dim() {
                let (rs, re) = w.row_range(k);
                let s = w.rowsum(k);
                for e in 0..(re - rs) {
                    let expect = w.vals[rs + e].abs() / s;
                    let got = alias_implied_prob(&w, k, e);
                    assert!(
                        (got - expect).abs() < 1e-8,
                        "row {k} entry {e}: implied {got} vs MAO {expect}"
                    );
                    let slot = w.alias[rs + e];
                    assert_eq!((slot.col_sign & !SIGN_BIT) as usize, w.cols[rs + e]);
                    assert_eq!(slot.col_sign & SIGN_BIT != 0, w.vals[rs + e] < 0.0);
                }
            }
        }
    }

    #[test]
    fn alias_sampler_passes_chi_square_against_mao_distribution() {
        // One heavily skewed 10-entry row; both samplers must match the MAO
        // distribution |c_kj|/S_k. χ²₀.₉₉₉(9 dof) = 27.88.
        let n = 11;
        let mut coo = Coo::new(n, n);
        coo.push(0, 0, 20.0);
        for j in 1..n {
            // Off-diagonal weights 1, 2, …, 10 — far from uniform.
            coo.push(0, j, j as f64);
        }
        for j in 1..n {
            coo.push(j, j, 1.0);
        }
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.0);
        let (rs, re) = w.row_range(0);
        let m = re - rs;
        assert_eq!(m, 10);
        let s = w.rowsum(0);
        let draws = 200_000usize;

        let chi2 = |sampler: &dyn Fn(&WalkMatrix, &mut ChaCha8Rng) -> (usize, f64)| {
            let mut rng = ChaCha8Rng::seed_from_u64(12345);
            let mut counts = vec![0usize; n];
            for _ in 0..draws {
                let (j, mult) = sampler(&w, &mut rng);
                assert!((mult.abs() - s).abs() < 1e-15);
                counts[j] += 1;
            }
            let mut stat = 0.0;
            for e in 0..m {
                let p = w.vals[rs + e].abs() / s;
                let expected = p * draws as f64;
                let d = counts[w.cols[rs + e]] as f64 - expected;
                stat += d * d / expected;
            }
            stat
        };

        let chi2_alias = chi2(&|w, rng| w.sample_transition(0, rng));
        let chi2_invcdf = chi2(&|w, rng| w.sample_transition_invcdf(0, rng));
        assert!(chi2_alias < 27.88, "alias χ² = {chi2_alias}");
        assert!(chi2_invcdf < 27.88, "invcdf χ² = {chi2_invcdf}");
    }

    #[test]
    fn alias_and_invcdf_estimators_agree_statistically() {
        // Same Neumann-series target through both samplers on a branching
        // ring: the estimators must agree within Monte Carlo error even
        // though individual trajectories differ draw-by-draw.
        let nn = 4usize;
        let mut coo = Coo::new(nn, nn);
        for i in 0..nn {
            coo.push(i, i, 3.0);
            coo.push(i, (i + 1) % nn, -1.0);
            coo.push(i, (i + 3) % nn, -0.5);
        }
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.5);
        let chains = 100_000usize;
        let delta = 1e-4f64;

        // Alias path through the production walk loop.
        let mut scratch = vec![0.0; nn];
        let mut touched = Vec::new();
        w.walk_row(0, chains, delta, 10_000, 9, &mut scratch, &mut touched);

        // Inverse-CDF path, replicating walk_row's contribution rule.
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let mut scratch_inv = vec![0.0; nn];
        for _ in 0..chains {
            let mut k = 0usize;
            let mut wgt = 1.0f64;
            scratch_inv[k] += wgt;
            loop {
                let (rs, re) = w.row_range(k);
                if rs == re {
                    break;
                }
                let (j, mult) = w.sample_transition_invcdf(k, &mut rng);
                wgt *= mult;
                k = j;
                if wgt.abs() < delta {
                    break;
                }
                scratch_inv[k] += wgt;
            }
        }
        for j in 0..nn {
            let a = scratch[j] / chains as f64;
            let b = scratch_inv[j] / chains as f64;
            assert!((a - b).abs() < 0.02, "col {j}: alias {a} vs invcdf {b}");
        }
    }

    #[test]
    fn absorbing_rows_end_walks() {
        // Row 1 has no off-diagonals: every chain entering it is absorbed.
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(0, 1, -1.0);
        coo.push(1, 1, 3.0);
        let w = WalkMatrix::from_perturbed(&coo.to_csr(), 0.0);
        let mut scratch = vec![0.0; 2];
        let mut touched = Vec::new();
        let stats = w.walk_row(0, 1000, 1e-12, 10_000, 3, &mut scratch, &mut touched);
        assert_eq!(stats.capped, 0);
        assert_eq!(stats.blown_up, 0);
        // M = (I−C)⁻¹ with C = [[0, 1/2], [0, 0]] ⇒ row 0 of M = [1, 1/2].
        let m00 = scratch[0] / 1000.0;
        let m01 = scratch[1] / 1000.0;
        assert!((m00 - 1.0).abs() < 1e-12);
        assert!((m01 - 0.5).abs() < 1e-12);
    }
}
