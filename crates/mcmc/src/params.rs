//! The MCMC algorithmic parameter vector `x_M = (α, ε, δ)`.

use serde::{Deserialize, Serialize};

/// Continuous MCMC matrix-inversion parameters (paper §4.1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct McmcParams {
    /// Matrix perturbation parameter `α > 0`: scales the diagonal added to
    /// `A` so the Neumann series converges. Near-zero values are legal but
    /// typically produce divergent walks — the paper deliberately includes
    /// such samples so the surrogate learns failure regions.
    pub alpha: f64,
    /// Stochastic error `ε ∈ (0, 1]`: determines the maximum number of
    /// independent Markov chains per row.
    pub eps: f64,
    /// Truncation error `δ ∈ (0, 1]`: determines the maximum walk length
    /// (a chain stops when its weight magnitude falls below δ).
    pub delta: f64,
}

impl McmcParams {
    /// Construct with validation.
    ///
    /// # Panics
    /// Panics if `alpha < 0`, or `eps`/`delta` outside `(0, 1]`.
    pub fn new(alpha: f64, eps: f64, delta: f64) -> Self {
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "McmcParams: alpha must be >= 0"
        );
        assert!(eps > 0.0 && eps <= 1.0, "McmcParams: eps must be in (0,1]");
        assert!(
            delta > 0.0 && delta <= 1.0,
            "McmcParams: delta must be in (0,1]"
        );
        Self { alpha, eps, delta }
    }

    /// Number of chains per row from the probable-error rule
    /// `N = ⌈(0.6745/ε)²⌉` (Dimov's Monte-Carlo error bound: the probable
    /// error of an N-sample mean is `0.6745·σ/√N`).
    pub fn chains_per_row(&self) -> usize {
        let r = 0.6745 / self.eps;
        (r * r).ceil() as usize
    }

    /// The paper's training grid: `α ∈ {1,2,4,5}`, `ε, δ ∈ {1/2,…,1/16}`
    /// (4×4×4 = 64 combinations).
    pub fn paper_grid() -> Vec<McmcParams> {
        let alphas = [1.0, 2.0, 4.0, 5.0];
        let epsdeltas = [0.5, 0.25, 0.125, 0.0625];
        let mut grid = Vec::with_capacity(64);
        for &a in &alphas {
            for &e in &epsdeltas {
                for &d in &epsdeltas {
                    grid.push(McmcParams::new(a, e, d));
                }
            }
        }
        grid
    }

    /// As a feature vector `[α, ε, δ]` for the surrogate.
    pub fn as_vec(&self) -> [f64; 3] {
        [self.alpha, self.eps, self.delta]
    }

    /// Parameter-space box used by the BO optimiser: α ∈ [0.05, 8],
    /// ε, δ ∈ [1/32, 1] — a superset of the paper's grid that still keeps
    /// chain counts and walk lengths bounded.
    pub fn search_box() -> ([f64; 3], [f64; 3]) {
        ([0.05, 1.0 / 32.0, 1.0 / 32.0], [8.0, 1.0, 1.0])
    }

    /// Clamp a raw 3-vector into the search box and build parameters.
    pub fn from_clamped(v: &[f64]) -> Self {
        assert_eq!(v.len(), 3, "McmcParams::from_clamped: need 3 components");
        let (lo, hi) = Self::search_box();
        let c = |x: f64, l: f64, h: f64| x.clamp(l, h);
        McmcParams::new(
            c(v[0], lo[0], hi[0]),
            c(v[1], lo[1], hi[1]),
            c(v[2], lo[2], hi[2]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_counts_match_probable_error_rule() {
        // ε = 1/2 ⇒ (0.6745·2)² ≈ 1.82 ⇒ 2 chains; ε = 1/16 ⇒ ≈ 116.5 ⇒ 117.
        assert_eq!(McmcParams::new(1.0, 0.5, 0.5).chains_per_row(), 2);
        assert_eq!(McmcParams::new(1.0, 0.0625, 0.5).chains_per_row(), 117);
    }

    #[test]
    fn smaller_eps_means_more_chains() {
        let n1 = McmcParams::new(1.0, 0.5, 0.5).chains_per_row();
        let n2 = McmcParams::new(1.0, 0.25, 0.5).chains_per_row();
        let n3 = McmcParams::new(1.0, 0.125, 0.5).chains_per_row();
        assert!(n1 < n2 && n2 < n3);
    }

    #[test]
    fn paper_grid_is_4x4x4() {
        let g = McmcParams::paper_grid();
        assert_eq!(g.len(), 64);
        // All distinct.
        for (i, a) in g.iter().enumerate() {
            for b in &g[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn clamping_respects_box() {
        let p = McmcParams::from_clamped(&[100.0, -5.0, 0.5]);
        let (lo, hi) = McmcParams::search_box();
        assert_eq!(p.alpha, hi[0]);
        assert_eq!(p.eps, lo[1]);
        assert_eq!(p.delta, 0.5);
    }

    #[test]
    #[should_panic(expected = "eps must be in (0,1]")]
    fn rejects_bad_eps() {
        let _ = McmcParams::new(1.0, 0.0, 0.5);
    }

    #[test]
    fn serde_roundtrip() {
        let p = McmcParams::new(2.0, 0.25, 0.125);
        let s = serde_json::to_string(&p).unwrap();
        let q: McmcParams = serde_json::from_str(&s).unwrap();
        assert_eq!(p, q);
    }
}
