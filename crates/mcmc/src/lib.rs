//! Markov chain Monte Carlo matrix inversion (MCMCMI) preconditioners.
//!
//! This is the solver-side contribution the paper tunes: the advanced
//! MCMC-based matrix-inversion preconditioner of Lebedev & Alexandrov
//! (ScalA'18) and Sahin et al. (ScalA'21), governed by three continuous
//! parameters `x_M = (α, ε, δ)`:
//!
//! * **α** — diagonal perturbation scaling; `Â = A + α·diag(|a_ii|)` makes
//!   the Neumann series of the Jacobi splitting converge,
//! * **ε** — stochastic error; sets the number of independent Markov chains
//!   per row through the probable-error rule `N = ⌈(0.6745/ε)²⌉`,
//! * **δ** — truncation error; a chain stops once its weight drops below δ.
//!
//! Walks run embarrassingly parallel across rows (Rayon) with deterministic
//! per-`(seed, row, chain)` RNG streams, so a build is bit-reproducible for
//! any thread count. Within a row, chains execute on either of two
//! bit-identical engines ([`WalkEngine`]): the scalar reference loop or the
//! default lockstep SoA lane batch (see [`walk`] for the engine contract).
//! The regenerative single-budget variant (Ghosh et al., SIMAX'25) ships as
//! an extension in [`regenerative`].

pub mod builder;
pub mod compress;
pub mod params;
pub mod recover;
pub mod regenerative;
pub mod safeguard;
pub mod walk;

pub use builder::{BuildConfig, BuildOutcome, McmcInverse};
pub use compress::{compress, sparsify, CompressionPolicy, CompressionReport, StoragePrecision};
pub use params::McmcParams;
pub use recover::{PartialRefresher, SafeguardedRebuilder};
pub use regenerative::{regenerative_inverse, RegenerativeConfig};
pub use safeguard::{BuildAttempt, BuildError, SafeguardConfig, SafeguardedBuild};
pub use walk::{RowWalkStats, SoaBatch, WalkEngine, WalkMatrix, MAX_LANES};
