//! Regenerative Ulam–von Neumann variant (paper ref [9], Ghosh et al.,
//! SIMAX 2025): collapses the (ε, δ) pair into a single *transition budget*
//! parameter.
//!
//! Simplified scheme implemented here: each row is given a fixed budget of
//! transitions; fresh chains are regenerated from the row start until the
//! budget is exhausted, with a fixed tight truncation. The estimator
//! averages over completed regeneration cycles. One knob (`budget`) replaces
//! two (ε, δ), which is exactly the robustness/variance-control argument of
//! the reference; the ablation bench `ablation_regen` compares the two
//! schemes at matched work.

use crate::walk::WalkMatrix;
use mcmcmi_krylov::SparsePrecond;
use mcmcmi_sparse::Csr;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration for the regenerative builder.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RegenerativeConfig {
    /// Diagonal perturbation α (same role as in the classic scheme).
    pub alpha: f64,
    /// Transition budget per row — the single tuning knob.
    pub budget: usize,
    /// Fill budget as a multiple of nnz(A).
    pub filling_factor: f64,
    /// Truncation threshold for stored entries.
    pub trunc_threshold: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RegenerativeConfig {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            budget: 2_000,
            filling_factor: 2.0,
            trunc_threshold: 1e-9,
            seed: 0,
        }
    }
}

/// Build a preconditioner with the regenerative single-budget scheme.
pub fn regenerative_inverse(a: &Csr, cfg: RegenerativeConfig) -> SparsePrecond {
    let n = a.nrows();
    let walk = WalkMatrix::from_perturbed(a, cfg.alpha);
    // Fixed tight truncation: the budget, not δ, limits the work.
    const DELTA: f64 = 1e-10;
    const BLOWUP: f64 = 1e12;

    let budgets: Vec<usize> = a
        .row_degrees()
        .iter()
        .map(|&d| ((cfg.filling_factor * d as f64).ceil() as usize).max(1))
        .collect();

    let rows: Vec<(Vec<usize>, Vec<f64>)> = (0..n)
        .into_par_iter()
        .map_init(
            // Reusable per-worker workspace (see builder.rs): one O(n)
            // scratch per thread, sparse reset between rows.
            || crate::builder::RowWorkspace::new(n),
            |ws, i| {
                let mut rng = ChaCha8Rng::seed_from_u64(
                    cfg.seed ^ (0xd1b54a32d192ed03u64.wrapping_mul(i as u64 + 1)),
                );
                let scratch = &mut ws.scratch;
                let touched = &mut ws.touched;
                let mut spent = 0usize;
                let mut cycles = 0usize;
                // Absorbing start row: every cycle would end after step 0
                // without spending budget, so the regeneration loop below would
                // never terminate — and the estimator is exactly e_i anyway.
                let (start_rs, start_re) = walk_row_range(&walk, i);
                if start_rs == start_re {
                    cycles = 1;
                    touched.push(i);
                    scratch[i] = 1.0;
                    spent = cfg.budget;
                }
                // Regenerate chains from the row start until budget exhaustion;
                // always complete the final cycle so the estimator stays
                // (nearly) unbiased across cycles.
                while spent < cfg.budget {
                    cycles += 1;
                    let mut k = i;
                    let mut w = 1.0f64;
                    if scratch[k] == 0.0 {
                        touched.push(k);
                    }
                    scratch[k] += w;
                    loop {
                        let (rs, re) = walk_row_range(&walk, k);
                        if rs == re {
                            break;
                        }
                        let (j, mult) = sample_step(&walk, k, &mut rng);
                        w *= mult;
                        k = j;
                        spent += 1;
                        if w.abs() < DELTA || w.abs() > BLOWUP || !w.is_finite() {
                            break;
                        }
                        if scratch[k] == 0.0 {
                            touched.push(k);
                        }
                        scratch[k] += w;
                        if spent >= cfg.budget && k == i {
                            // Natural regeneration point reached with budget
                            // spent: stop cleanly.
                            break;
                        }
                    }
                }
                // Dedup: cancellation can zero an entry that is later revisited.
                touched.sort_unstable();
                touched.dedup();
                let inv_diag = walk.inv_diag();
                let mut entries: Vec<(usize, f64)> = touched
                    .iter()
                    .map(|&j| (j, scratch[j] / cycles as f64 * inv_diag[j]))
                    .filter(|&(_, v)| v.abs() >= cfg.trunc_threshold && v.is_finite())
                    .collect();
                ws.reset();
                let budget = budgets[i];
                if entries.len() > budget {
                    entries.select_nth_unstable_by(budget - 1, |a, b| {
                        b.1.abs().partial_cmp(&a.1.abs()).unwrap()
                    });
                    entries.truncate(budget);
                }
                entries.sort_unstable_by_key(|&(j, _)| j);
                (
                    entries.iter().map(|&(j, _)| j).collect(),
                    entries.iter().map(|&(_, v)| v).collect(),
                )
            },
        )
        .collect();

    let nnz_total: usize = rows.iter().map(|(c, _)| c.len()).sum();
    let mut indptr = Vec::with_capacity(n + 1);
    let mut cols = Vec::with_capacity(nnz_total);
    let mut vals = Vec::with_capacity(nnz_total);
    indptr.push(0);
    for (c, v) in &rows {
        cols.extend_from_slice(c);
        vals.extend_from_slice(v);
        indptr.push(cols.len());
    }
    SparsePrecond::new(Csr::from_raw(n, n, indptr, cols, vals))
}

// Thin accessors over WalkMatrix internals for the regenerative loop.
fn walk_row_range(w: &WalkMatrix, k: usize) -> (usize, usize) {
    w.row_range(k)
}

fn sample_step<R: Rng>(w: &WalkMatrix, k: usize, rng: &mut R) -> (usize, f64) {
    w.sample_transition(k, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmcmi_krylov::{gmres, IdentityPrecond, SolveOptions};
    use mcmcmi_matgen::fd_laplace_2d;

    #[test]
    fn regenerative_build_is_deterministic() {
        let a = mcmcmi_matgen::pdd_real_sparse(48, 5);
        let p1 = regenerative_inverse(&a, RegenerativeConfig::default());
        let p2 = regenerative_inverse(&a, RegenerativeConfig::default());
        assert_eq!(p1.matrix(), p2.matrix());
    }

    #[test]
    fn regenerative_preconditioner_helps() {
        let a = fd_laplace_2d(16);
        let n = a.nrows();
        let b = vec![1.0; n];
        let plain = gmres(&a, &b, &IdentityPrecond::new(n), SolveOptions::default());
        let p = regenerative_inverse(
            &a,
            RegenerativeConfig {
                alpha: 0.1,
                budget: 30_000,
                ..Default::default()
            },
        );
        let pre = gmres(&a, &b, &p, SolveOptions::default());
        assert!(pre.converged);
        assert!(
            pre.iterations < plain.iterations,
            "{} !< {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn regenerative_matches_exact_inverse_on_small_system() {
        use mcmcmi_dense::Lu;
        let a = mcmcmi_matgen::laplace_1d(8);
        let cfg = RegenerativeConfig {
            alpha: 0.5,
            budget: 400_000,
            ..Default::default()
        };
        let p = regenerative_inverse(&a, cfg);
        let mut dense = a.to_dense();
        for i in 0..8 {
            let v = dense.get(i, i) * (1.0 + cfg.alpha);
            dense.set(i, i, v);
        }
        let exact = Lu::new(&dense).inverse().unwrap();
        let diff = p.matrix().to_dense().max_abs_diff(&exact);
        assert!(diff < 0.05, "max diff {diff}");
    }

    #[test]
    fn bigger_budget_improves_quality() {
        let a = fd_laplace_2d(10);
        let n = a.nrows();
        let b = vec![1.0; n];
        let small = regenerative_inverse(
            &a,
            RegenerativeConfig {
                alpha: 0.1,
                budget: 30,
                ..Default::default()
            },
        );
        let large = regenerative_inverse(
            &a,
            RegenerativeConfig {
                alpha: 0.1,
                budget: 20_000,
                ..Default::default()
            },
        );
        let it_small = gmres(&a, &b, &small, SolveOptions::default()).iterations;
        let it_large = gmres(&a, &b, &large, SolveOptions::default()).iterations;
        assert!(it_large <= it_small, "{it_large} > {it_small}");
    }
}
