//! Regenerative Ulam–von Neumann variant (paper ref [9], Ghosh et al.,
//! SIMAX 2025): collapses the (ε, δ) pair into a single *transition budget*
//! parameter.
//!
//! Simplified scheme implemented here: each row is given a fixed budget of
//! transitions; fresh chains are regenerated from the row start until the
//! budget is exhausted, with a fixed tight truncation. The estimator
//! averages over completed regeneration cycles. One knob (`budget`) replaces
//! two (ε, δ), which is exactly the robustness/variance-control argument of
//! the reference; the ablation bench `ablation_regen` compares the two
//! schemes at matched work.

use crate::walk::{chain_rng, SoaBatch, WalkEngine, WalkMatrix, MAX_LANES};
use mcmcmi_krylov::SparsePrecond;
use mcmcmi_sparse::Csr;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Fixed tight truncation: the budget, not δ, limits the work.
const DELTA: f64 = 1e-10;
const BLOWUP: f64 = 1e12;
/// Salt folded into the seed for the lockstep engine's per-cycle streams
/// (the scalar engine keeps its historical single per-row stream).
const REGEN_SALT: u64 = 0xd1b54a32d192ed03;

/// Configuration for the regenerative builder.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RegenerativeConfig {
    /// Diagonal perturbation α (same role as in the classic scheme).
    pub alpha: f64,
    /// Transition budget per row — the single tuning knob.
    pub budget: usize,
    /// Fill budget as a multiple of nnz(A).
    pub filling_factor: f64,
    /// Truncation threshold for stored entries.
    pub trunc_threshold: f64,
    /// RNG seed.
    pub seed: u64,
    /// Which walk engine runs the regeneration cycles. Unlike the classic
    /// builder, the two engines here are *statistically equivalent* but
    /// not bit-identical: the scalar loop threads one RNG stream through
    /// sequential cycles and charges the budget per transition, while the
    /// lockstep engine gives every cycle its own stream and charges the
    /// budget per round. Each engine is individually deterministic at any
    /// thread count.
    pub engine: WalkEngine,
}

impl Default for RegenerativeConfig {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            budget: 2_000,
            filling_factor: 2.0,
            trunc_threshold: 1e-9,
            seed: 0,
            engine: WalkEngine::Soa,
        }
    }
}

/// One row of the scalar (reference) regenerative scheme: sequential
/// cycles threading a single per-row stream. Returns the cycle count; the
/// tallies land in `scratch`/`touched`.
fn regen_row_scalar(
    walk: &WalkMatrix,
    i: usize,
    cfg: &RegenerativeConfig,
    scratch: &mut [f64],
    touched: &mut Vec<usize>,
) -> usize {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ (REGEN_SALT.wrapping_mul(i as u64 + 1)));
    let mut spent = 0usize;
    let mut cycles = 0usize;
    // Absorbing start row: every cycle would end after step 0 without
    // spending budget, so the regeneration loop below would never
    // terminate — and the estimator is exactly e_i anyway.
    let (start_rs, start_re) = walk_row_range(walk, i);
    if start_rs == start_re {
        touched.push(i);
        scratch[i] = 1.0;
        return 1;
    }
    // Regenerate chains from the row start until budget exhaustion;
    // always complete the final cycle so the estimator stays (nearly)
    // unbiased across cycles.
    while spent < cfg.budget {
        cycles += 1;
        let mut k = i;
        let mut w = 1.0f64;
        if scratch[k] == 0.0 {
            touched.push(k);
        }
        scratch[k] += w;
        loop {
            let (rs, re) = walk_row_range(walk, k);
            if rs == re {
                break;
            }
            let (j, mult) = sample_step(walk, k, &mut rng);
            w *= mult;
            k = j;
            spent += 1;
            if w.abs() < DELTA || w.abs() > BLOWUP || !w.is_finite() {
                break;
            }
            if scratch[k] == 0.0 {
                touched.push(k);
            }
            scratch[k] += w;
            if spent >= cfg.budget && k == i {
                // Natural regeneration point reached with budget spent:
                // stop cleanly.
                break;
            }
        }
    }
    cycles
}

/// One row of the lockstep regenerative scheme: concurrent cycles as SoA
/// lanes, round-based budget accounting. Every lane runs its own
/// per-`(seed, row, cycle)` stream; the shared `spent` counter advances by
/// one per lane transition in fixed lane order, new cycles start only
/// while `spent < budget`, and started cycles always run to completion —
/// the lockstep analogue of "always complete the final cycle".
/// Deterministic at any thread count (rows stay the rayon work unit), but
/// *not* bit-identical to the scalar scheme, whose budget clock ticks
/// inside a single sequential stream.
///
/// Termination under lane masking: the absorbing-start-row special case
/// returns before the loop, so every started cycle takes at least one
/// transition (the start row draws), which makes `spent` strictly increase
/// while any lane regenerates — an all-absorbed lane batch cannot spin.
fn regen_row_soa(
    walk: &WalkMatrix,
    i: usize,
    cfg: &RegenerativeConfig,
    batch: &mut SoaBatch,
    scratch: &mut [f64],
    touched: &mut Vec<usize>,
) -> usize {
    let (start_rs, start_re) = walk_row_range(walk, i);
    if start_rs == start_re {
        touched.push(i);
        scratch[i] = 1.0;
        return 1;
    }
    // Lane count scales with the budget (full batches would overshoot a
    // small budget by whole lane-widths of straggler cycles), capped at
    // the engine-wide lane limit.
    let lanes = (cfg.budget / 32).clamp(1, MAX_LANES);
    let seed = cfg.seed ^ REGEN_SALT;
    batch.reset(lanes, lanes);
    // `chain[l]` holds the lane's RNG *slot*. Slots travel with lanes
    // through swap-compaction, so the slot surfacing at the regeneration
    // position is exactly the one its retired cycle freed — no free-list
    // bookkeeping needed.
    for (l, slot) in batch.chain.iter_mut().enumerate() {
        *slot = l as u32;
    }
    let mut spent = 0usize;
    let mut cycles = 0usize;
    let mut n_active = 0usize;
    loop {
        // Regenerate freed lanes into fresh cycles while budget remains;
        // each fresh cycle gets its own `(seed, row, cycle)` stream and
        // logs its step-0 contribution immediately.
        while n_active < lanes && spent < cfg.budget {
            let l = n_active;
            batch.rng[batch.chain[l] as usize] = chain_rng(seed, i, cycles);
            batch.state[l] = i as u32;
            batch.weight[l] = 1.0;
            cycles += 1;
            n_active += 1;
            if scratch[i] == 0.0 {
                touched.push(i);
            }
            scratch[i] += 1.0;
        }
        if n_active == 0 {
            break;
        }
        // Pass 1: retire absorbed lanes — no draw, no contribution.
        let mut l = 0;
        while l < n_active {
            let k = batch.state[l] as usize;
            let (rs, re) = walk_row_range(walk, k);
            if rs == re {
                n_active -= 1;
                batch.swap_lanes(l, n_active);
            } else {
                l += 1;
            }
        }
        // Pass 2: one contiguous draw block for the surviving lanes.
        for l in 0..n_active {
            batch.draws[l] = batch.rng[batch.chain[l] as usize].next_u64();
        }
        // Pass 3: gathered transitions; the budget clock ticks once per
        // lane transition, in fixed lane order (deterministic).
        let mut l = 0;
        while l < n_active {
            let k = batch.state[l] as usize;
            let (j, mult) = walk.resolve_draw(k, batch.draws[l]);
            let w = batch.weight[l] * mult;
            batch.weight[l] = w;
            batch.state[l] = j as u32;
            spent += 1;
            if w.abs() < DELTA || w.abs() > BLOWUP || !w.is_finite() {
                n_active -= 1;
                batch.swap_lanes(l, n_active);
                continue;
            }
            if scratch[j] == 0.0 {
                touched.push(j);
            }
            scratch[j] += w;
            if spent >= cfg.budget && j == i {
                // Natural regeneration point with the budget spent.
                n_active -= 1;
                batch.swap_lanes(l, n_active);
                continue;
            }
            l += 1;
        }
    }
    cycles
}

/// Build a preconditioner with the regenerative single-budget scheme.
pub fn regenerative_inverse(a: &Csr, cfg: RegenerativeConfig) -> SparsePrecond {
    let n = a.nrows();
    let walk = WalkMatrix::from_perturbed(a, cfg.alpha);

    let budgets: Vec<usize> = a
        .row_degrees()
        .iter()
        .map(|&d| ((cfg.filling_factor * d as f64).ceil() as usize).max(1))
        .collect();

    let rows: Vec<(Vec<usize>, Vec<f64>)> = (0..n)
        .into_par_iter()
        .map_init(
            // Reusable per-worker workspace (see builder.rs): one O(n)
            // scratch per thread, sparse reset between rows.
            || crate::builder::RowWorkspace::new(n),
            |ws, i| {
                let cycles = match cfg.engine {
                    WalkEngine::Scalar => {
                        regen_row_scalar(&walk, i, &cfg, &mut ws.scratch, &mut ws.touched)
                    }
                    WalkEngine::Soa => regen_row_soa(
                        &walk,
                        i,
                        &cfg,
                        &mut ws.batch,
                        &mut ws.scratch,
                        &mut ws.touched,
                    ),
                };
                let scratch = &mut ws.scratch;
                let touched = &mut ws.touched;
                // Dedup: cancellation can zero an entry that is later revisited.
                touched.sort_unstable();
                touched.dedup();
                let inv_diag = walk.inv_diag();
                let mut entries: Vec<(usize, f64)> = touched
                    .iter()
                    .map(|&j| (j, scratch[j] / cycles as f64 * inv_diag[j]))
                    .filter(|&(_, v)| v.abs() >= cfg.trunc_threshold && v.is_finite())
                    .collect();
                ws.reset();
                let budget = budgets[i];
                if entries.len() > budget {
                    entries.select_nth_unstable_by(budget - 1, |a, b| {
                        b.1.abs().partial_cmp(&a.1.abs()).unwrap()
                    });
                    entries.truncate(budget);
                }
                entries.sort_unstable_by_key(|&(j, _)| j);
                (
                    entries.iter().map(|&(j, _)| j).collect(),
                    entries.iter().map(|&(_, v)| v).collect(),
                )
            },
        )
        .collect();

    let nnz_total: usize = rows.iter().map(|(c, _)| c.len()).sum();
    let mut indptr = Vec::with_capacity(n + 1);
    let mut cols = Vec::with_capacity(nnz_total);
    let mut vals = Vec::with_capacity(nnz_total);
    indptr.push(0);
    for (c, v) in &rows {
        cols.extend_from_slice(c);
        vals.extend_from_slice(v);
        indptr.push(cols.len());
    }
    SparsePrecond::new(Csr::from_raw(n, n, indptr, cols, vals))
}

// Thin accessors over WalkMatrix internals for the regenerative loop.
fn walk_row_range(w: &WalkMatrix, k: usize) -> (usize, usize) {
    w.row_range(k)
}

fn sample_step<R: Rng>(w: &WalkMatrix, k: usize, rng: &mut R) -> (usize, f64) {
    w.sample_transition(k, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmcmi_krylov::{gmres, IdentityPrecond, SolveOptions};
    use mcmcmi_matgen::fd_laplace_2d;

    #[test]
    fn regenerative_build_is_deterministic() {
        let a = mcmcmi_matgen::pdd_real_sparse(48, 5);
        let p1 = regenerative_inverse(&a, RegenerativeConfig::default());
        let p2 = regenerative_inverse(&a, RegenerativeConfig::default());
        assert_eq!(p1.matrix(), p2.matrix());
        // Same for the scalar reference engine.
        let cfg = RegenerativeConfig {
            engine: WalkEngine::Scalar,
            ..Default::default()
        };
        let s1 = regenerative_inverse(&a, cfg);
        let s2 = regenerative_inverse(&a, cfg);
        assert_eq!(s1.matrix(), s2.matrix());
    }

    #[test]
    fn regenerative_engines_agree_statistically() {
        // The two engines run different RNG stream layouts and budget
        // clocks, so they are not bit-identical — but both estimate the
        // same inverse, so at a generous budget every stored entry must
        // agree within Monte Carlo error.
        let a = mcmcmi_matgen::laplace_1d(8);
        let base = RegenerativeConfig {
            alpha: 0.5,
            budget: 400_000,
            ..Default::default()
        };
        let soa = regenerative_inverse(&a, base);
        let scalar = regenerative_inverse(
            &a,
            RegenerativeConfig {
                engine: WalkEngine::Scalar,
                ..base
            },
        );
        let ds = soa.matrix().to_dense();
        let dr = scalar.matrix().to_dense();
        let diff = ds.max_abs_diff(&dr);
        assert!(diff < 0.05, "engines disagree: max diff {diff}");
    }

    #[test]
    fn fully_absorbing_matrix_yields_scaled_identity() {
        // Diagonal-only A: every walk row is absorbing, so every start row
        // hits the absorbing-start special case. Both engines must
        // terminate (the lockstep engine's all-absorbed lane batch cannot
        // spin on a zero-spend round) and produce P = D̂⁻¹ exactly.
        let n = 6;
        let mut coo = mcmcmi_sparse::Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0 + i as f64);
        }
        let a = coo.to_csr();
        for engine in [WalkEngine::Scalar, WalkEngine::Soa] {
            let cfg = RegenerativeConfig {
                alpha: 0.5,
                budget: 1_000,
                engine,
                ..Default::default()
            };
            let p = regenerative_inverse(&a, cfg);
            let m = p.matrix();
            assert_eq!(m.nnz(), n, "{engine:?}: expected a diagonal result");
            for i in 0..n {
                let expect = 1.0 / ((2.0 + i as f64) * (1.0 + cfg.alpha));
                assert_eq!(m.row_indices(i), &[i], "{engine:?}: row {i} pattern");
                assert!(
                    (m.row_values(i)[0] - expect).abs() < 1e-15,
                    "{engine:?}: row {i} value {} vs {expect}",
                    m.row_values(i)[0]
                );
            }
        }
    }

    #[test]
    fn regenerative_preconditioner_helps() {
        let a = fd_laplace_2d(16);
        let n = a.nrows();
        let b = vec![1.0; n];
        let plain = gmres(&a, &b, &IdentityPrecond::new(n), SolveOptions::default());
        let p = regenerative_inverse(
            &a,
            RegenerativeConfig {
                alpha: 0.1,
                budget: 30_000,
                ..Default::default()
            },
        );
        let pre = gmres(&a, &b, &p, SolveOptions::default());
        assert!(pre.converged);
        assert!(
            pre.iterations < plain.iterations,
            "{} !< {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn regenerative_matches_exact_inverse_on_small_system() {
        use mcmcmi_dense::Lu;
        let a = mcmcmi_matgen::laplace_1d(8);
        let cfg = RegenerativeConfig {
            alpha: 0.5,
            budget: 400_000,
            ..Default::default()
        };
        let p = regenerative_inverse(&a, cfg);
        let mut dense = a.to_dense();
        for i in 0..8 {
            let v = dense.get(i, i) * (1.0 + cfg.alpha);
            dense.set(i, i, v);
        }
        let exact = Lu::new(&dense).inverse().unwrap();
        let diff = p.matrix().to_dense().max_abs_diff(&exact);
        assert!(diff < 0.05, "max diff {diff}");
    }

    #[test]
    fn bigger_budget_improves_quality() {
        let a = fd_laplace_2d(10);
        let n = a.nrows();
        let b = vec![1.0; n];
        let small = regenerative_inverse(
            &a,
            RegenerativeConfig {
                alpha: 0.1,
                budget: 30,
                ..Default::default()
            },
        );
        let large = regenerative_inverse(
            &a,
            RegenerativeConfig {
                alpha: 0.1,
                budget: 20_000,
                ..Default::default()
            },
        );
        let it_small = gmres(&a, &b, &small, SolveOptions::default()).iterations;
        let it_large = gmres(&a, &b, &large, SolveOptions::default()).iterations;
        assert!(it_large <= it_small, "{it_large} > {it_small}");
    }
}
