//! Preconditioner assembly: parallel walks → sparsified approximate inverse.
//!
//! The build is allocation-disciplined: each Rayon worker owns one reusable
//! [`RowWorkspace`] (`map_init`), so the dense scratch vector is allocated
//! once per worker instead of once per row, and only the entries a row's
//! walks actually touched are re-zeroed between rows — O(nnz_touched) reset
//! instead of O(n), eliminating the O(n²) aggregate allocation/zeroing the
//! naive per-row `vec![0.0; n]` costs.

use crate::compress::{CompressionPolicy, CompressionReport};
use crate::params::McmcParams;
use crate::walk::{RowWalkStats, SoaBatch, WalkEngine, WalkMatrix};
use mcmcmi_krylov::SparsePrecond;
use mcmcmi_sparse::Csr;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Per-worker reusable walk state: a dense tally vector plus the list of
/// indices written, so the scratch can be reset sparsely after each row.
pub(crate) struct RowWorkspace {
    pub scratch: Vec<f64>,
    pub touched: Vec<usize>,
    /// Lockstep lane batch for the SoA engine (unused by the scalar one);
    /// lives in the workspace so its lane arrays and journals are likewise
    /// allocated once per worker.
    pub batch: SoaBatch,
}

impl RowWorkspace {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            scratch: vec![0.0; n],
            touched: Vec::with_capacity(64),
            batch: SoaBatch::new(),
        }
    }

    /// Zero exactly the entries recorded in `touched` and clear the list.
    /// `touched` covers every written index (the walk loop records an index
    /// on its first write, and again if cancellation zeroed it in between),
    /// so the scratch is all-zero again afterwards.
    pub(crate) fn reset(&mut self) {
        for &j in &self.touched {
            self.scratch[j] = 0.0;
        }
        self.touched.clear();
    }
}

/// Matrix-independent build settings (the paper fixes these across the whole
/// study: filling factor 2·φ(A), truncation threshold 1e−9).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BuildConfig {
    /// Preconditioner fill budget as a multiple of nnz(A) (paper: 2.0).
    pub filling_factor: f64,
    /// Absolute entry magnitude below which preconditioner entries are
    /// dropped (paper: 1e−9, "to avoid introducing truncation").
    pub trunc_threshold: f64,
    /// Hard cap on walk length (guards non-contractive splittings).
    pub max_walk_len: usize,
    /// RNG seed; each chain derives an independent `(seed, row, chain)`
    /// stream from it.
    pub seed: u64,
    /// Which walk engine estimates rows. Output is bit-identical either
    /// way; the lockstep SoA engine (default) has higher transition
    /// throughput, the scalar engine is kept as the reference.
    pub engine: WalkEngine,
}

impl Default for BuildConfig {
    fn default() -> Self {
        Self {
            filling_factor: 2.0,
            trunc_threshold: 1e-9,
            max_walk_len: 10_000,
            seed: 0,
            engine: WalkEngine::Soa,
        }
    }
}

/// A built MCMC preconditioner plus build diagnostics.
#[derive(Clone, Debug)]
pub struct BuildOutcome {
    /// The explicit sparse approximate inverse `P ≈ Â⁻¹`.
    pub precond: SparsePrecond,
    /// Total transitions simulated (the work measure; scales ~linearly with
    /// cores, the "embarrassing parallelism" the paper leans on).
    pub transitions: usize,
    /// Chains that hit the step cap.
    pub capped_chains: usize,
    /// Chains whose weight exceeded the blow-up guard — a strong divergence
    /// signal (near-zero α on non-dominant systems).
    pub blown_up_chains: usize,
    /// Fraction of splitting rows with absolute row sum ≥ 1.
    pub noncontractive_fraction: f64,
    /// Chains per row that were run (from ε).
    pub chains_per_row: usize,
    /// Per-row walk statistics, kept so [`McmcInverse::rebuild_rows`] can
    /// update the aggregate counters above *exactly* (old row out, new row
    /// in) instead of approximating them.
    pub row_stats: Vec<RowWalkStats>,
}

impl BuildOutcome {
    /// Heuristic: the build is likely useless as a preconditioner.
    pub fn likely_divergent(&self) -> bool {
        self.blown_up_chains > 0 && self.noncontractive_fraction > 0.5
    }

    /// Bind this preconditioner to its matrix as a reusable
    /// [`SolveSession`] — the consumption path the build cost is amortised
    /// over: many single solves (reused scalar workspace) and many-RHS
    /// batches (`solve_batch`, SpMM-shared traversals), all applying `P`
    /// through the block-aware [`SparsePrecond`].
    pub fn into_session(
        self,
        a: &Csr,
        solver: mcmcmi_krylov::SolverType,
        opts: mcmcmi_krylov::SolveOptions,
    ) -> mcmcmi_krylov::SolveSession<SparsePrecond> {
        mcmcmi_krylov::SolveSession::new(a.clone(), self.precond, solver, opts)
    }

    /// Apply a [`CompressionPolicy`] to the built preconditioner:
    /// drop-tolerance sparsification plus optional f32 demotion (see
    /// [`crate::compress`]). The identity policy returns a bit-identical
    /// f64 copy, so the compressed path can be validated against the
    /// uncompressed baseline exactly.
    pub fn compress(
        &self,
        policy: &CompressionPolicy,
    ) -> (mcmcmi_krylov::CompressedPrecond, CompressionReport) {
        crate::compress::compress(self.precond.matrix(), policy)
    }

    /// Compress and bind in one step: the mixed-precision serving session.
    /// Pair it with a *flexible* driver (`SolverType::Fgmres` /
    /// `SolverType::FCg`) — a sparsified, rounded inverse is exactly the
    /// inexact preconditioner those drivers exist for. (The classical
    /// drivers still run and converge in practice at mild policies; they
    /// just lose their exact-preconditioner theory.)
    pub fn into_compressed_session(
        self,
        a: &Csr,
        policy: &CompressionPolicy,
        solver: mcmcmi_krylov::SolverType,
        opts: mcmcmi_krylov::SolveOptions,
    ) -> (
        mcmcmi_krylov::SolveSession<mcmcmi_krylov::CompressedPrecond>,
        CompressionReport,
    ) {
        let (precond, report) = self.compress(policy);
        (
            mcmcmi_krylov::SolveSession::new(a.clone(), precond, solver, opts),
            report,
        )
    }
}

/// One estimated preconditioner row: the harvested sparse entries plus the
/// walk statistics. Produced by [`estimate_row`] for both the full build
/// and the partial rebuild — sharing the estimator is what makes an
/// all-dirty [`McmcInverse::rebuild_rows`] bit-identical to a fresh
/// [`McmcInverse::build`] *by construction*.
struct RowOut {
    cols: Vec<usize>,
    vals: Vec<f64>,
    stats: RowWalkStats,
}

/// Walk and harvest one preconditioner row: run the chains, tally into the
/// workspace scratch, scale by the walk's inverse diagonal, drop tiny or
/// non-finite entries, budget-select the strongest, and sort by column.
/// Deterministic per `(seed, row)` — independent of which other rows are
/// being estimated around it.
fn estimate_row(
    walk: &WalkMatrix,
    i: usize,
    chains: usize,
    delta: f64,
    cfg: &BuildConfig,
    budget: usize,
    ws: &mut RowWorkspace,
) -> RowOut {
    let stats = match cfg.engine {
        WalkEngine::Scalar => walk.walk_row(
            i,
            chains,
            delta,
            cfg.max_walk_len,
            cfg.seed,
            &mut ws.scratch,
            &mut ws.touched,
        ),
        WalkEngine::Soa => walk.walk_row_soa(
            i,
            chains,
            delta,
            cfg.max_walk_len,
            cfg.seed,
            &mut ws.batch,
            &mut ws.scratch,
            &mut ws.touched,
        ),
    };
    // Harvest: P row = (tally/chains) scaled by the inverse diagonal
    // (column scaling). `touched` may contain duplicates when weight
    // cancellation zeroes an entry that is later revisited — dedup first.
    ws.touched.sort_unstable();
    ws.touched.dedup();
    let inv_diag = walk.inv_diag();
    let mut entries: Vec<(usize, f64)> = ws
        .touched
        .iter()
        .map(|&j| (j, ws.scratch[j] / chains as f64 * inv_diag[j]))
        .filter(|&(_, v)| v.abs() >= cfg.trunc_threshold && v.is_finite())
        .collect();
    ws.reset();
    // Keep the largest |entries| within the row budget.
    if entries.len() > budget {
        entries.select_nth_unstable_by(budget - 1, |a, b| {
            b.1.abs().partial_cmp(&a.1.abs()).unwrap()
        });
        entries.truncate(budget);
    }
    entries.sort_unstable_by_key(|&(j, _)| j);
    RowOut {
        cols: entries.iter().map(|&(j, _)| j).collect(),
        vals: entries.iter().map(|&(_, v)| v).collect(),
        stats,
    }
}

/// Per-row fill budget: `filling_factor ×` the row's own degree (so the
/// global nnz(P) tracks filling_factor times nnz(A)), minimum 1 so every
/// row keeps its strongest entry.
fn row_budget(cfg: &BuildConfig, degree: usize) -> usize {
    ((cfg.filling_factor * degree as f64).ceil() as usize).max(1)
}

/// The MCMC matrix-inversion preconditioner builder.
#[derive(Clone, Debug)]
pub struct McmcInverse {
    config: BuildConfig,
}

impl McmcInverse {
    /// Builder with the paper's fixed settings.
    pub fn new(config: BuildConfig) -> Self {
        Self { config }
    }

    /// Build `P ≈ (A + α·diag)⁻¹` for the given parameters.
    ///
    /// Rows are processed in parallel with Rayon; every row uses an RNG
    /// stream keyed by `(seed, row)`, so the result is identical for any
    /// thread count.
    pub fn build(&self, a: &Csr, params: McmcParams) -> BuildOutcome {
        let n = a.nrows();
        let walk = WalkMatrix::from_perturbed(a, params.alpha);
        let chains = params.chains_per_row();
        let cfg = self.config;

        let budgets: Vec<usize> = a
            .row_degrees()
            .iter()
            .map(|&d| row_budget(&cfg, d))
            .collect();

        let rows: Vec<RowOut> = (0..n)
            .into_par_iter()
            .map_init(
                // One workspace per worker: the O(n) scratch is allocated
                // once per thread, not once per row.
                || RowWorkspace::new(n),
                |ws, i| estimate_row(&walk, i, chains, params.delta, &cfg, budgets[i], ws),
            )
            .collect();

        // Assemble CSR with exact-size preallocation from per-row lengths.
        let nnz_total: usize = rows.iter().map(|r| r.cols.len()).sum();
        let mut indptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::with_capacity(nnz_total);
        let mut vals = Vec::with_capacity(nnz_total);
        indptr.push(0);
        let mut transitions = 0;
        let mut capped = 0;
        let mut blown = 0;
        let mut row_stats = Vec::with_capacity(n);
        for r in &rows {
            cols.extend_from_slice(&r.cols);
            vals.extend_from_slice(&r.vals);
            indptr.push(cols.len());
            transitions += r.stats.transitions;
            capped += r.stats.capped;
            blown += r.stats.blown_up;
            row_stats.push(r.stats);
        }
        let p = Csr::from_raw(n, n, indptr, cols, vals);
        BuildOutcome {
            precond: SparsePrecond::new(p),
            transitions,
            capped_chains: capped,
            blown_up_chains: blown,
            noncontractive_fraction: walk.noncontractive_fraction(),
            chains_per_row: chains,
            row_stats,
        }
    }

    /// Re-estimate only `rows` of an existing build against the drifted
    /// operator `a`, splicing the fresh rows into the preconditioner in
    /// place. This is the payoff of the estimator's row independence (the
    /// paper's Algorithm 1): a drift step that touched 3% of the operator
    /// rows costs ~3% of a full build.
    ///
    /// Semantics:
    /// - Each rebuilt row runs the *same* `(seed, row)` RNG stream, the
    ///   same budget rule against `a`'s row degree, and the same harvest
    ///   as [`McmcInverse::build`] — so a call with **all** rows dirty is
    ///   bit-identical to a fresh build against `a` (at any thread count),
    ///   and a call with **no** rows is a no-op on the preconditioner.
    /// - The walk splitting (including its inverse diagonal and the
    ///   contractivity audit) is re-derived from the drifted `a`, so clean
    ///   rows' entries are *kept* while the aggregate
    ///   `noncontractive_fraction` reflects the current operator.
    /// - Aggregate chain counters are updated exactly via the stored
    ///   [`BuildOutcome::row_stats`] (old row out, new row in).
    ///
    /// `rows` may be unsorted and contain duplicates.
    ///
    /// # Panics
    /// Panics if `a`'s dimensions disagree with the existing
    /// preconditioner (a dimension change is a new operator, not drift),
    /// or any row index is out of range.
    pub fn rebuild_rows(
        &self,
        out: &mut BuildOutcome,
        a: &Csr,
        rows: &[usize],
        params: McmcParams,
    ) {
        let n = a.nrows();
        assert_eq!(a.nrows(), a.ncols(), "rebuild_rows: matrix must be square");
        assert_eq!(
            out.precond.matrix().nrows(),
            n,
            "rebuild_rows: dimension change invalidates the preconditioner"
        );
        assert_eq!(
            out.row_stats.len(),
            n,
            "rebuild_rows: outcome row_stats out of sync"
        );
        let mut dirty: Vec<usize> = rows.to_vec();
        dirty.sort_unstable();
        dirty.dedup();
        if dirty.is_empty() {
            return;
        }
        if let Some(&last) = dirty.last() {
            assert!(last < n, "rebuild_rows: row {last} out of range (n = {n})");
        }

        let walk = WalkMatrix::from_perturbed(a, params.alpha);
        let chains = params.chains_per_row();
        let cfg = self.config;
        let degrees = a.row_degrees();

        let rebuilt: Vec<RowOut> = (0..dirty.len())
            .into_par_iter()
            .map_init(
                || RowWorkspace::new(n),
                |ws, d| {
                    let i = dirty[d];
                    estimate_row(
                        &walk,
                        i,
                        chains,
                        params.delta,
                        &cfg,
                        row_budget(&cfg, degrees[i]),
                        ws,
                    )
                },
            )
            .collect();

        // Splice: clean rows copied from the old preconditioner, dirty rows
        // replaced by their re-estimates, in row order.
        let p_old = out.precond.matrix();
        let nnz_total: usize = (0..n)
            .map(|i| match dirty.binary_search(&i) {
                Ok(d) => rebuilt[d].cols.len(),
                Err(_) => p_old.row_indices(i).len(),
            })
            .sum();
        let mut indptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::with_capacity(nnz_total);
        let mut vals = Vec::with_capacity(nnz_total);
        indptr.push(0);
        for i in 0..n {
            match dirty.binary_search(&i) {
                Ok(d) => {
                    cols.extend_from_slice(&rebuilt[d].cols);
                    vals.extend_from_slice(&rebuilt[d].vals);
                }
                Err(_) => {
                    cols.extend_from_slice(p_old.row_indices(i));
                    vals.extend_from_slice(p_old.row_values(i));
                }
            }
            indptr.push(cols.len());
        }
        let p = Csr::from_raw(n, n, indptr, cols, vals);

        // Exact aggregate update: subtract each dirty row's old stats, add
        // the new ones.
        for (d, &i) in dirty.iter().enumerate() {
            let old = out.row_stats[i];
            out.transitions = out.transitions - old.transitions + rebuilt[d].stats.transitions;
            out.capped_chains = out.capped_chains - old.capped + rebuilt[d].stats.capped;
            out.blown_up_chains = out.blown_up_chains - old.blown_up + rebuilt[d].stats.blown_up;
            out.row_stats[i] = rebuilt[d].stats;
        }
        out.noncontractive_fraction = walk.noncontractive_fraction();
        out.chains_per_row = chains;
        // `SparsePrecond::new` re-runs structure detection on the spliced
        // matrix, so banded/stencil block applies keep dispatching right.
        out.precond = SparsePrecond::new(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmcmi_dense::Lu;
    use mcmcmi_krylov::{gmres, IdentityPrecond, Preconditioner, SolveOptions};
    use mcmcmi_matgen::{fd_laplace_2d, laplace_1d, pdd_real_sparse};

    fn tight_params() -> McmcParams {
        McmcParams::new(0.5, 0.02, 0.001)
    }

    #[test]
    fn approximates_exact_inverse_on_small_spd() {
        let a = laplace_1d(8);
        let params = tight_params();
        let out = McmcInverse::new(BuildConfig::default()).build(&a, params);
        // Exact inverse of the perturbed matrix Â = A + 0.5·diag(|a_ii|).
        let mut dense = a.to_dense();
        for i in 0..8 {
            let v = dense.get(i, i) + params.alpha * dense.get(i, i).abs();
            dense.set(i, i, v);
        }
        let exact = Lu::new(&dense).inverse().unwrap();
        let p = out.precond.matrix().to_dense();
        // Entrywise agreement within MC error (ε = 0.02 ⇒ ~1100 chains/row).
        let diff = p.max_abs_diff(&exact);
        assert!(diff < 0.05, "max diff {diff}");
        assert_eq!(out.blown_up_chains, 0);
    }

    #[test]
    fn preconditioner_reduces_gmres_iterations() {
        let a = fd_laplace_2d(16);
        let n = a.nrows();
        let b = vec![1.0; n];
        let plain = gmres(&a, &b, &IdentityPrecond::new(n), SolveOptions::default());
        let out = McmcInverse::new(BuildConfig::default())
            .build(&a, McmcParams::new(0.1, 0.0625, 0.0625));
        let pre = gmres(&a, &b, &out.precond, SolveOptions::default());
        assert!(pre.converged);
        assert!(
            pre.iterations < plain.iterations,
            "MCMC {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn built_precond_block_apply_matches_columnwise_apply() {
        // The MCMC inverse is consumed through `SparsePrecond` in the
        // batched solvers; its block application must be bit-identical to
        // per-column application or `solve_batch` loses its scalar parity.
        let a = fd_laplace_2d(8);
        let n = a.nrows();
        let out =
            McmcInverse::new(BuildConfig::default()).build(&a, McmcParams::new(0.5, 0.125, 0.0625));
        let k = 5usize;
        let r: Vec<f64> = (0..n * k)
            .map(|t| ((t * 11 + 5) as f64 * 0.053).sin())
            .collect();
        let mut z = vec![0.0; n * k];
        out.precond.apply_block(&r, k, &mut z);
        let mut rc = vec![0.0; n];
        let mut zc = vec![0.0; n];
        for c in 0..k {
            mcmcmi_dense::gather_col(&r, k, c, &mut rc);
            out.precond.apply(&rc, &mut zc);
            let mut got = vec![0.0; n];
            mcmcmi_dense::gather_col(&z, k, c, &mut got);
            assert_eq!(got, zc, "column {c}");
        }
    }

    #[test]
    fn into_session_batches_bit_identical_to_single_solves() {
        let a = fd_laplace_2d(10);
        let n = a.nrows();
        let out = McmcInverse::new(BuildConfig::default())
            .build(&a, McmcParams::new(0.1, 0.0625, 0.0625));
        let mut session = out.into_session(
            &a,
            mcmcmi_krylov::SolverType::Gmres,
            SolveOptions::default(),
        );
        let rhs: Vec<Vec<f64>> = (0..4)
            .map(|c| {
                (0..n)
                    .map(|i| (i as f64 * (0.2 + 0.09 * c as f64)).sin())
                    .collect()
            })
            .collect();
        let batch = session.solve_batch(&rhs);
        for (c, b) in rhs.iter().enumerate() {
            let single = session.solve(b);
            assert_eq!(batch[c].x, single.x, "column {c}");
            assert_eq!(batch[c].iterations, single.iterations, "column {c}");
        }
    }

    #[test]
    fn build_is_deterministic_and_seed_sensitive() {
        let a = pdd_real_sparse(64, 7);
        let builder = McmcInverse::new(BuildConfig::default());
        let p1 = builder.build(&a, McmcParams::new(1.0, 0.25, 0.25));
        let p2 = builder.build(&a, McmcParams::new(1.0, 0.25, 0.25));
        assert_eq!(p1.precond.matrix(), p2.precond.matrix());
        let p3 = McmcInverse::new(BuildConfig {
            seed: 99,
            ..Default::default()
        })
        .build(&a, McmcParams::new(1.0, 0.25, 0.25));
        assert_ne!(p1.precond.matrix(), p3.precond.matrix());
    }

    #[test]
    fn determinism_across_thread_counts() {
        let a = pdd_real_sparse(96, 3);
        let params = McmcParams::new(1.0, 0.125, 0.125);
        let builder = McmcInverse::new(BuildConfig::default());
        let reference = builder.build(&a, params).precond.matrix().clone();
        for threads in [1usize, 2, 5] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got = pool.install(|| builder.build(&a, params));
            assert_eq!(
                got.precond.matrix(),
                &reference,
                "thread count {threads} changed the result"
            );
        }
    }

    #[test]
    fn fill_budget_is_respected() {
        let a = fd_laplace_2d(12);
        let out =
            McmcInverse::new(BuildConfig::default()).build(&a, McmcParams::new(1.0, 0.05, 0.01));
        let p = out.precond.matrix();
        // Global budget: filling factor 2 ⇒ nnz(P) ≤ 2·nnz(A) + n slack.
        assert!(
            p.nnz() <= 2 * a.nnz() + a.nrows(),
            "nnz(P) = {} vs 2·nnz(A) = {}",
            p.nnz(),
            2 * a.nnz()
        );
    }

    #[test]
    fn near_zero_alpha_on_nondominant_matrix_diverges() {
        // Strongly non-dominant: the paper's divergence scenario.
        let mut coo = mcmcmi_sparse::Coo::new(16, 16);
        for i in 0..16 {
            coo.push(i, i, 1.0);
            coo.push(i, (i + 1) % 16, 2.5);
            coo.push(i, (i + 5) % 16, -2.5);
        }
        let a = coo.to_csr();
        let out =
            McmcInverse::new(BuildConfig::default()).build(&a, McmcParams::new(0.001, 0.125, 1e-3));
        assert!(out.noncontractive_fraction > 0.9);
        assert!(out.blown_up_chains > 0);
        assert!(out.likely_divergent());
        // Large α cures it.
        let ok =
            McmcInverse::new(BuildConfig::default()).build(&a, McmcParams::new(5.0, 0.125, 1e-3));
        assert_eq!(ok.noncontractive_fraction, 0.0);
        assert!(!ok.likely_divergent());
    }

    #[test]
    fn alpha_tradeoff_large_alpha_preconditions_worse() {
        // Huge α ⇒ P ≈ (A + αD)⁻¹ ≈ a scaled Jacobi, far from A⁻¹ ⇒ weaker
        // preconditioning than a moderate α. This is the non-trivial optimum
        // the tuner exploits.
        let a = fd_laplace_2d(16);
        let n = a.nrows();
        let b = vec![1.0; n];
        let builder = McmcInverse::new(BuildConfig::default());
        let moderate = builder.build(&a, McmcParams::new(0.1, 0.0625, 0.03125));
        let huge = builder.build(&a, McmcParams::new(50.0, 0.0625, 0.03125));
        let it_mod = gmres(&a, &b, &moderate.precond, SolveOptions::default()).iterations;
        let it_huge = gmres(&a, &b, &huge.precond, SolveOptions::default()).iterations;
        assert!(it_mod < it_huge, "moderate α {it_mod} !< huge α {it_huge}");
    }

    #[test]
    fn cancellation_duplicates_do_not_corrupt_csr() {
        // Signed off-diagonals make weight cancellation (a tally returning
        // to exactly 0.0 before the state is revisited) likely; the build
        // must still produce a structurally valid CSR. Regression test for
        // the duplicate-`touched` bug found by the dataset generator.
        let a = mcmcmi_matgen::unsteady_adv_diff(8, mcmcmi_matgen::AdvDiffOrder::One);
        let builder = McmcInverse::new(BuildConfig::default());
        for seed in 0..4u64 {
            let out = McmcInverse::new(BuildConfig {
                seed,
                ..Default::default()
            })
            .build(&a, McmcParams::new(1.0, 0.25, 0.5));
            assert!(out.precond.matrix().check_invariants().is_ok());
            let _ = &builder;
        }
    }

    #[test]
    fn rebuild_all_rows_is_bit_identical_to_fresh_build() {
        // Drift every row, then rebuild every row: must equal a fresh build
        // against the drifted operator bit-for-bit — same seeds, same
        // harvest, same budgets.
        let a = pdd_real_sparse(48, 5);
        let mut b = a.clone();
        for i in 0..b.nrows() {
            b.row_values_mut(i)[0] *= 1.0 + 1e-3;
        }
        let params = McmcParams::new(1.0, 0.25, 0.25);
        let builder = McmcInverse::new(BuildConfig::default());
        let mut out = builder.build(&a, params);
        let all: Vec<usize> = (0..a.nrows()).collect();
        builder.rebuild_rows(&mut out, &b, &all, params);
        let fresh = builder.build(&b, params);
        assert_eq!(out.precond.matrix(), fresh.precond.matrix());
        assert_eq!(out.transitions, fresh.transitions);
        assert_eq!(out.capped_chains, fresh.capped_chains);
        assert_eq!(out.blown_up_chains, fresh.blown_up_chains);
        assert_eq!(out.noncontractive_fraction, fresh.noncontractive_fraction);
    }

    #[test]
    fn rebuild_no_rows_is_a_noop() {
        let a = pdd_real_sparse(32, 2);
        let params = McmcParams::new(1.0, 0.25, 0.25);
        let builder = McmcInverse::new(BuildConfig::default());
        let mut out = builder.build(&a, params);
        let before = out.precond.matrix().clone();
        let transitions = out.transitions;
        builder.rebuild_rows(&mut out, &a, &[], params);
        assert_eq!(out.precond.matrix(), &before);
        assert_eq!(out.transitions, transitions);
    }

    #[test]
    fn rebuild_dirty_subset_keeps_clean_rows_and_refreshes_dirty_ones() {
        let a = pdd_real_sparse(40, 9);
        let params = McmcParams::new(1.0, 0.125, 0.125);
        let builder = McmcInverse::new(BuildConfig::default());
        let mut out = builder.build(&a, params);
        let before = out.precond.matrix().clone();
        // Perturb three rows of the operator.
        let mut b = a.clone();
        for &i in &[3usize, 17, 29] {
            for v in b.row_values_mut(i) {
                *v *= 1.0 + 5e-2;
            }
        }
        // Duplicates and unsorted order must be tolerated.
        builder.rebuild_rows(&mut out, &b, &[29, 3, 17, 3], params);
        let fresh = builder.build(&b, params);
        let got = out.precond.matrix();
        for i in 0..a.nrows() {
            if [3, 17, 29].contains(&i) {
                assert_eq!(
                    got.row_values(i),
                    fresh.precond.matrix().row_values(i),
                    "dirty row {i} must match a fresh build"
                );
            } else {
                assert_eq!(
                    got.row_values(i),
                    before.row_values(i),
                    "clean row {i} must be untouched"
                );
                assert_eq!(got.row_indices(i), before.row_indices(i));
            }
        }
        assert!(got.check_invariants().is_ok());
    }

    #[test]
    fn rebuild_rows_deterministic_across_thread_counts() {
        let a = pdd_real_sparse(64, 4);
        let params = McmcParams::new(1.0, 0.25, 0.25);
        let builder = McmcInverse::new(BuildConfig::default());
        let mut b = a.clone();
        for &i in &[5usize, 6, 40, 41, 42] {
            b.row_values_mut(i)[0] *= 1.02;
        }
        let dirty = [5usize, 6, 40, 41, 42];
        let reference = {
            let mut out = builder.build(&a, params);
            builder.rebuild_rows(&mut out, &b, &dirty, params);
            out.precond.matrix().clone()
        };
        for threads in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got = pool.install(|| {
                let mut out = builder.build(&a, params);
                builder.rebuild_rows(&mut out, &b, &dirty, params);
                out
            });
            assert_eq!(
                got.precond.matrix(),
                &reference,
                "thread count {threads} changed the rebuild"
            );
        }
    }

    #[test]
    #[should_panic(expected = "dimension change")]
    fn rebuild_rejects_dimension_change() {
        let a = pdd_real_sparse(32, 1);
        let params = McmcParams::new(1.0, 0.5, 0.5);
        let builder = McmcInverse::new(BuildConfig::default());
        let mut out = builder.build(&a, params);
        let smaller = pdd_real_sparse(16, 1);
        builder.rebuild_rows(&mut out, &smaller, &[0], params);
    }

    #[test]
    fn precond_dim_matches_matrix() {
        let a = pdd_real_sparse(32, 1);
        let out =
            McmcInverse::new(BuildConfig::default()).build(&a, McmcParams::new(1.0, 0.5, 0.5));
        assert_eq!(out.precond.dim(), 32);
        assert!(out.transitions > 0);
        assert_eq!(out.chains_per_row, 2);
    }
}
