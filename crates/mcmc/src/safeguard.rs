//! Safeguarded preconditioner builds: divergence detection + α backoff.
//!
//! The plain [`McmcInverse::build`](crate::McmcInverse::build) is honest
//! but unguarded: hand it a near-zero α on a non-dominant operator and it
//! will happily spend minutes simulating walks whose weights blow up,
//! then return a preconditioner full of Monte-Carlo garbage (the climate
//! operator `nonsym_r3_a11` at the old default α = 0.1 costs ~155 CPU
//! seconds to produce an unusable inverse). The safeguarded build makes
//! that failure mode cheap and *structured*:
//!
//! 1. **Pre-build spectral probe.** Walk-weight growth is governed by
//!    `ρ(|C|)`, the spectral radius of the entrywise-absolute iteration
//!    matrix of the Jacobi splitting `C = I − D̂⁻¹Â` — not by the row-sum
//!    ∞-norm bound, which cries wolf on matrices with a few heavy rows.
//!    A few deterministic power iterations
//!    ([`WalkMatrix::abs_spectral_radius_estimate`]) estimate it for the
//!    cost of `probe_iters` SpMV-like sweeps, so a divergent `(A, α)`
//!    pair is rejected *before* any chain is simulated.
//! 2. **Geometric α backoff.** The perturbation `Â = A + α·diag` shrinks
//!    every splitting row sum monotonically (`S(α) = S(0)/(1+α)`), so if
//!    the probe rejects α the safeguard retries at `α·growth`, walking up
//!    the one knob that provably restores contraction. Each attempt is
//!    recorded.
//! 3. **Post-build blow-up audit.** The probe is an estimate, so the
//!    safeguard also checks the built outcome's blown-chain count; a
//!    build whose blown fraction exceeds the configured limit is treated
//!    exactly like a probe rejection (backoff or error).
//!
//! On success the caller gets a [`SafeguardedBuild`] carrying the outcome,
//! the *effective* parameters (α may have been backed off), and the full
//! attempt trail; on exhaustion a structured [`BuildError`] replaces the
//! NaN-filled output the unguarded path would have produced.

use crate::builder::{BuildOutcome, McmcInverse};
use crate::compress::{CompressionPolicy, CompressionReport};
use crate::params::McmcParams;
use crate::walk::WalkMatrix;
use mcmcmi_sparse::Csr;
use serde::{Deserialize, Serialize};

/// Divergence-detection and backoff settings.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SafeguardConfig {
    /// Reject a build when the estimated `ρ(|C|)` is at or above this
    /// value. 1.0 is the exact contraction boundary; the default leaves a
    /// small margin because a barely-subcritical splitting still produces
    /// very long walks and a noisy inverse.
    pub rho_limit: f64,
    /// Power iterations for the spectral probe (each costs one sweep over
    /// nnz(C); 32 resolves ρ to well under the margin the limit leaves).
    pub probe_iters: usize,
    /// Total build attempts before giving up (first attempt + backoffs).
    pub max_attempts: usize,
    /// Multiplier applied to α between attempts (geometric backoff).
    pub alpha_growth: f64,
    /// Traction for the backoff at tiny α: each step proposes
    /// `max(α, alpha_floor) · alpha_growth`, so a requested α of 0 (or
    /// anything below the floor) backs off to `alpha_floor · alpha_growth`
    /// first instead of multiplying a near-zero value forever.
    pub alpha_floor: f64,
    /// A completed build is rejected when more than this fraction of its
    /// chains tripped the weight blow-up guard.
    pub blown_fraction_limit: f64,
}

impl Default for SafeguardConfig {
    fn default() -> Self {
        Self {
            rho_limit: 0.995,
            probe_iters: 32,
            // Rejected attempts are cheap (probe only, no walks), so the
            // budget is sized to escape even a severely non-contractive
            // starting point: floor 0.05 doubling 7 times reaches α = 6.4.
            max_attempts: 8,
            alpha_growth: 2.0,
            alpha_floor: 0.05,
            blown_fraction_limit: 1e-3,
        }
    }
}

/// One entry of the safeguard's attempt trail.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BuildAttempt {
    /// α used for this attempt.
    pub alpha: f64,
    /// Estimated `ρ(|C|)` at this α.
    pub rho_estimate: f64,
    /// Fraction of splitting rows with absolute row sum ≥ 1.
    pub noncontractive_fraction: f64,
    /// Blown-up chains of the completed build; `None` when the spectral
    /// probe rejected the attempt before any walk ran.
    pub blown_up_chains: Option<usize>,
}

/// Why a safeguarded build could not produce a usable preconditioner.
///
/// Serializable so the serving daemon's negative session-cache entries can
/// replay a poison operator's structured error (and persist it across
/// restarts) without re-burning the probe/build CPU.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum BuildError {
    /// Every attempt was rejected — by the spectral probe or by the
    /// post-build blow-up audit. The trail records each α tried.
    Divergent {
        /// One record per attempt, in order.
        attempts: Vec<BuildAttempt>,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Divergent { attempts } => {
                write!(
                    f,
                    "MCMC build divergent after {} attempt(s): ",
                    attempts.len()
                )?;
                for (k, a) in attempts.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "α={:.4} (ρ̂={:.3}", a.alpha, a.rho_estimate)?;
                    if let Some(blown) = a.blown_up_chains {
                        write!(f, ", {blown} blown chains")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// A build that passed the safeguard, with its provenance.
#[derive(Clone, Debug)]
pub struct SafeguardedBuild {
    /// The accepted build.
    pub outcome: BuildOutcome,
    /// Effective parameters — `alpha` reflects any backoff that happened.
    pub params: McmcParams,
    /// Every attempt made, including the successful last one.
    pub attempts: Vec<BuildAttempt>,
    /// `ρ(|C|)` estimate of the accepted splitting.
    pub rho_estimate: f64,
}

impl SafeguardedBuild {
    /// Did the safeguard have to move α away from the requested value?
    pub fn backed_off(&self) -> bool {
        self.attempts.len() > 1
    }

    /// Bind the accepted preconditioner to its matrix as a reusable
    /// [`mcmcmi_krylov::SolveSession`] (see [`BuildOutcome::into_session`]).
    pub fn into_session(
        self,
        a: &Csr,
        solver: mcmcmi_krylov::SolverType,
        opts: mcmcmi_krylov::SolveOptions,
    ) -> mcmcmi_krylov::SolveSession<mcmcmi_krylov::SparsePrecond> {
        self.outcome.into_session(a, solver, opts)
    }

    /// Compress the accepted preconditioner (see [`BuildOutcome::compress`]).
    pub fn compress(
        &self,
        policy: &CompressionPolicy,
    ) -> (mcmcmi_krylov::CompressedPrecond, CompressionReport) {
        self.outcome.compress(policy)
    }

    /// Compress and bind in one step (see
    /// [`BuildOutcome::into_compressed_session`]) — the hook the
    /// auto-tuner uses to hand callers a tuned, compressed session.
    pub fn into_compressed_session(
        self,
        a: &Csr,
        policy: &CompressionPolicy,
        solver: mcmcmi_krylov::SolverType,
        opts: mcmcmi_krylov::SolveOptions,
    ) -> (
        mcmcmi_krylov::SolveSession<mcmcmi_krylov::CompressedPrecond>,
        CompressionReport,
    ) {
        self.outcome
            .into_compressed_session(a, policy, solver, opts)
    }
}

impl McmcInverse {
    /// Build `P ≈ (A + α·diag)⁻¹` behind the divergence safeguard: probe
    /// `ρ(|C|)` first, back α off geometrically while the splitting is
    /// non-contractive, audit the finished build's blown-chain fraction,
    /// and return a structured [`BuildError`] if the attempt budget runs
    /// out. A clean first attempt is bit-identical to the unguarded
    /// [`McmcInverse::build`] at the same parameters.
    pub fn build_safeguarded(
        &self,
        a: &Csr,
        params: McmcParams,
        guard: &SafeguardConfig,
    ) -> Result<SafeguardedBuild, BuildError> {
        assert!(
            guard.max_attempts >= 1,
            "build_safeguarded: need at least one attempt"
        );
        assert!(
            guard.alpha_growth > 1.0,
            "build_safeguarded: alpha_growth must exceed 1"
        );
        let mut attempts: Vec<BuildAttempt> = Vec::with_capacity(guard.max_attempts);
        let mut alpha = params.alpha;
        for _ in 0..guard.max_attempts {
            let walk = WalkMatrix::from_perturbed(a, alpha);
            let rho = walk.abs_spectral_radius_estimate(guard.probe_iters);
            let ncf = walk.noncontractive_fraction();
            if rho.is_nan() || rho >= guard.rho_limit {
                // Probe rejection (also catches a NaN/∞ estimate): no
                // walks were run, so this attempt cost O(probe_iters·nnz).
                attempts.push(BuildAttempt {
                    alpha,
                    rho_estimate: rho,
                    noncontractive_fraction: ncf,
                    blown_up_chains: None,
                });
                alpha = next_alpha(alpha, guard);
                continue;
            }
            let attempt_params = McmcParams::new(alpha, params.eps, params.delta);
            let outcome = self.build(a, attempt_params);
            let total_chains = a.nrows() * outcome.chains_per_row;
            let blown_fraction = if total_chains == 0 {
                0.0
            } else {
                outcome.blown_up_chains as f64 / total_chains as f64
            };
            attempts.push(BuildAttempt {
                alpha,
                rho_estimate: rho,
                noncontractive_fraction: ncf,
                blown_up_chains: Some(outcome.blown_up_chains),
            });
            if blown_fraction > guard.blown_fraction_limit || outcome.likely_divergent() {
                alpha = next_alpha(alpha, guard);
                continue;
            }
            return Ok(SafeguardedBuild {
                outcome,
                params: attempt_params,
                attempts,
                rho_estimate: rho,
            });
        }
        Err(BuildError::Divergent { attempts })
    }
}

/// Geometric backoff step with the configured floor.
fn next_alpha(alpha: f64, guard: &SafeguardConfig) -> f64 {
    alpha.max(guard.alpha_floor) * guard.alpha_growth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BuildConfig;
    use mcmcmi_sparse::Coo;

    /// Strongly non-dominant ring: divergent at tiny α, cured by larger α.
    fn nondominant(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0);
            coo.push(i, (i + 1) % n, 2.5);
            coo.push(i, (i + 5) % n, -2.5);
        }
        coo.to_csr()
    }

    #[test]
    fn clean_build_is_bit_identical_to_unguarded() {
        let a = mcmcmi_matgen::fd_laplace_2d(10);
        let params = McmcParams::new(0.5, 0.25, 0.125);
        let builder = McmcInverse::new(BuildConfig::default());
        let plain = builder.build(&a, params);
        let guarded = builder
            .build_safeguarded(&a, params, &SafeguardConfig::default())
            .expect("laplacian at α=0.5 must pass");
        assert_eq!(guarded.outcome.precond.matrix(), plain.precond.matrix());
        assert!(!guarded.backed_off());
        assert_eq!(guarded.params, params);
        assert_eq!(guarded.attempts.len(), 1);
        assert!(guarded.rho_estimate < 1.0);
        assert!(guarded.attempts[0].blown_up_chains.is_some());
    }

    #[test]
    fn probe_rejects_before_any_walk_runs() {
        let a = nondominant(32);
        let err = McmcInverse::new(BuildConfig::default())
            .build_safeguarded(
                &a,
                McmcParams::new(0.001, 0.125, 1e-3),
                &SafeguardConfig {
                    max_attempts: 1,
                    ..Default::default()
                },
            )
            .unwrap_err();
        let BuildError::Divergent { attempts } = err;
        assert_eq!(attempts.len(), 1);
        assert!(attempts[0].rho_estimate >= 1.0);
        // Pre-build rejection: no chains were simulated at all.
        assert_eq!(attempts[0].blown_up_chains, None);
    }

    #[test]
    fn backoff_cures_a_divergent_alpha() {
        let a = nondominant(32);
        let guarded = McmcInverse::new(BuildConfig::default())
            .build_safeguarded(
                &a,
                McmcParams::new(0.001, 0.25, 0.125),
                &SafeguardConfig::default(),
            )
            .expect("backoff must reach a contractive α");
        assert!(guarded.backed_off());
        assert!(guarded.params.alpha > 0.001);
        assert!(guarded.rho_estimate < SafeguardConfig::default().rho_limit);
        assert_eq!(guarded.outcome.blown_up_chains, 0);
        // ε and δ are untouched by the backoff.
        assert_eq!(guarded.params.eps, 0.25);
        assert_eq!(guarded.params.delta, 0.125);
        // The trail starts at the requested α and grows geometrically.
        assert_eq!(guarded.attempts[0].alpha, 0.001);
        for w in guarded.attempts.windows(2) {
            assert!(w[1].alpha > w[0].alpha);
        }
    }

    #[test]
    fn exhausted_budget_reports_every_attempt() {
        let a = nondominant(32);
        let guard = SafeguardConfig {
            max_attempts: 3,
            alpha_growth: 1.1, // too timid to escape in 3 tries from 1e-4
            alpha_floor: 1e-4,
            ..Default::default()
        };
        let err = McmcInverse::new(BuildConfig::default())
            .build_safeguarded(&a, McmcParams::new(1e-4, 0.5, 0.5), &guard)
            .unwrap_err();
        let BuildError::Divergent { attempts } = &err;
        assert_eq!(attempts.len(), 3);
        let msg = err.to_string();
        assert!(msg.contains("3 attempt(s)"), "{msg}");
    }

    #[test]
    fn spectral_probe_beats_the_rowsum_bound() {
        // One heavy row (S > 1) in an otherwise strongly dominant matrix:
        // the ∞-norm bound is pessimistic, ρ(|C|) is honest, and the build
        // genuinely succeeds — the safeguard must not reject it.
        let n = 24;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 10.0);
            coo.push(i, (i + 1) % n, -1.0);
        }
        // Row 0 couples strongly to row 1, but row 1 is heavily damped, so
        // the product of row sums stays well under 1.
        coo.push(0, 2, 10.5);
        let a = coo.to_csr();
        let w = WalkMatrix::from_perturbed(&a, 0.0);
        assert!(w.noncontractive_fraction() > 0.0, "need a heavy row");
        let guarded = McmcInverse::new(BuildConfig::default())
            .build_safeguarded(
                &a,
                McmcParams::new(0.0, 0.25, 0.125),
                &SafeguardConfig {
                    alpha_floor: 1e-6,
                    ..Default::default()
                },
            )
            .expect("ρ(|C|) < 1 splitting must pass despite a heavy row");
        assert!(!guarded.backed_off());
        assert!(guarded.rho_estimate < 1.0);
    }

    #[test]
    fn alpha_zero_backs_off_through_the_floor() {
        let a = nondominant(16);
        let guarded = McmcInverse::new(BuildConfig::default())
            .build_safeguarded(
                &a,
                McmcParams::new(0.0, 0.5, 0.5),
                &SafeguardConfig {
                    max_attempts: 12,
                    ..Default::default()
                },
            )
            .expect("floor + growth must escape α = 0");
        assert!(guarded.params.alpha > 0.0);
    }

    #[test]
    fn attempt_trail_serializes() {
        let a = nondominant(16);
        let guarded = McmcInverse::new(BuildConfig::default())
            .build_safeguarded(
                &a,
                McmcParams::new(0.01, 0.5, 0.5),
                &SafeguardConfig::default(),
            )
            .unwrap();
        let s = serde_json::to_string(&guarded.attempts).unwrap();
        let back: Vec<BuildAttempt> = serde_json::from_str(&s).unwrap();
        assert_eq!(back.len(), guarded.attempts.len());
        assert_eq!(back[0].alpha, guarded.attempts[0].alpha);
    }
}
