//! The mcmc side of the recovery ladder: a [`PrecondRebuild`] hook that
//! re-runs the safeguarded build with α backed off one more geometric step
//! each time the ladder asks.
//!
//! Rung 3 of `mcmcmi_krylov`'s [`RecoveryPolicy`] escalation is "rebuild
//! the preconditioner" — but the krylov crate cannot know *how* MCMC
//! builds work. [`SafeguardedRebuilder`] closes the loop: it owns the
//! matrix reference, the current [`McmcParams`], and a [`SafeguardConfig`],
//! and every [`PrecondRebuild::rebuild`] call advances α by the same
//! `max(α, floor) × growth` step PR-5's in-build backoff uses, then runs
//! [`McmcInverse::build_safeguarded`] from there. The full [`BuildAttempt`]
//! trail accumulates across calls, so a caller can see exactly which α
//! values were burned on recovery.
//!
//! [`RecoveryPolicy`]: mcmcmi_krylov::RecoveryPolicy

use crate::builder::{BuildOutcome, McmcInverse};
use crate::params::McmcParams;
use crate::safeguard::{BuildAttempt, BuildError, SafeguardConfig};
use mcmcmi_krylov::{PrecondRebuild, PrecondRefresh, Preconditioner, SolveFailure};
use mcmcmi_sparse::Csr;

/// A [`PrecondRebuild`] implementation backed by the safeguarded MCMC
/// build: each `rebuild` call backs α off one geometric step and rebuilds.
pub struct SafeguardedRebuilder<'a> {
    a: &'a Csr,
    builder: McmcInverse,
    params: McmcParams,
    guard: SafeguardConfig,
    symmetrize: bool,
    attempts: Vec<BuildAttempt>,
    rebuilds: usize,
    max_rebuilds: usize,
}

impl<'a> SafeguardedRebuilder<'a> {
    /// A rebuilder starting from the parameters the failed preconditioner
    /// was built with. `symmetrize` should be `true` when the consuming
    /// driver is the CG family (the MCMC inverse is generally
    /// nonsymmetric).
    pub fn new(
        a: &'a Csr,
        builder: McmcInverse,
        params: McmcParams,
        guard: SafeguardConfig,
        symmetrize: bool,
    ) -> Self {
        Self {
            a,
            builder,
            params,
            guard,
            symmetrize,
            attempts: Vec::new(),
            rebuilds: 0,
            max_rebuilds: 2,
        }
    }

    /// Cap on how many rebuilds this hook will serve (default 2); further
    /// `rebuild` calls return `None` so the ladder falls through to its
    /// unpreconditioned floor instead of burning build time forever.
    pub fn with_max_rebuilds(mut self, max_rebuilds: usize) -> Self {
        self.max_rebuilds = max_rebuilds;
        self
    }

    /// Every build attempt made across all rebuild calls, in order —
    /// the same [`BuildAttempt`] records PR-5's safeguard machinery emits.
    pub fn attempts(&self) -> &[BuildAttempt] {
        &self.attempts
    }

    /// The parameters the *next* rebuild would start from (α reflects the
    /// backoffs taken so far).
    pub fn params(&self) -> McmcParams {
        self.params
    }
}

/// A [`PrecondRefresh`] implementation backed by
/// [`McmcInverse::rebuild_rows`]: the stale-refresh rung of the recovery
/// ladder re-estimates only the rows drift dirtied, which is dramatically
/// cheaper than the full rebuild rung below it.
///
/// The refresher is **single-shot**: the dirty-row set describes one
/// concrete drift event, so serving a second refresh from the same set
/// would just repeat identical walks. After the first call (or when the
/// dirty set is empty) `refresh` returns `None` and the ladder escalates
/// to the rebuild rung.
pub struct PartialRefresher<'a> {
    a: &'a Csr,
    outcome: &'a mut BuildOutcome,
    dirty: Vec<usize>,
    builder: McmcInverse,
    params: McmcParams,
    symmetrize: bool,
    spent: bool,
}

impl<'a> PartialRefresher<'a> {
    /// A refresher that will rebuild `dirty` rows of `outcome` against the
    /// drifted operator `a` when the ladder asks. `symmetrize` mirrors
    /// [`SafeguardedRebuilder::new`]: set it when the consuming driver is
    /// the CG family.
    pub fn new(
        a: &'a Csr,
        outcome: &'a mut BuildOutcome,
        dirty: Vec<usize>,
        builder: McmcInverse,
        params: McmcParams,
        symmetrize: bool,
    ) -> Self {
        Self {
            a,
            outcome,
            dirty,
            builder,
            params,
            symmetrize,
            spent: false,
        }
    }

    /// Whether the single refresh this hook can serve has been consumed.
    pub fn spent(&self) -> bool {
        self.spent
    }
}

impl PrecondRefresh for PartialRefresher<'_> {
    fn refresh(&mut self, _trigger: &SolveFailure) -> Option<Box<dyn Preconditioner>> {
        if self.spent || self.dirty.is_empty() {
            return None;
        }
        self.spent = true;
        self.builder
            .rebuild_rows(self.outcome, self.a, &self.dirty, self.params);
        let precond = if self.symmetrize {
            self.outcome.precond.symmetrized()
        } else {
            self.outcome.precond.clone()
        };
        Some(Box::new(precond))
    }
}

impl PrecondRebuild for SafeguardedRebuilder<'_> {
    fn rebuild(&mut self, _trigger: &SolveFailure) -> Option<Box<dyn Preconditioner>> {
        if self.rebuilds >= self.max_rebuilds {
            return None;
        }
        self.rebuilds += 1;
        // One geometric backoff step before the safeguarded build — the
        // previous α already produced a preconditioner that failed a solve,
        // so retrying it unchanged would reproduce the same operator.
        self.params.alpha = self.params.alpha.max(self.guard.alpha_floor) * self.guard.alpha_growth;
        match self
            .builder
            .build_safeguarded(self.a, self.params, &self.guard)
        {
            Ok(guarded) => {
                self.attempts.extend_from_slice(&guarded.attempts);
                self.params = guarded.params;
                let precond = if self.symmetrize {
                    guarded.outcome.precond.symmetrized()
                } else {
                    guarded.outcome.precond
                };
                Some(Box::new(precond))
            }
            Err(BuildError::Divergent { attempts }) => {
                self.attempts.extend_from_slice(&attempts);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BuildConfig;
    use mcmcmi_krylov::{
        solve_resilient, RecoveryContext, RecoveryPolicy, RecoveryStepKind, SolverType,
    };

    #[test]
    fn rebuilder_backs_alpha_off_and_builds() {
        let a = mcmcmi_matgen::fd_laplace_2d(8);
        let params = McmcParams::new(0.5, 0.5, 0.25);
        let mut rb = SafeguardedRebuilder::new(
            &a,
            McmcInverse::new(BuildConfig::default()),
            params,
            SafeguardConfig::default(),
            false,
        );
        let p = rb
            .rebuild(&SolveFailure::BudgetExhausted)
            .expect("laplacian build must pass");
        assert_eq!(p.dim(), a.nrows());
        assert!(rb.params().alpha > 0.5, "α must have backed off upward");
        assert!(!rb.attempts().is_empty());
    }

    #[test]
    fn rebuild_cap_exhausts_to_none() {
        let a = mcmcmi_matgen::fd_laplace_2d(6);
        let mut rb = SafeguardedRebuilder::new(
            &a,
            McmcInverse::new(BuildConfig::default()),
            McmcParams::new(0.5, 0.5, 0.25),
            SafeguardConfig::default(),
            false,
        )
        .with_max_rebuilds(1);
        assert!(rb.rebuild(&SolveFailure::BudgetExhausted).is_some());
        assert!(rb.rebuild(&SolveFailure::BudgetExhausted).is_none());
    }

    #[test]
    fn ladder_stale_refresh_rung_uses_the_partial_refresher() {
        // Start from a preconditioner built for a *drifted-away* operator
        // and starve the base solve; the stale-refresh rung rebuilds only
        // the dirty rows and must recover before the full-rebuild rung.
        let a = mcmcmi_matgen::fd_laplace_2d(8);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        let params = McmcParams::new(0.1, 0.125, 0.0625);
        let builder = McmcInverse::new(BuildConfig::default());
        let mut outcome = builder.build(&a, params);
        let dirty: Vec<usize> = (0..n).collect();
        let mut refresher =
            PartialRefresher::new(&a, &mut outcome, dirty, builder.clone(), params, true);
        let opts = mcmcmi_krylov::SolveOptions {
            max_iter: 2, // starve the base solve into BudgetExhausted
            ..Default::default()
        };
        let policy = RecoveryPolicy {
            full_precision_retry: false,
            flexible_swap: false,
            rebuild: false,
            ..Default::default()
        };
        let res = solve_resilient(
            &a,
            &b,
            &mcmcmi_krylov::IdentityPrecond::new(n),
            SolverType::Cg,
            opts,
            &policy,
            RecoveryContext {
                refresher: Some(&mut refresher),
                ..Default::default()
            },
        );
        assert!(res
            .trail
            .steps
            .iter()
            .any(|s| s.step == RecoveryStepKind::StaleRefresh));
        assert!(refresher.spent());
    }

    #[test]
    fn spent_refresher_returns_none() {
        let a = mcmcmi_matgen::fd_laplace_2d(6);
        let params = McmcParams::new(0.5, 0.25, 0.25);
        let builder = McmcInverse::new(BuildConfig::default());
        let mut outcome = builder.build(&a, params);
        let mut refresher =
            PartialRefresher::new(&a, &mut outcome, vec![0, 1], builder, params, false);
        assert!(refresher.refresh(&SolveFailure::BudgetExhausted).is_some());
        assert!(refresher.refresh(&SolveFailure::BudgetExhausted).is_none());
    }

    #[test]
    fn ladder_rebuild_rung_uses_the_mcmc_rebuilder() {
        // Identity "preconditioner" that lies about convergence never helps
        // CG on this operator within 3 iterations, so the ladder reaches the
        // rebuild rung; the rebuilt MCMC inverse (or the floor) recovers.
        let a = mcmcmi_matgen::fd_laplace_2d(8);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).sin()).collect();
        let mut rb = SafeguardedRebuilder::new(
            &a,
            McmcInverse::new(BuildConfig::default()),
            McmcParams::new(0.5, 0.25, 0.125),
            SafeguardConfig::default(),
            true,
        );
        let opts = mcmcmi_krylov::SolveOptions {
            max_iter: 3, // starve the base solve so it fails with BudgetExhausted
            ..Default::default()
        };
        let policy = RecoveryPolicy {
            flexible_swap: false,
            unpreconditioned_fallback: false,
            ..Default::default()
        };
        let res = solve_resilient(
            &a,
            &b,
            &mcmcmi_krylov::IdentityPrecond::new(n),
            SolverType::Cg,
            opts,
            &policy,
            RecoveryContext {
                rebuilder: Some(&mut rb),
                ..Default::default()
            },
        );
        assert!(!res.trail.is_clean());
        assert!(res
            .trail
            .steps
            .iter()
            .any(|s| s.step == RecoveryStepKind::Rebuild));
    }
}
