//! The mcmc side of the recovery ladder: a [`PrecondRebuild`] hook that
//! re-runs the safeguarded build with α backed off one more geometric step
//! each time the ladder asks.
//!
//! Rung 3 of `mcmcmi_krylov`'s [`RecoveryPolicy`] escalation is "rebuild
//! the preconditioner" — but the krylov crate cannot know *how* MCMC
//! builds work. [`SafeguardedRebuilder`] closes the loop: it owns the
//! matrix reference, the current [`McmcParams`], and a [`SafeguardConfig`],
//! and every [`PrecondRebuild::rebuild`] call advances α by the same
//! `max(α, floor) × growth` step PR-5's in-build backoff uses, then runs
//! [`McmcInverse::build_safeguarded`] from there. The full [`BuildAttempt`]
//! trail accumulates across calls, so a caller can see exactly which α
//! values were burned on recovery.
//!
//! [`RecoveryPolicy`]: mcmcmi_krylov::RecoveryPolicy

use crate::builder::McmcInverse;
use crate::params::McmcParams;
use crate::safeguard::{BuildAttempt, BuildError, SafeguardConfig};
use mcmcmi_krylov::{PrecondRebuild, Preconditioner, SolveFailure};
use mcmcmi_sparse::Csr;

/// A [`PrecondRebuild`] implementation backed by the safeguarded MCMC
/// build: each `rebuild` call backs α off one geometric step and rebuilds.
pub struct SafeguardedRebuilder<'a> {
    a: &'a Csr,
    builder: McmcInverse,
    params: McmcParams,
    guard: SafeguardConfig,
    symmetrize: bool,
    attempts: Vec<BuildAttempt>,
    rebuilds: usize,
    max_rebuilds: usize,
}

impl<'a> SafeguardedRebuilder<'a> {
    /// A rebuilder starting from the parameters the failed preconditioner
    /// was built with. `symmetrize` should be `true` when the consuming
    /// driver is the CG family (the MCMC inverse is generally
    /// nonsymmetric).
    pub fn new(
        a: &'a Csr,
        builder: McmcInverse,
        params: McmcParams,
        guard: SafeguardConfig,
        symmetrize: bool,
    ) -> Self {
        Self {
            a,
            builder,
            params,
            guard,
            symmetrize,
            attempts: Vec::new(),
            rebuilds: 0,
            max_rebuilds: 2,
        }
    }

    /// Cap on how many rebuilds this hook will serve (default 2); further
    /// `rebuild` calls return `None` so the ladder falls through to its
    /// unpreconditioned floor instead of burning build time forever.
    pub fn with_max_rebuilds(mut self, max_rebuilds: usize) -> Self {
        self.max_rebuilds = max_rebuilds;
        self
    }

    /// Every build attempt made across all rebuild calls, in order —
    /// the same [`BuildAttempt`] records PR-5's safeguard machinery emits.
    pub fn attempts(&self) -> &[BuildAttempt] {
        &self.attempts
    }

    /// The parameters the *next* rebuild would start from (α reflects the
    /// backoffs taken so far).
    pub fn params(&self) -> McmcParams {
        self.params
    }
}

impl PrecondRebuild for SafeguardedRebuilder<'_> {
    fn rebuild(&mut self, _trigger: &SolveFailure) -> Option<Box<dyn Preconditioner>> {
        if self.rebuilds >= self.max_rebuilds {
            return None;
        }
        self.rebuilds += 1;
        // One geometric backoff step before the safeguarded build — the
        // previous α already produced a preconditioner that failed a solve,
        // so retrying it unchanged would reproduce the same operator.
        self.params.alpha = self.params.alpha.max(self.guard.alpha_floor) * self.guard.alpha_growth;
        match self
            .builder
            .build_safeguarded(self.a, self.params, &self.guard)
        {
            Ok(guarded) => {
                self.attempts.extend_from_slice(&guarded.attempts);
                self.params = guarded.params;
                let precond = if self.symmetrize {
                    guarded.outcome.precond.symmetrized()
                } else {
                    guarded.outcome.precond
                };
                Some(Box::new(precond))
            }
            Err(BuildError::Divergent { attempts }) => {
                self.attempts.extend_from_slice(&attempts);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BuildConfig;
    use mcmcmi_krylov::{
        solve_resilient, RecoveryContext, RecoveryPolicy, RecoveryStepKind, SolverType,
    };

    #[test]
    fn rebuilder_backs_alpha_off_and_builds() {
        let a = mcmcmi_matgen::fd_laplace_2d(8);
        let params = McmcParams::new(0.5, 0.5, 0.25);
        let mut rb = SafeguardedRebuilder::new(
            &a,
            McmcInverse::new(BuildConfig::default()),
            params,
            SafeguardConfig::default(),
            false,
        );
        let p = rb
            .rebuild(&SolveFailure::BudgetExhausted)
            .expect("laplacian build must pass");
        assert_eq!(p.dim(), a.nrows());
        assert!(rb.params().alpha > 0.5, "α must have backed off upward");
        assert!(!rb.attempts().is_empty());
    }

    #[test]
    fn rebuild_cap_exhausts_to_none() {
        let a = mcmcmi_matgen::fd_laplace_2d(6);
        let mut rb = SafeguardedRebuilder::new(
            &a,
            McmcInverse::new(BuildConfig::default()),
            McmcParams::new(0.5, 0.5, 0.25),
            SafeguardConfig::default(),
            false,
        )
        .with_max_rebuilds(1);
        assert!(rb.rebuild(&SolveFailure::BudgetExhausted).is_some());
        assert!(rb.rebuild(&SolveFailure::BudgetExhausted).is_none());
    }

    #[test]
    fn ladder_rebuild_rung_uses_the_mcmc_rebuilder() {
        // Identity "preconditioner" that lies about convergence never helps
        // CG on this operator within 3 iterations, so the ladder reaches the
        // rebuild rung; the rebuilt MCMC inverse (or the floor) recovers.
        let a = mcmcmi_matgen::fd_laplace_2d(8);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).sin()).collect();
        let mut rb = SafeguardedRebuilder::new(
            &a,
            McmcInverse::new(BuildConfig::default()),
            McmcParams::new(0.5, 0.25, 0.125),
            SafeguardConfig::default(),
            true,
        );
        let opts = mcmcmi_krylov::SolveOptions {
            max_iter: 3, // starve the base solve so it fails with BudgetExhausted
            ..Default::default()
        };
        let policy = RecoveryPolicy {
            flexible_swap: false,
            unpreconditioned_fallback: false,
            ..Default::default()
        };
        let res = solve_resilient(
            &a,
            &b,
            &mcmcmi_krylov::IdentityPrecond::new(n),
            SolverType::Cg,
            opts,
            &policy,
            RecoveryContext {
                full_precision: None,
                rebuilder: Some(&mut rb),
            },
        );
        assert!(!res.trail.is_clean());
        assert!(res
            .trail
            .steps
            .iter()
            .any(|s| s.step == RecoveryStepKind::Rebuild));
    }
}
