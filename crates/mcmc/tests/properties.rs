//! Property-based tests for preconditioner compression.
//!
//! The load-bearing contract: the identity policy (`drop_tol = 0`, no
//! row cap, f64 storage) is a *bit-identical* round trip of the
//! preconditioner CSR — pattern and values — because the whole
//! compressed-path validation story (CI smoke, perf-record baseline
//! parity) leans on it.

use mcmcmi_krylov::{CompressedPrecond, Preconditioner};
use mcmcmi_mcmc::{compress, sparsify, BuildConfig, CompressionPolicy, McmcInverse, McmcParams};
use mcmcmi_sparse::{Coo, Csr};
use proptest::prelude::*;

/// Strategy: a random sparse square matrix as (n, triplets) with a wide
/// magnitude spread so drop tolerances actually discriminate.
fn arb_matrix() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (2usize..16).prop_flat_map(|n| {
        let triplet = (0..n, 0..n, -8i32..=8);
        proptest::collection::vec(triplet, 0..80).prop_map(move |ts| {
            (
                n,
                ts.into_iter()
                    .map(|(i, j, e)| {
                        (
                            i,
                            j,
                            10f64.powi(e / 2) * if e % 3 == 0 { -1.0 } else { 1.0 },
                        )
                    })
                    .collect(),
            )
        })
    })
}

fn build(n: usize, ts: &[(usize, usize, f64)]) -> Csr {
    let mut coo = Coo::new(n, n);
    for &(i, j, v) in ts {
        coo.push(i, j, v);
    }
    coo.to_csr()
}

proptest! {
    /// drop_tol = 0 + f64 storage round-trips pattern and values exactly.
    #[test]
    fn identity_policy_roundtrips_bit_exact((n, ts) in arb_matrix()) {
        let p = build(n, &ts);
        let kept = sparsify(&p, 0.0, None);
        prop_assert_eq!(kept.indptr(), p.indptr());
        for i in 0..n {
            prop_assert_eq!(kept.row_indices(i), p.row_indices(i));
            prop_assert_eq!(kept.row_values(i), p.row_values(i));
        }
        let (cp, report) = compress(&p, &CompressionPolicy::default());
        prop_assert_eq!(report.nnz_before, report.nnz_after);
        prop_assert_eq!(report.nnz_kept, 1.0);
        prop_assert_eq!(report.fro_mass_kept, 1.0);
        match cp {
            CompressedPrecond::F64(sp) => prop_assert_eq!(sp.matrix(), &p),
            CompressedPrecond::F32(_) => prop_assert!(false, "identity policy must stay f64"),
        }
    }

    /// Sparsification never invents entries, keeps survivors' values
    /// untouched, and is monotone in the drop tolerance.
    #[test]
    fn sparsify_is_a_monotone_subset((n, ts) in arb_matrix()) {
        let p = build(n, &ts);
        let mild = sparsify(&p, 1e-4, None);
        let harsh = sparsify(&p, 1e-1, None);
        prop_assert!(harsh.nnz() <= mild.nnz());
        prop_assert!(mild.nnz() <= p.nnz());
        prop_assert!(mild.check_invariants().is_ok());
        prop_assert!(harsh.check_invariants().is_ok());
        for (i, j, v) in mild.triplets() {
            prop_assert_eq!(v, p.get(i, j));
        }
        for (i, j, v) in harsh.triplets() {
            // Everything harsh keeps, mild keeps too (thresholds nest).
            prop_assert_eq!(mild.get(i, j), v);
        }
    }

    /// A row cap of k leaves at most k entries per row, never drops a
    /// stored diagonal (it claims one slot with priority), and fills the
    /// remaining slots with the largest-magnitude off-diagonals.
    #[test]
    fn row_topk_caps_and_never_drops_the_diagonal(((n, ts), cap) in (arb_matrix(), 1usize..4)) {
        let p = build(n, &ts);
        let kept = sparsify(&p, 0.0, Some(cap));
        for i in 0..n {
            prop_assert!(kept.row_indices(i).len() <= cap);
            // The satellite contract: a cap smaller than the row's nnz
            // must not evict the diagonal.
            if p.row_indices(i).contains(&i) {
                prop_assert!(
                    kept.row_indices(i).contains(&i),
                    "row {} lost its diagonal under cap {}", i, cap
                );
            } else if !p.row_indices(i).is_empty() {
                // No diagonal stored: the heaviest entry survives.
                let best = p.row_values(i).iter().fold(0.0f64, |m, v| m.max(v.abs()));
                let kept_best = kept
                    .row_values(i)
                    .iter()
                    .fold(0.0f64, |m, v| m.max(v.abs()));
                prop_assert_eq!(kept_best, best, "row {} lost its heaviest entry", i);
            }
            // Off-diagonal selection is by magnitude: every kept
            // off-diagonal is at least as heavy as every dropped one.
            let kept_cols = kept.row_indices(i);
            let min_kept = p
                .row_indices(i)
                .iter()
                .zip(p.row_values(i))
                .filter(|(&j, _)| j != i && kept_cols.contains(&j))
                .fold(f64::INFINITY, |m, (_, v)| m.min(v.abs()));
            let max_dropped = p
                .row_indices(i)
                .iter()
                .zip(p.row_values(i))
                .filter(|(&j, _)| j != i && !kept_cols.contains(&j))
                .fold(0.0f64, |m, (_, v)| m.max(v.abs()));
            prop_assert!(
                min_kept >= max_dropped,
                "row {}: kept off-diagonal {} lighter than dropped {}",
                i, min_kept, max_dropped
            );
        }
    }

    /// `drop_tol` edge cases: empty rows stay empty, singleton rows are
    /// untouched for any tolerance ≤ 1 (the sole entry is its own row
    /// maximum), and a stored diagonal survives any tolerance.
    #[test]
    fn drop_tol_zero_and_singleton_rows(((n, ts), tol) in (arb_matrix(), 0.0f64..1.0)) {
        let p = build(n, &ts);
        let kept = sparsify(&p, tol, None);
        for i in 0..n {
            if p.row_indices(i).is_empty() {
                prop_assert!(kept.row_indices(i).is_empty(), "row {} grew entries", i);
            }
            if p.row_indices(i).len() == 1 {
                prop_assert_eq!(kept.row_indices(i), p.row_indices(i),
                    "singleton row {} was modified", i);
                prop_assert_eq!(kept.row_values(i), p.row_values(i));
            }
            if p.row_indices(i).contains(&i) {
                prop_assert!(kept.row_indices(i).contains(&i),
                    "row {} lost its diagonal at drop_tol {}", i, tol);
            }
        }
    }

    /// Report invariants for arbitrary policies: the nnz ratio and the
    /// Frobenius mass fraction are genuine fractions, byte accounting
    /// matches the precision, and compression never grows the operator.
    #[test]
    fn report_invariants_hold_for_any_policy(
        ((n, ts), tol, cap_raw, precision_raw)
            in (arb_matrix(), 0.0f64..0.5, 0usize..6, 0usize..2)
    ) {
        let f32_storage = precision_raw == 1;
        let p = build(n, &ts);
        let policy = CompressionPolicy {
            drop_tol: tol,
            // 0 encodes "no cap" so the cap axis covers both branches.
            row_topk: if cap_raw == 0 { None } else { Some(cap_raw) },
            precision: if f32_storage {
                mcmcmi_mcmc::StoragePrecision::F32
            } else {
                mcmcmi_mcmc::StoragePrecision::F64
            },
        };
        let (cp, r) = compress(&p, &policy);
        prop_assert!(r.nnz_after <= r.nnz_before, "nnz grew");
        prop_assert!((0.0..=1.0).contains(&r.nnz_kept) || r.nnz_before == 0,
            "nnz_kept {} out of range", r.nnz_kept);
        prop_assert!((0.0..=1.0).contains(&r.fro_mass_kept),
            "fro_mass_kept {} out of range", r.fro_mass_kept);
        prop_assert_eq!(r.value_bytes_before, p.nnz() * 8);
        let per_value = if f32_storage { 4 } else { 8 };
        prop_assert_eq!(r.value_bytes_after, r.nnz_after * per_value);
        prop_assert_eq!(cp.nnz(), r.nnz_after);
        prop_assert_eq!(cp.value_bytes(), r.value_bytes_after);
    }
}

/// The same round-trip contract on a *real* MCMC-built preconditioner —
/// the object the policy is actually applied to in the pipeline.
#[test]
fn identity_policy_roundtrips_a_built_preconditioner() {
    let a = mcmcmi_matgen::fd_laplace_2d(8);
    let out =
        McmcInverse::new(BuildConfig::default()).build(&a, McmcParams::new(0.5, 0.125, 0.0625));
    let p = out.precond.matrix().clone();
    let (cp, report) = out.compress(&CompressionPolicy::default());
    assert_eq!(report.nnz_kept, 1.0);
    match &cp {
        CompressedPrecond::F64(sp) => assert_eq!(sp.matrix(), &p),
        CompressedPrecond::F32(_) => panic!("identity policy must stay f64"),
    }
    // And the compressed operator applies identically to the original.
    let n = p.nrows();
    let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
    let mut z1 = vec![0.0; n];
    let mut z2 = vec![0.0; n];
    cp.apply(&r, &mut z1);
    out.precond.apply(&r, &mut z2);
    assert_eq!(z1, z2);
}
