//! Property-based gradient checks on random shapes and values: the
//! correctness backbone of the from-scratch autodiff engine.

use mcmcmi_autodiff::{numeric_gradient, AggKind, Graph, Tensor};
use proptest::prelude::*;

fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f64..2.0, rows * cols..=rows * cols)
        .prop_map(move |d| Tensor::from_vec(rows, cols, d))
}

/// Generic harness: builds `loss = mean(f(x))` twice (tape + perturbed
/// closure) and compares gradients.
fn gradcheck<F>(x0: &Tensor, f: F) -> Result<(), TestCaseError>
where
    F: Fn(&mut Graph, mcmcmi_autodiff::Var) -> mcmcmi_autodiff::Var,
{
    let mut g = Graph::new();
    let x = g.leaf(x0.clone());
    let out = f(&mut g, x);
    let loss = g.mean_all(out);
    let grads = g.backward(loss);
    let analytic = grads.get_or_zero(x, x0.rows(), x0.cols());
    let numeric = numeric_gradient(
        x0,
        |xt| {
            let mut g2 = Graph::new();
            let x2 = g2.leaf(xt.clone());
            let out2 = f(&mut g2, x2);
            let l2 = g2.mean_all(out2);
            g2.value(l2).scalar()
        },
        1e-6,
    );
    for i in 0..analytic.len() {
        let a = analytic.data()[i];
        let n = numeric.data()[i];
        let denom = 1.0_f64.max(a.abs()).max(n.abs());
        // ReLU kinks can land on sampled points; tolerate a few ulps more.
        prop_assert!((a - n).abs() / denom < 5e-5, "idx {i}: {a} vs {n}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn softplus_square_chain(x in arb_tensor(3, 5)) {
        gradcheck(&x, |g, v| {
            let s = g.softplus(v);
            g.square(s)
        })?;
    }

    #[test]
    fn layer_norm_then_scale(x in arb_tensor(4, 6)) {
        gradcheck(&x, |g, v| {
            let ln = g.layer_norm(v, 1e-5);
            g.scale(ln, 1.7)
        })?;
    }

    #[test]
    fn matmul_with_self_transpose(x in arb_tensor(3, 4)) {
        gradcheck(&x, |g, v| {
            let t = g.transpose(v);
            g.matmul(v, t)
        })?;
    }

    #[test]
    fn scatter_mean_random_segments(x in arb_tensor(6, 3), seed in 0u64..100) {
        let seg: Vec<usize> = (0..6).map(|e| ((e as u64 + seed) % 3) as usize).collect();
        gradcheck(&x, move |g, v| g.scatter_agg(v, &seg, 3, AggKind::Mean))?;
    }

    #[test]
    fn gather_scatter_roundtrip(x in arb_tensor(5, 2), seed in 0u64..100) {
        let idx: Vec<usize> = (0..8).map(|e| ((e as u64 * 3 + seed) % 5) as usize).collect();
        let seg: Vec<usize> = (0..8).map(|e| ((e as u64 + seed) % 4) as usize).collect();
        gradcheck(&x, move |g, v| {
            let gathered = g.row_gather(v, &idx);
            let sq = g.square(gathered);
            g.scatter_agg(sq, &seg, 4, AggKind::Sum)
        })?;
    }

    #[test]
    fn mean_pool_broadcast_product(x in arb_tensor(4, 3)) {
        gradcheck(&x, |g, v| {
            let pooled = g.mean_rows(v);
            let wide = g.repeat_rows(pooled, 4);
            g.mul_elem(wide, v)
        })?;
    }

    /// Gradient accumulation: a node used twice receives the sum of both
    /// paths' contributions.
    #[test]
    fn fan_out_accumulates(x in arb_tensor(2, 3)) {
        gradcheck(&x, |g, v| {
            let a = g.scale(v, 2.0);
            let b = g.softplus(v);
            g.add(a, b)
        })?;
    }

    /// Zero-gradient sanity: a constant loss has zero input gradient.
    #[test]
    fn constant_loss_zero_grad(x in arb_tensor(3, 3)) {
        let mut g = Graph::new();
        let v = g.leaf(x.clone());
        let zero = g.scale(v, 0.0);
        let loss = g.mean_all(zero);
        let grads = g.backward(loss);
        let gx = grads.get_or_zero(v, 3, 3);
        prop_assert!(gx.data().iter().all(|&t| t == 0.0));
    }
}
