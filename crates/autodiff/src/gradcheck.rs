//! Finite-difference gradient checking.
//!
//! Every op in the engine (and the full surrogate downstream) is validated
//! against central differences; this is the module that makes the from-
//! scratch autodiff trustworthy.

use crate::tensor::Tensor;

/// Central-difference numeric gradient of `f` with respect to `x`.
///
/// `f` must be a pure function of the tensor's entries.
pub fn numeric_gradient<F: FnMut(&Tensor) -> f64>(x: &Tensor, mut f: F, h: f64) -> Tensor {
    let mut g = Tensor::zeros(x.rows(), x.cols());
    let mut xp = x.clone();
    for i in 0..x.len() {
        let orig = xp.data()[i];
        xp.data_mut()[i] = orig + h;
        let fp = f(&xp);
        xp.data_mut()[i] = orig - h;
        let fm = f(&xp);
        xp.data_mut()[i] = orig;
        g.data_mut()[i] = (fp - fm) / (2.0 * h);
    }
    g
}

/// Assert that an analytic gradient matches the numeric one to `tol`
/// (relative, with an absolute floor). Panics with a diagnostic otherwise.
pub fn assert_grad_close(analytic: &Tensor, numeric: &Tensor, tol: f64) {
    assert_eq!(analytic.rows(), numeric.rows(), "gradcheck: row mismatch");
    assert_eq!(analytic.cols(), numeric.cols(), "gradcheck: col mismatch");
    for i in 0..analytic.len() {
        let a = analytic.data()[i];
        let n = numeric.data()[i];
        let denom = 1.0_f64.max(a.abs()).max(n.abs());
        assert!(
            (a - n).abs() / denom < tol,
            "gradcheck failed at flat index {i}: analytic {a} vs numeric {n}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AggKind, Graph};

    /// Helper: numeric-vs-analytic check for a scalar graph function of one
    /// input tensor.
    fn check<F>(x0: Tensor, build: F)
    where
        F: Fn(&mut Graph, crate::graph::Var) -> crate::graph::Var,
    {
        let mut g = Graph::new();
        let x = g.leaf(x0.clone());
        let out = build(&mut g, x);
        let loss = g.mean_all(out);
        let grads = g.backward(loss);
        let analytic = grads.get_or_zero(x, x0.rows(), x0.cols());
        let numeric = numeric_gradient(
            &x0,
            |xt| {
                let mut g2 = Graph::new();
                let x2 = g2.leaf(xt.clone());
                let out2 = build(&mut g2, x2);
                let loss2 = g2.mean_all(out2);
                g2.value(loss2).scalar()
            },
            1e-6,
        );
        assert_grad_close(&analytic, &numeric, 1e-6);
    }

    fn sample(rows: usize, cols: usize, seed: u64) -> Tensor {
        // Smooth, nonzero, irrational-ish values keep ReLU kinks away from 0.
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| 0.7 * ((i as f64 + seed as f64 * 0.37 + 1.0) * 0.917).sin() + 0.13)
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    #[test]
    fn grad_relu() {
        check(sample(3, 4, 1), |g, x| g.relu(x));
    }

    #[test]
    fn grad_softplus() {
        check(sample(3, 4, 2), |g, x| g.softplus(x));
    }

    #[test]
    fn grad_square_scale_addscalar() {
        check(sample(2, 5, 3), |g, x| {
            let a = g.square(x);
            let b = g.scale(a, -1.7);
            g.add_scalar(b, 0.3)
        });
    }

    #[test]
    fn grad_matmul_both_sides() {
        // d/dX mean(X·W) and d/dW via two separate leaves.
        let x0 = sample(3, 4, 4);
        let w0 = sample(4, 2, 5);
        // X side.
        let mut g = Graph::new();
        let x = g.leaf(x0.clone());
        let w = g.leaf(w0.clone());
        let y = g.matmul(x, w);
        let loss = g.mean_all(y);
        let grads = g.backward(loss);
        let ax = grads.get_or_zero(x, 3, 4);
        let aw = grads.get_or_zero(w, 4, 2);
        let nx = numeric_gradient(
            &x0,
            |xt| {
                let mut g2 = Graph::new();
                let x2 = g2.leaf(xt.clone());
                let w2 = g2.leaf(w0.clone());
                let y2 = g2.matmul(x2, w2);
                let l2 = g2.mean_all(y2);
                g2.value(l2).scalar()
            },
            1e-6,
        );
        let nw = numeric_gradient(
            &w0,
            |wt| {
                let mut g2 = Graph::new();
                let x2 = g2.leaf(x0.clone());
                let w2 = g2.leaf(wt.clone());
                let y2 = g2.matmul(x2, w2);
                let l2 = g2.mean_all(y2);
                g2.value(l2).scalar()
            },
            1e-6,
        );
        assert_grad_close(&ax, &nx, 1e-6);
        assert_grad_close(&aw, &nw, 1e-6);
    }

    #[test]
    fn grad_layer_norm() {
        check(sample(4, 6, 6), |g, x| g.layer_norm(x, 1e-5));
    }

    #[test]
    fn grad_linear_layer() {
        let w0 = sample(3, 4, 7);
        let b0 = sample(1, 3, 8);
        check(sample(5, 4, 9), move |g, x| {
            let w = g.leaf(w0.clone());
            let b = g.leaf(b0.clone());
            let h = g.linear(x, w, b);
            g.relu(h)
        });
    }

    #[test]
    fn grad_concat_and_elemwise() {
        let y0 = sample(3, 2, 10);
        check(sample(3, 3, 11), move |g, x| {
            let y = g.leaf(y0.clone());
            let c = g.concat_cols(x, y);
            let d = g.square(c);
            g.scale(d, 0.5)
        });
    }

    #[test]
    fn grad_row_gather() {
        check(sample(4, 3, 12), |g, x| {
            let idx = [0usize, 2, 2, 3, 1];
            let gathered = g.row_gather(x, &idx);
            g.square(gathered)
        });
    }

    #[test]
    fn grad_scatter_mean() {
        check(sample(5, 3, 13), |g, x| {
            let seg = [0usize, 1, 0, 2, 1];
            g.scatter_agg(x, &seg, 3, AggKind::Mean)
        });
    }

    #[test]
    fn grad_scatter_sum() {
        check(sample(5, 3, 14), |g, x| {
            let seg = [2usize, 1, 0, 2, 2];
            g.scatter_agg(x, &seg, 3, AggKind::Sum)
        });
    }

    #[test]
    fn grad_scatter_max() {
        check(sample(6, 2, 15), |g, x| {
            let seg = [0usize, 0, 1, 1, 2, 2];
            g.scatter_agg(x, &seg, 3, AggKind::Max)
        });
    }

    #[test]
    fn grad_mean_rows_and_repeat() {
        check(sample(4, 3, 16), |g, x| {
            let pooled = g.mean_rows(x);
            let spread = g.repeat_rows(pooled, 4);
            g.mul_elem(spread, x)
        });
    }

    #[test]
    fn grad_dropout_with_frozen_mask() {
        let mask = vec![1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0, 1.0, 0.0];
        check(sample(3, 4, 17), move |g, x| g.dropout(x, &mask, 0.25));
    }

    #[test]
    fn grad_mse_composite() {
        let t0 = sample(3, 2, 18);
        check(sample(3, 2, 19), move |g, x| {
            let t = g.leaf(t0.clone());
            let m = g.mse(x, t);
            // mse already returns a scalar; wrap to keep the harness shape.
            g.scale(m, 2.0)
        });
    }

    #[test]
    fn grad_sub_mul_chain() {
        let y0 = sample(2, 3, 20);
        check(sample(2, 3, 21), move |g, x| {
            let y = g.leaf(y0.clone());
            let d = g.sub(x, y);
            let p = g.mul_elem(d, x);
            g.softplus(p)
        });
    }

    #[test]
    fn grad_exp() {
        check(sample(3, 4, 23), |g, x| g.exp(x));
    }

    #[test]
    fn grad_recip_of_positive() {
        // Shift inputs away from zero: recip is only used on positive
        // denominators in practice.
        check(sample(3, 3, 24), |g, x| {
            let shifted = g.add_scalar(x, 3.0);
            g.recip(shifted)
        });
    }

    #[test]
    fn grad_mul_broadcast_col() {
        let w0 = sample(4, 1, 25);
        check(sample(4, 3, 26), move |g, x| {
            let w = g.leaf(w0.clone());
            g.mul_broadcast_col(x, w)
        });
    }

    #[test]
    fn grad_softmax_like_composite() {
        // exp → segment-sum → gather → recip → broadcast-mul: the exact op
        // chain the GATv2 attention uses.
        check(sample(5, 2, 27), |g, x| {
            let seg = [0usize, 1, 0, 1, 0];
            let e = g.exp(x);
            let sums = g.scatter_agg(e, &seg, 2, crate::graph::AggKind::Sum);
            let back = g.row_gather(sums, &seg);
            let inv = g.recip(back);
            g.mul_elem(e, inv)
        });
    }

    #[test]
    fn grad_through_transpose() {
        check(sample(3, 4, 22), |g, x| {
            let xt = g.transpose(x);
            let prod = g.matmul(x, xt); // 3×3
            g.square(prod)
        });
    }
}
