//! A minimal 2-D tensor (row-major, `f64`).

use serde::{Deserialize, Serialize};

/// Row-major 2-D tensor. Vectors are represented as `1 × d` or `n × 1`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tensor {
    /// Zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Constant-filled tensor.
    pub fn full(rows: usize, cols: usize, v: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Build from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "Tensor::from_vec: shape mismatch");
        Self { rows, cols, data }
    }

    /// A `1 × d` row tensor from a slice.
    pub fn row_vector(v: &[f64]) -> Self {
        Self::from_vec(1, v.len(), v.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data (row-major).
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other` (naive ikj loop — model layers here are
    /// at most a few hundred wide, where this is already memory-bound).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "Tensor::matmul: inner dimension mismatch"
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// In-place `self += a·other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, a: f64, other: &Tensor) {
        assert_eq!(self.rows, other.rows, "Tensor::add_scaled: row mismatch");
        assert_eq!(self.cols, other.cols, "Tensor::add_scaled: col mismatch");
        for (x, y) in self.data.iter_mut().zip(&other.data) {
            *x += a * y;
        }
    }

    /// The single element of a `1 × 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not scalar-shaped.
    pub fn scalar(&self) -> f64 {
        assert_eq!(self.len(), 1, "Tensor::scalar: not a 1x1 tensor");
        self.data[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 1, vec![1.0, 1.0, 1.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[6.0, 15.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn add_scaled_works() {
        let mut a = Tensor::zeros(1, 3);
        a.add_scaled(2.0, &Tensor::row_vector(&[1.0, 2.0, 3.0]));
        assert_eq!(a.data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn scalar_accessor() {
        assert_eq!(Tensor::full(1, 1, 7.5).scalar(), 7.5);
    }

    #[test]
    #[should_panic(expected = "not a 1x1")]
    fn scalar_rejects_non_scalar() {
        let _ = Tensor::zeros(2, 1).scalar();
    }
}
