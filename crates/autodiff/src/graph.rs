//! The reverse-mode tape.
//!
//! A [`Graph`] records every op during the forward pass; [`Graph::backward`]
//! walks the tape in reverse, accumulating vector–Jacobian products. Ops are
//! a closed enum (no boxed closures), which keeps the backward pass
//! branch-predictable and the whole engine easy to audit.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Handle to a node in the graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

/// Neighbourhood aggregation kind for [`Graph::scatter_agg`] — the three
/// strategies the paper's HPO sweep explores (mean was selected).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggKind {
    /// Arithmetic mean of incoming messages.
    Mean,
    /// Sum of incoming messages.
    Sum,
    /// Element-wise maximum of incoming messages.
    Max,
}

enum Op {
    Leaf,
    Add(usize, usize),
    Sub(usize, usize),
    MulElem(usize, usize),
    Scale(usize, f64),
    AddScalar(usize),
    MatMul(usize, usize),
    /// Materialised transpose (backward transposes the gradient back).
    TransposeOf(usize),
    Relu(usize),
    Softplus(usize),
    Square(usize),
    Exp(usize),
    Recip(usize),
    /// Column-broadcast product: (m×n) ∘ (m×1).
    MulBroadcastCol(usize, usize),
    /// Row-broadcast addition: (m×n) + (1×n).
    AddBroadcastRow(usize, usize),
    /// Per-row layer normalisation (no affine), with cached mean/inv-std.
    LayerNorm {
        src: usize,
        inv_std: Vec<f64>,
        normed: Tensor,
    },
    /// Dropout with a frozen mask (already scaled by 1/keep).
    Dropout {
        src: usize,
        mask: Vec<f64>,
    },
    /// Column-wise concatenation of two tensors with equal row counts.
    ConcatCols(usize, usize),
    /// Row gather: out[r] = src[idx[r]].
    RowGather {
        src: usize,
        idx: Vec<usize>,
    },
    /// Scatter-aggregate rows of `src` into `n_out` buckets by `seg`.
    ScatterAgg {
        src: usize,
        seg: Vec<usize>,
        kind: AggKind,
        counts: Vec<f64>,
        /// For Max: winning source row per (bucket, col); usize::MAX = none.
        argmax: Vec<usize>,
    },
    /// Mean over all rows → 1×d.
    MeanRows(usize),
    /// Mean over all elements → 1×1.
    MeanAll(usize),
    /// Repeat a 1×d row m times → m×d.
    RepeatRows(usize, usize),
}

/// A reverse-mode tape.
#[derive(Default)]
pub struct Graph {
    values: Vec<Tensor>,
    ops: Vec<Op>,
}

impl Graph {
    /// Fresh empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Insert a leaf (input or parameter) tensor.
    pub fn leaf(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf)
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.values[v.0]
    }

    fn push(&mut self, t: Tensor, op: Op) -> Var {
        self.values.push(t);
        self.ops.push(op);
        Var(self.values.len() - 1)
    }

    fn shape(&self, v: Var) -> (usize, usize) {
        (self.values[v.0].rows(), self.values[v.0].cols())
    }

    /// Element-wise addition.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.shape(a), self.shape(b), "add: shape mismatch");
        let mut t = self.values[a.0].clone();
        t.add_scaled(1.0, &self.values[b.0]);
        self.push(t, Op::Add(a.0, b.0))
    }

    /// Element-wise subtraction.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.shape(a), self.shape(b), "sub: shape mismatch");
        let mut t = self.values[a.0].clone();
        t.add_scaled(-1.0, &self.values[b.0]);
        self.push(t, Op::Sub(a.0, b.0))
    }

    /// Element-wise (Hadamard) product.
    pub fn mul_elem(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.shape(a), self.shape(b), "mul_elem: shape mismatch");
        let (r, c) = self.shape(a);
        let data: Vec<f64> = self.values[a.0]
            .data()
            .iter()
            .zip(self.values[b.0].data())
            .map(|(x, y)| x * y)
            .collect();
        self.push(Tensor::from_vec(r, c, data), Op::MulElem(a.0, b.0))
    }

    /// Scalar multiplication.
    pub fn scale(&mut self, a: Var, s: f64) -> Var {
        let (r, c) = self.shape(a);
        let data: Vec<f64> = self.values[a.0].data().iter().map(|x| x * s).collect();
        self.push(Tensor::from_vec(r, c, data), Op::Scale(a.0, s))
    }

    /// Scalar addition.
    pub fn add_scalar(&mut self, a: Var, s: f64) -> Var {
        let (r, c) = self.shape(a);
        let data: Vec<f64> = self.values[a.0].data().iter().map(|x| x + s).collect();
        self.push(Tensor::from_vec(r, c, data), Op::AddScalar(a.0))
    }

    /// Matrix multiplication.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let t = self.values[a.0].matmul(&self.values[b.0]);
        self.push(t, Op::MatMul(a.0, b.0))
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: Var) -> Var {
        let (r, c) = self.shape(a);
        let data: Vec<f64> = self.values[a.0]
            .data()
            .iter()
            .map(|&x| x.max(0.0))
            .collect();
        self.push(Tensor::from_vec(r, c, data), Op::Relu(a.0))
    }

    /// Softplus `ln(1 + eˣ)` (numerically stable form), the paper's σ̂ head.
    pub fn softplus(&mut self, a: Var) -> Var {
        let (r, c) = self.shape(a);
        let data: Vec<f64> = self.values[a.0]
            .data()
            .iter()
            .map(|&x| if x > 30.0 { x } else { x.exp().ln_1p() })
            .collect();
        self.push(Tensor::from_vec(r, c, data), Op::Softplus(a.0))
    }

    /// Element-wise square.
    pub fn square(&mut self, a: Var) -> Var {
        let (r, c) = self.shape(a);
        let data: Vec<f64> = self.values[a.0].data().iter().map(|&x| x * x).collect();
        self.push(Tensor::from_vec(r, c, data), Op::Square(a.0))
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let (r, c) = self.shape(a);
        let data: Vec<f64> = self.values[a.0].data().iter().map(|&x| x.exp()).collect();
        self.push(Tensor::from_vec(r, c, data), Op::Exp(a.0))
    }

    /// Element-wise reciprocal `1/x` (caller guarantees non-zero inputs —
    /// the softmax denominators this exists for are ≥ 1 by construction).
    pub fn recip(&mut self, a: Var) -> Var {
        let (r, c) = self.shape(a);
        let data: Vec<f64> = self.values[a.0].data().iter().map(|&x| 1.0 / x).collect();
        self.push(Tensor::from_vec(r, c, data), Op::Recip(a.0))
    }

    /// Column-broadcast product: `(m×n) ∘ (m×1)` — scales each row of `a`
    /// by the corresponding entry of `col` (attention weights × messages).
    pub fn mul_broadcast_col(&mut self, a: Var, col: Var) -> Var {
        let (m, _n) = self.shape(a);
        let (cm, cn) = self.shape(col);
        assert_eq!((cm, cn), (m, 1), "mul_broadcast_col: col must be m×1");
        let mut t = self.values[a.0].clone();
        for r in 0..m {
            let w = self.values[col.0].get(r, 0);
            for v in t.row_mut(r) {
                *v *= w;
            }
        }
        self.push(t, Op::MulBroadcastCol(a.0, col.0))
    }

    /// `(m×n) + (1×n)` bias broadcast.
    pub fn add_broadcast_row(&mut self, a: Var, bias: Var) -> Var {
        let (m, n) = self.shape(a);
        let (br, bc) = self.shape(bias);
        assert_eq!((br, bc), (1, n), "add_broadcast_row: bias must be 1×n");
        let mut t = self.values[a.0].clone();
        for r in 0..m {
            let row = t.row_mut(r);
            for (x, &b) in row.iter_mut().zip(self.values[bias.0].data()) {
                *x += b;
            }
        }
        self.push(t, Op::AddBroadcastRow(a.0, bias.0))
    }

    /// Per-row layer normalisation (no affine parameters; compose with
    /// `mul`/`add` broadcasts for a learnable affine).
    pub fn layer_norm(&mut self, a: Var, eps: f64) -> Var {
        let (m, n) = self.shape(a);
        assert!(n > 0, "layer_norm: empty rows");
        let mut out = Tensor::zeros(m, n);
        let mut inv_std = Vec::with_capacity(m);
        for r in 0..m {
            let row = self.values[a.0].row(r);
            let mean = row.iter().sum::<f64>() / n as f64;
            let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
            let istd = 1.0 / (var + eps).sqrt();
            inv_std.push(istd);
            for (c, &x) in row.iter().enumerate() {
                out.set(r, c, (x - mean) * istd);
            }
        }
        let normed = out.clone();
        self.push(
            out,
            Op::LayerNorm {
                src: a.0,
                inv_std,
                normed,
            },
        )
    }

    /// Dropout with keep-probability `1 − p`, using a pre-drawn mask of 0/1
    /// values (the graph scales kept entries by `1/(1−p)`); pass an
    /// all-ones mask at evaluation time (or skip the op entirely).
    pub fn dropout(&mut self, a: Var, raw_mask: &[f64], p: f64) -> Var {
        let (m, n) = self.shape(a);
        assert_eq!(raw_mask.len(), m * n, "dropout: mask length mismatch");
        assert!((0.0..1.0).contains(&p), "dropout: p must be in [0,1)");
        let keep = 1.0 - p;
        let mask: Vec<f64> = raw_mask.iter().map(|&b| b / keep).collect();
        let data: Vec<f64> = self.values[a.0]
            .data()
            .iter()
            .zip(&mask)
            .map(|(x, m)| x * m)
            .collect();
        self.push(Tensor::from_vec(m, n, data), Op::Dropout { src: a.0, mask })
    }

    /// Column-wise concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (ma, na) = self.shape(a);
        let (mb, nb) = self.shape(b);
        assert_eq!(ma, mb, "concat_cols: row mismatch");
        let mut out = Tensor::zeros(ma, na + nb);
        for r in 0..ma {
            out.row_mut(r)[..na].copy_from_slice(self.values[a.0].row(r));
            out.row_mut(r)[na..].copy_from_slice(self.values[b.0].row(r));
        }
        self.push(out, Op::ConcatCols(a.0, b.0))
    }

    /// Row gather `out[r] = src[idx[r]]` (message-passing "lookup sender/
    /// receiver features").
    pub fn row_gather(&mut self, src: Var, idx: &[usize]) -> Var {
        let (m, n) = self.shape(src);
        let mut out = Tensor::zeros(idx.len(), n);
        for (r, &i) in idx.iter().enumerate() {
            assert!(i < m, "row_gather: index {i} out of bounds ({m} rows)");
            out.row_mut(r).copy_from_slice(self.values[src.0].row(i));
        }
        self.push(
            out,
            Op::RowGather {
                src: src.0,
                idx: idx.to_vec(),
            },
        )
    }

    /// Scatter-aggregate edge messages into node buckets:
    /// `out[seg[e]] ⊕= src[e]` with `⊕` = mean/sum/max. Buckets with no
    /// incoming rows stay zero.
    pub fn scatter_agg(&mut self, src: Var, seg: &[usize], n_out: usize, kind: AggKind) -> Var {
        let (m, n) = self.shape(src);
        assert_eq!(seg.len(), m, "scatter_agg: segment length mismatch");
        let mut out = match kind {
            AggKind::Max => Tensor::full(n_out, n, f64::NEG_INFINITY),
            _ => Tensor::zeros(n_out, n),
        };
        let mut counts = vec![0.0f64; n_out];
        let mut argmax = vec![usize::MAX; if kind == AggKind::Max { n_out * n } else { 0 }];
        for (e, &b) in seg.iter().enumerate() {
            assert!(b < n_out, "scatter_agg: bucket {b} out of range");
            counts[b] += 1.0;
            let srow = self.values[src.0].row(e);
            match kind {
                AggKind::Sum | AggKind::Mean => {
                    let orow = out.row_mut(b);
                    for (o, &s) in orow.iter_mut().zip(srow) {
                        *o += s;
                    }
                }
                AggKind::Max => {
                    for (c, &s) in srow.iter().enumerate() {
                        if s > out.get(b, c) {
                            out.set(b, c, s);
                            argmax[b * n + c] = e;
                        }
                    }
                }
            }
        }
        match kind {
            AggKind::Mean => {
                for b in 0..n_out {
                    if counts[b] > 0.0 {
                        let inv = 1.0 / counts[b];
                        for v in out.row_mut(b) {
                            *v *= inv;
                        }
                    }
                }
            }
            AggKind::Max => {
                // Empty buckets: −∞ → 0 (no winner recorded).
                for v in out.data_mut() {
                    if *v == f64::NEG_INFINITY {
                        *v = 0.0;
                    }
                }
            }
            AggKind::Sum => {}
        }
        self.push(
            out,
            Op::ScatterAgg {
                src: src.0,
                seg: seg.to_vec(),
                kind,
                counts,
                argmax,
            },
        )
    }

    /// Mean over rows → `1 × d` (global mean pooling).
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let (m, n) = self.shape(a);
        assert!(m > 0, "mean_rows: empty tensor");
        let mut out = Tensor::zeros(1, n);
        for r in 0..m {
            for (o, &x) in out.row_mut(0).iter_mut().zip(self.values[a.0].row(r)) {
                *o += x;
            }
        }
        for v in out.data_mut() {
            *v /= m as f64;
        }
        self.push(out, Op::MeanRows(a.0))
    }

    /// Mean over all elements → `1 × 1` scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let t = &self.values[a.0];
        assert!(!t.is_empty(), "mean_all: empty tensor");
        let m = t.sum() / t.len() as f64;
        self.push(Tensor::full(1, 1, m), Op::MeanAll(a.0))
    }

    /// Repeat a `1 × d` row `m` times.
    pub fn repeat_rows(&mut self, a: Var, m: usize) -> Var {
        let (r, n) = self.shape(a);
        assert_eq!(r, 1, "repeat_rows: source must be 1×d");
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            out.row_mut(i).copy_from_slice(self.values[a.0].row(0));
        }
        self.push(out, Op::RepeatRows(a.0, m))
    }

    /// Materialised transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let t = self.values[a.0].transpose();
        self.push(t, Op::TransposeOf(a.0))
    }

    /// Affine layer convenience: `x·Wᵀ + b` for `x: m×in`, `w: out×in`,
    /// `b: 1×out` (PyTorch `nn.Linear` weight convention).
    pub fn linear(&mut self, x: Var, w: Var, b: Var) -> Var {
        let wt = self.transpose(w);
        let xw = self.matmul(x, wt);
        self.add_broadcast_row(xw, b)
    }

    /// Mean-squared-error between two same-shape tensors → scalar.
    pub fn mse(&mut self, pred: Var, target: Var) -> Var {
        let d = self.sub(pred, target);
        let d2 = self.square(d);
        self.mean_all(d2)
    }

    /// Reverse-mode sweep from a scalar `loss` node. Returns one gradient
    /// slot per node (zero tensors where nothing flowed).
    ///
    /// # Panics
    /// Panics if `loss` is not `1 × 1`.
    pub fn backward(&mut self, loss: Var) -> Gradients {
        assert_eq!(
            self.values[loss.0].len(),
            1,
            "backward: loss must be scalar"
        );
        let n = self.values.len();
        let mut grads: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::full(1, 1, 1.0));

        for i in (0..n).rev() {
            let Some(g) = grads[i].take() else { continue };
            match &self.ops[i] {
                Op::Leaf => {
                    grads[i] = Some(g);
                    continue;
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, &g, &self.values);
                    accumulate(&mut grads, *b, &g, &self.values);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, &g, &self.values);
                    let mut gn = g.clone();
                    for v in gn.data_mut() {
                        *v = -*v;
                    }
                    accumulate(&mut grads, *b, &gn, &self.values);
                }
                Op::MulElem(a, b) => {
                    let (a, b) = (*a, *b);
                    let mut ga = g.clone();
                    for (x, y) in ga.data_mut().iter_mut().zip(self.values[b].data()) {
                        *x *= y;
                    }
                    let mut gb = g.clone();
                    for (x, y) in gb.data_mut().iter_mut().zip(self.values[a].data()) {
                        *x *= y;
                    }
                    accumulate(&mut grads, a, &ga, &self.values);
                    accumulate(&mut grads, b, &gb, &self.values);
                }
                Op::Scale(a, s) => {
                    let mut ga = g.clone();
                    for v in ga.data_mut() {
                        *v *= s;
                    }
                    accumulate(&mut grads, *a, &ga, &self.values);
                }
                Op::AddScalar(a) => {
                    accumulate(&mut grads, *a, &g, &self.values);
                }
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    // dA = G·Bᵀ ; dB = Aᵀ·G
                    let ga = g.matmul(&self.values[b].transpose());
                    let gb = self.values[a].transpose().matmul(&g);
                    accumulate(&mut grads, a, &ga, &self.values);
                    accumulate(&mut grads, b, &gb, &self.values);
                }
                Op::TransposeOf(a) => {
                    let ga = g.transpose();
                    accumulate(&mut grads, *a, &ga, &self.values);
                }
                Op::Relu(a) => {
                    let mut ga = g.clone();
                    for (x, y) in ga.data_mut().iter_mut().zip(self.values[*a].data()) {
                        if *y <= 0.0 {
                            *x = 0.0;
                        }
                    }
                    accumulate(&mut grads, *a, &ga, &self.values);
                }
                Op::Softplus(a) => {
                    // d/dx softplus = sigmoid(x).
                    let mut ga = g.clone();
                    for (x, y) in ga.data_mut().iter_mut().zip(self.values[*a].data()) {
                        let s = if *y > 30.0 {
                            1.0
                        } else if *y < -30.0 {
                            0.0
                        } else {
                            1.0 / (1.0 + (-*y).exp())
                        };
                        *x *= s;
                    }
                    accumulate(&mut grads, *a, &ga, &self.values);
                }
                Op::Square(a) => {
                    let mut ga = g.clone();
                    for (x, y) in ga.data_mut().iter_mut().zip(self.values[*a].data()) {
                        *x *= 2.0 * y;
                    }
                    accumulate(&mut grads, *a, &ga, &self.values);
                }
                Op::Exp(a) => {
                    // d/dx eˣ = eˣ = the forward output (node i's value).
                    let mut ga = g.clone();
                    for (x, y) in ga.data_mut().iter_mut().zip(self.values[i].data()) {
                        *x *= y;
                    }
                    accumulate(&mut grads, *a, &ga, &self.values);
                }
                Op::Recip(a) => {
                    // d/dx (1/x) = −1/x² = −out².
                    let mut ga = g.clone();
                    for (x, y) in ga.data_mut().iter_mut().zip(self.values[i].data()) {
                        *x *= -y * y;
                    }
                    accumulate(&mut grads, *a, &ga, &self.values);
                }
                Op::MulBroadcastCol(a, col) => {
                    let (a, col) = (*a, *col);
                    let m = g.rows();
                    // dA = G ∘ col (broadcast); dcol = row-dot(G, A).
                    let mut ga = g.clone();
                    let mut gc = Tensor::zeros(m, 1);
                    for r in 0..m {
                        let w = self.values[col].get(r, 0);
                        let arow = self.values[a].row(r);
                        let mut acc = 0.0;
                        for (x, &av) in ga.row_mut(r).iter_mut().zip(arow) {
                            acc += *x * av;
                            *x *= w;
                        }
                        gc.set(r, 0, acc);
                    }
                    accumulate(&mut grads, a, &ga, &self.values);
                    accumulate(&mut grads, col, &gc, &self.values);
                }
                Op::AddBroadcastRow(a, bias) => {
                    accumulate(&mut grads, *a, &g, &self.values);
                    // Bias gradient: column sums.
                    let (m, n) = (g.rows(), g.cols());
                    let mut gb = Tensor::zeros(1, n);
                    for r in 0..m {
                        for (o, &x) in gb.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += x;
                        }
                    }
                    accumulate(&mut grads, *bias, &gb, &self.values);
                }
                Op::LayerNorm {
                    src,
                    inv_std,
                    normed,
                } => {
                    // dx = istd · (g − mean(g) − y·mean(g∘y)) per row.
                    let (m, n) = (g.rows(), g.cols());
                    let mut ga = Tensor::zeros(m, n);
                    for r in 0..m {
                        let grow = g.row(r);
                        let yrow = normed.row(r);
                        let mg = grow.iter().sum::<f64>() / n as f64;
                        let mgy = grow.iter().zip(yrow).map(|(a, b)| a * b).sum::<f64>() / n as f64;
                        let istd = inv_std[r];
                        for c in 0..n {
                            ga.set(r, c, istd * (grow[c] - mg - yrow[c] * mgy));
                        }
                    }
                    accumulate(&mut grads, *src, &ga, &self.values);
                }
                Op::Dropout { src, mask } => {
                    let mut ga = g.clone();
                    for (x, m) in ga.data_mut().iter_mut().zip(mask) {
                        *x *= m;
                    }
                    accumulate(&mut grads, *src, &ga, &self.values);
                }
                Op::ConcatCols(a, b) => {
                    let (a, b) = (*a, *b);
                    let na = self.values[a].cols();
                    let m = g.rows();
                    let mut ga = Tensor::zeros(m, na);
                    let mut gb = Tensor::zeros(m, g.cols() - na);
                    for r in 0..m {
                        ga.row_mut(r).copy_from_slice(&g.row(r)[..na]);
                        gb.row_mut(r).copy_from_slice(&g.row(r)[na..]);
                    }
                    accumulate(&mut grads, a, &ga, &self.values);
                    accumulate(&mut grads, b, &gb, &self.values);
                }
                Op::RowGather { src, idx } => {
                    let (sm, sn) = (self.values[*src].rows(), self.values[*src].cols());
                    let mut ga = Tensor::zeros(sm, sn);
                    for (r, &i) in idx.iter().enumerate() {
                        for (o, &x) in ga.row_mut(i).iter_mut().zip(g.row(r)) {
                            *o += x;
                        }
                    }
                    accumulate(&mut grads, *src, &ga, &self.values);
                }
                Op::ScatterAgg {
                    src,
                    seg,
                    kind,
                    counts,
                    argmax,
                    ..
                } => {
                    let (sm, sn) = (self.values[*src].rows(), self.values[*src].cols());
                    let mut ga = Tensor::zeros(sm, sn);
                    match kind {
                        AggKind::Sum => {
                            for (e, &b) in seg.iter().enumerate() {
                                for (o, &x) in ga.row_mut(e).iter_mut().zip(g.row(b)) {
                                    *o += x;
                                }
                            }
                        }
                        AggKind::Mean => {
                            for (e, &b) in seg.iter().enumerate() {
                                let inv = 1.0 / counts[b];
                                for (o, &x) in ga.row_mut(e).iter_mut().zip(g.row(b)) {
                                    *o += x * inv;
                                }
                            }
                        }
                        AggKind::Max => {
                            let n_out = g.rows();
                            for b in 0..n_out {
                                for c in 0..sn {
                                    let e = argmax[b * sn + c];
                                    if e != usize::MAX {
                                        let v = ga.get(e, c) + g.get(b, c);
                                        ga.set(e, c, v);
                                    }
                                }
                            }
                        }
                    }
                    accumulate(&mut grads, *src, &ga, &self.values);
                }
                Op::MeanRows(a) => {
                    let (m, n) = (self.values[*a].rows(), self.values[*a].cols());
                    let mut ga = Tensor::zeros(m, n);
                    let inv = 1.0 / m as f64;
                    for r in 0..m {
                        for (o, &x) in ga.row_mut(r).iter_mut().zip(g.row(0)) {
                            *o = x * inv;
                        }
                    }
                    accumulate(&mut grads, *a, &ga, &self.values);
                }
                Op::MeanAll(a) => {
                    let (m, n) = (self.values[*a].rows(), self.values[*a].cols());
                    let s = g.scalar() / (m * n) as f64;
                    let ga = Tensor::full(m, n, s);
                    accumulate(&mut grads, *a, &ga, &self.values);
                }
                Op::RepeatRows(a, m) => {
                    let n = self.values[*a].cols();
                    let mut ga = Tensor::zeros(1, n);
                    for r in 0..*m {
                        for (o, &x) in ga.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += x;
                        }
                    }
                    accumulate(&mut grads, *a, &ga, &self.values);
                }
            }
        }
        Gradients { grads }
    }
}

fn accumulate(grads: &mut [Option<Tensor>], node: usize, g: &Tensor, values: &[Tensor]) {
    match &mut grads[node] {
        Some(existing) => existing.add_scaled(1.0, g),
        None => {
            debug_assert_eq!(
                (g.rows(), g.cols()),
                (values[node].rows(), values[node].cols()),
                "gradient shape mismatch at node {node}"
            );
            grads[node] = Some(g.clone());
        }
    }
}

/// Gradients indexed by [`Var`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss with respect to a node; `None` if no gradient
    /// flowed there.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads[v.0].as_ref()
    }

    /// Gradient or a zero tensor of the given shape.
    pub fn get_or_zero(&self, v: Var, rows: usize, cols: usize) -> Tensor {
        self.grads[v.0]
            .clone()
            .unwrap_or_else(|| Tensor::zeros(rows, cols))
    }
}
