//! Optimisers: Adam with decoupled weight decay, plus global-norm gradient
//! clipping. The paper trains its surrogate with Adam (§4.4) and a weight
//! decay hyperparameter searched by TPE.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Adam hyperparameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate (paper's HPO selected 1.848e-3).
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor.
    pub eps: f64,
    /// Decoupled (AdamW-style) weight decay coefficient.
    pub weight_decay: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1.848e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// Adam optimiser over a flat list of parameter tensors.
#[derive(Clone, Debug)]
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

impl Adam {
    /// Create state matching the given parameter shapes.
    pub fn new(cfg: AdamConfig, params: &[Tensor]) -> Self {
        let m = params
            .iter()
            .map(|p| Tensor::zeros(p.rows(), p.cols()))
            .collect();
        let v = params
            .iter()
            .map(|p| Tensor::zeros(p.rows(), p.cols()))
            .collect();
        Self { cfg, m, v, t: 0 }
    }

    /// Config accessor.
    pub fn config(&self) -> AdamConfig {
        self.cfg
    }

    /// One update step. `decay_mask[i] = false` exempts a tensor (biases,
    /// LayerNorm gains) from weight decay; pass `None` to decay everything.
    ///
    /// # Panics
    /// Panics if shapes/lengths disagree with construction.
    pub fn step(&mut self, params: &mut [Tensor], grads: &[Tensor], decay_mask: Option<&[bool]>) {
        assert_eq!(params.len(), self.m.len(), "Adam: parameter count changed");
        assert_eq!(params.len(), grads.len(), "Adam: gradient count mismatch");
        self.t += 1;
        let b1t = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.cfg.beta2.powi(self.t as i32);
        for (i, (p, g)) in params.iter_mut().zip(grads).enumerate() {
            assert_eq!(p.len(), g.len(), "Adam: shape mismatch at tensor {i}");
            let decay = match decay_mask {
                Some(mask) => {
                    if mask[i] {
                        self.cfg.weight_decay
                    } else {
                        0.0
                    }
                }
                None => self.cfg.weight_decay,
            };
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((pj, &gj), (mj, vj)) in p
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(m.data_mut().iter_mut().zip(v.data_mut()))
            {
                *mj = self.cfg.beta1 * *mj + (1.0 - self.cfg.beta1) * gj;
                *vj = self.cfg.beta2 * *vj + (1.0 - self.cfg.beta2) * gj * gj;
                let mhat = *mj / b1t;
                let vhat = *vj / b2t;
                // Decoupled weight decay: applied directly to the parameter.
                *pj -= self.cfg.lr * (mhat / (vhat.sqrt() + self.cfg.eps) + decay * *pj);
            }
        }
    }
}

/// Global-norm gradient clipping.
#[derive(Clone, Copy, Debug)]
pub struct GradClip {
    /// Maximum allowed global L2 norm.
    pub max_norm: f64,
}

impl GradClip {
    /// Scale all gradients so their concatenated L2 norm is ≤ `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip(&self, grads: &mut [Tensor]) -> f64 {
        let total: f64 = grads
            .iter()
            .map(|g| g.data().iter().map(|v| v * v).sum::<f64>())
            .sum();
        let norm = total.sqrt();
        if norm > self.max_norm && norm > 0.0 {
            let s = self.max_norm / norm;
            for g in grads.iter_mut() {
                for v in g.data_mut() {
                    *v *= s;
                }
            }
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimises_quadratic() {
        // f(x) = Σ (x − 3)², gradient 2(x−3).
        let mut params = vec![Tensor::full(1, 4, 10.0)];
        let mut adam = Adam::new(
            AdamConfig {
                lr: 0.1,
                ..Default::default()
            },
            &params,
        );
        for _ in 0..500 {
            let g: Vec<f64> = params[0].data().iter().map(|&x| 2.0 * (x - 3.0)).collect();
            let grads = vec![Tensor::from_vec(1, 4, g)];
            adam.step(&mut params, &grads, None);
        }
        for &x in params[0].data() {
            assert!((x - 3.0).abs() < 1e-3, "x = {x}");
        }
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut params = vec![Tensor::full(1, 2, 5.0)];
        let mut adam = Adam::new(
            AdamConfig {
                lr: 0.01,
                weight_decay: 0.5,
                ..Default::default()
            },
            &params,
        );
        // Zero gradients: only the decay acts.
        let grads = vec![Tensor::zeros(1, 2)];
        for _ in 0..100 {
            adam.step(&mut params, &grads, None);
        }
        assert!(params[0].data()[0] < 5.0 * 0.7);
    }

    #[test]
    fn decay_mask_exempts_biases() {
        let mut params = vec![Tensor::full(1, 2, 5.0), Tensor::full(1, 2, 5.0)];
        let mut adam = Adam::new(
            AdamConfig {
                lr: 0.01,
                weight_decay: 0.5,
                ..Default::default()
            },
            &params,
        );
        let grads = vec![Tensor::zeros(1, 2), Tensor::zeros(1, 2)];
        for _ in 0..50 {
            adam.step(&mut params, &grads, Some(&[true, false]));
        }
        assert!(params[0].data()[0] < 5.0);
        assert_eq!(params[1].data()[0], 5.0);
    }

    #[test]
    fn clip_scales_to_max_norm() {
        let mut grads = vec![Tensor::full(1, 4, 3.0)]; // norm 6
        let clip = GradClip { max_norm: 1.5 };
        let pre = clip.clip(&mut grads);
        assert!((pre - 6.0).abs() < 1e-12);
        let post: f64 = grads[0].data().iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((post - 1.5).abs() < 1e-12);
    }

    #[test]
    fn clip_leaves_small_gradients_alone() {
        let mut grads = vec![Tensor::full(1, 4, 0.1)];
        let before = grads[0].clone();
        GradClip { max_norm: 10.0 }.clip(&mut grads);
        assert_eq!(grads[0], before);
    }
}
