//! Parameter initialisation.

use crate::tensor::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Initialisation scheme for a weight matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Initializer {
    /// Glorot/Xavier uniform: `U(−√(6/(fan_in+fan_out)), +…)`.
    XavierUniform,
    /// He/Kaiming uniform (ReLU-friendly): `U(−√(6/fan_in), +…)`.
    HeUniform,
    /// All zeros (biases).
    Zeros,
}

/// Draw an `out × in` weight tensor.
pub fn init_tensor(init: Initializer, rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Tensor {
    match init {
        Initializer::Zeros => Tensor::zeros(rows, cols),
        Initializer::XavierUniform => {
            let bound = (6.0 / (rows + cols) as f64).sqrt();
            uniform(rows, cols, bound, rng)
        }
        Initializer::HeUniform => {
            let bound = (6.0 / cols as f64).sqrt();
            uniform(rows, cols, bound, rng)
        }
    }
}

/// Convenience: Xavier-uniform from a bare seed.
pub fn xavier_uniform(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    init_tensor(Initializer::XavierUniform, rows, cols, &mut rng)
}

fn uniform(rows: usize, cols: usize, bound: f64, rng: &mut ChaCha8Rng) -> Tensor {
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| rng.gen_range(-bound..bound))
        .collect();
    Tensor::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bound_respected() {
        let t = xavier_uniform(64, 32, 1);
        let bound = (6.0 / 96.0f64).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
        // Not all zero / not all equal.
        assert!(t.data().iter().any(|&v| v != t.data()[0]));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(xavier_uniform(8, 8, 3), xavier_uniform(8, 8, 3));
        assert_ne!(xavier_uniform(8, 8, 3), xavier_uniform(8, 8, 4));
    }

    #[test]
    fn zeros_initializer() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let t = init_tensor(Initializer::Zeros, 3, 4, &mut rng);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }
}
