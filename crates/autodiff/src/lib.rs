//! A small reverse-mode automatic differentiation engine.
//!
//! The graph neural surrogate (paper §3.1) needs exactly this op set:
//! dense affine maps, ReLU/softplus activations, layer normalisation,
//! dropout, column concatenation, and the gather/scatter primitives message
//! passing is made of. The engine is tape-based: a [`graph::Graph`] records
//! ops during the forward pass and walks them backwards to produce exact
//! gradients — including gradients with respect to *inputs*, which is what
//! lets L-BFGS-B maximise Expected Improvement over the MCMC parameters
//! `x_M` exactly as the paper describes ("back-propagation supplies the
//! exact gradient").
//!
//! Everything is `f64`, CPU, and deterministic given a seed.

pub mod gradcheck;
pub mod graph;
pub mod init;
pub mod optim;
pub mod tensor;

pub use gradcheck::numeric_gradient;
pub use graph::{AggKind, Gradients, Graph, Var};
pub use init::{xavier_uniform, Initializer};
pub use optim::{Adam, AdamConfig, GradClip};
pub use tensor::Tensor;
