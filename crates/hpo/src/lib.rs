//! Hyper-parameter optimisation machinery (paper §4.3).
//!
//! The paper selects its surrogate architecture with the Tree-structured
//! Parzen Estimator (Bergstra et al., NeurIPS'11) scheduled by the
//! Asynchronous Successive Halving Algorithm (Li et al., MLSys'20) —
//! 30 trials, max 150 epochs, grace period 20, reduction factor 3. This
//! crate reimplements both: TPE as a per-dimension Parzen-window density
//! ratio sampler, and ASHA as a synchronous successive-halving scheduler
//! (the asynchrony in the original is a cluster-scheduling optimisation,
//! not part of the selection logic).

pub mod asha;
pub mod space;
pub mod tpe;

pub use asha::{run_successive_halving, AshaConfig, TrialOutcome};
pub use space::{ParamKind, ParamSpec, SearchSpace};
pub use tpe::{TpeConfig, TpeSampler};
