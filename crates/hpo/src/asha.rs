//! Successive-halving scheduler (synchronous ASHA).
//!
//! Paper protocol (§4.3): max resource 150 epochs, grace period 20,
//! reduction factor 3 — i.e. every configuration gets at least 20 epochs,
//! the best third survives to 60, the best third of those to 150 (capped).

use serde::{Deserialize, Serialize};

/// Scheduler settings.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AshaConfig {
    /// Minimum resource per trial (paper: 20 epochs).
    pub grace: usize,
    /// Promotion factor η (paper: 3).
    pub reduction: usize,
    /// Maximum resource (paper: 150 epochs).
    pub max_resource: usize,
}

impl Default for AshaConfig {
    fn default() -> Self {
        Self {
            grace: 20,
            reduction: 3,
            max_resource: 150,
        }
    }
}

impl AshaConfig {
    /// The rung resource levels: grace, grace·η, … capped at max.
    pub fn rungs(&self) -> Vec<usize> {
        assert!(
            self.grace >= 1 && self.reduction >= 2,
            "AshaConfig: invalid settings"
        );
        let mut out = Vec::new();
        let mut r = self.grace;
        loop {
            out.push(r.min(self.max_resource));
            if r >= self.max_resource {
                break;
            }
            r = (r * self.reduction).min(self.max_resource);
            if *out.last().unwrap() == self.max_resource {
                break;
            }
        }
        out.dedup();
        out
    }
}

/// Per-trial outcome of a successive-halving run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Trial index (into the original config list).
    pub trial: usize,
    /// Total resource the trial received.
    pub resource: usize,
    /// Last observed loss.
    pub loss: f64,
    /// Whether it survived to the final rung.
    pub finished: bool,
}

/// Run successive halving over `n_trials` configurations.
///
/// `evaluate(trial, resource)` trains trial `trial` *up to* the cumulative
/// resource level `resource` and returns the validation loss (lower is
/// better). It is called with increasing resource for surviving trials, so
/// implementations can checkpoint and resume.
///
/// Returns per-trial outcomes; the winner is the finished trial with the
/// lowest loss.
pub fn run_successive_halving<F>(
    n_trials: usize,
    cfg: AshaConfig,
    mut evaluate: F,
) -> Vec<TrialOutcome>
where
    F: FnMut(usize, usize) -> f64,
{
    assert!(
        n_trials > 0,
        "run_successive_halving: need at least one trial"
    );
    let rungs = cfg.rungs();
    let mut outcomes: Vec<TrialOutcome> = (0..n_trials)
        .map(|t| TrialOutcome {
            trial: t,
            resource: 0,
            loss: f64::INFINITY,
            finished: false,
        })
        .collect();
    let mut alive: Vec<usize> = (0..n_trials).collect();

    for (level, &r) in rungs.iter().enumerate() {
        // Evaluate all surviving trials at this rung.
        for &t in &alive {
            let loss = evaluate(t, r);
            outcomes[t].resource = r;
            outcomes[t].loss = loss;
        }
        let is_last = level + 1 == rungs.len();
        if is_last {
            for &t in &alive {
                outcomes[t].finished = true;
            }
            break;
        }
        // Promote the top 1/η fraction (at least one).
        let mut ranked = alive.clone();
        ranked.sort_by(|&a, &b| outcomes[a].loss.partial_cmp(&outcomes[b].loss).unwrap());
        let keep = (ranked.len() / cfg.reduction).max(1);
        alive = ranked[..keep].to_vec();
    }
    outcomes
}

/// The winning trial index of a finished run (lowest final loss among
/// trials that reached the last rung).
pub fn winner(outcomes: &[TrialOutcome]) -> Option<usize> {
    outcomes
        .iter()
        .filter(|o| o.finished)
        .min_by(|a, b| a.loss.partial_cmp(&b.loss).unwrap())
        .map(|o| o.trial)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rungs() {
        let cfg = AshaConfig::default();
        assert_eq!(cfg.rungs(), vec![20, 60, 150]);
    }

    #[test]
    fn rungs_respect_max() {
        let cfg = AshaConfig {
            grace: 10,
            reduction: 4,
            max_resource: 100,
        };
        assert_eq!(cfg.rungs(), vec![10, 40, 100]);
    }

    #[test]
    fn winner_is_best_asymptotic_trial() {
        // Trial t's loss curve: base_t + 10/resource. Trial 3 has the best
        // asymptote and decent early performance ⇒ must win.
        let bases = [0.5, 0.8, 0.4, 0.1, 0.9, 0.55, 0.7, 0.65, 0.45];
        let outcomes =
            run_successive_halving(9, AshaConfig::default(), |t, r| bases[t] + 10.0 / r as f64);
        assert_eq!(winner(&outcomes), Some(3));
    }

    #[test]
    fn budget_is_saved_versus_full_training() {
        // Count evaluate calls weighted by resource: successive halving must
        // spend far less than training all trials to max resource.
        let mut spent = 0usize;
        let n = 27;
        let _ = run_successive_halving(n, AshaConfig::default(), |t, r| {
            spent += r; // (re-)training cost up to r, counted pessimistically
            (t as f64 * 0.01) + 5.0 / r as f64
        });
        let full = n * 150;
        assert!(spent < full / 2, "spent {spent} vs full {full}");
    }

    #[test]
    fn early_loser_is_cut_at_grace() {
        let outcomes = run_successive_halving(9, AshaConfig::default(), |t, r| {
            if t == 0 {
                10.0 // hopeless from the start
            } else {
                1.0 / (t as f64) + 1.0 / r as f64
            }
        });
        assert_eq!(outcomes[0].resource, 20);
        assert!(!outcomes[0].finished);
    }

    #[test]
    fn single_trial_always_finishes() {
        let outcomes = run_successive_halving(1, AshaConfig::default(), |_, r| 1.0 / r as f64);
        assert!(outcomes[0].finished);
        assert_eq!(outcomes[0].resource, 150);
        assert_eq!(winner(&outcomes), Some(0));
    }
}
