//! Tree-structured Parzen Estimator sampler.
//!
//! Observations are split into "good" (best γ-fraction by loss) and "bad";
//! each continuous dimension gets a Parzen window (Gaussian KDE) per group,
//! categorical dimensions get smoothed frequency tables. New candidates are
//! drawn from the good density and ranked by the density ratio `l(x)/g(x)`
//! — the standard TPE acquisition.

use crate::space::{ParamKind, SearchSpace};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// TPE settings.
#[derive(Clone, Copy, Debug)]
pub struct TpeConfig {
    /// Fraction of observations considered "good" (γ, default 0.25).
    pub gamma: f64,
    /// Candidates drawn per suggestion (default 24).
    pub n_candidates: usize,
    /// Random configurations before TPE kicks in (default 10).
    pub n_startup: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpeConfig {
    fn default() -> Self {
        Self {
            gamma: 0.25,
            n_candidates: 24,
            n_startup: 10,
            seed: 0,
        }
    }
}

/// The sampler: feed `(config, loss)` observations, ask for suggestions.
pub struct TpeSampler {
    space: SearchSpace,
    cfg: TpeConfig,
    observations: Vec<(Vec<f64>, f64)>,
    rng: ChaCha8Rng,
}

impl TpeSampler {
    /// New sampler over a space.
    pub fn new(space: SearchSpace, cfg: TpeConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        Self {
            space,
            cfg,
            observations: Vec::new(),
            rng,
        }
    }

    /// Record an observation (lower loss is better).
    pub fn observe(&mut self, config: Vec<f64>, loss: f64) {
        assert!(
            self.space.contains(&config) || config.len() == self.space.dim(),
            "TpeSampler::observe: config outside space"
        );
        self.observations.push((config, loss));
    }

    /// Number of observations recorded.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True when no observations were recorded yet.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Suggest the next configuration to evaluate.
    pub fn suggest(&mut self) -> Vec<f64> {
        if self.observations.len() < self.cfg.n_startup {
            return self.space.sample(&mut self.rng);
        }
        // Split good/bad by loss quantile.
        let mut sorted: Vec<usize> = (0..self.observations.len()).collect();
        sorted.sort_by(|&a, &b| {
            self.observations[a]
                .1
                .partial_cmp(&self.observations[b].1)
                .unwrap()
        });
        let n_good =
            ((self.cfg.gamma * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len() - 1);
        // Owned copies keep the borrow checker happy while the RNG mutates.
        let good: Vec<Vec<f64>> = sorted[..n_good]
            .iter()
            .map(|&i| self.observations[i].0.clone())
            .collect();
        let bad: Vec<Vec<f64>> = sorted[n_good..]
            .iter()
            .map(|&i| self.observations[i].0.clone())
            .collect();

        // Draw candidates from the good density, keep the best ratio.
        let mut best: Option<(Vec<f64>, f64)> = None;
        for _ in 0..self.cfg.n_candidates {
            let cand = self.sample_from_good(&good);
            let score = self.log_density(&cand, &good) - self.log_density(&cand, &bad);
            if best.as_ref().is_none_or(|(_, s)| score > *s) {
                best = Some((cand, score));
            }
        }
        best.expect("TPE: candidate set cannot be empty").0
    }

    /// Draw one candidate from the per-dimension good-group Parzen windows.
    fn sample_from_good(&mut self, good: &[Vec<f64>]) -> Vec<f64> {
        let specs = self.space.specs().to_vec();
        specs
            .iter()
            .enumerate()
            .map(|(d, spec)| match spec.kind {
                ParamKind::Uniform { lo, hi } | ParamKind::LogUniform { lo, hi } => {
                    let log_scale = matches!(spec.kind, ParamKind::LogUniform { .. });
                    let (tlo, thi) = if log_scale {
                        (lo.ln(), hi.ln())
                    } else {
                        (lo, hi)
                    };
                    let centres: Vec<f64> = good
                        .iter()
                        .map(|x| if log_scale { x[d].ln() } else { x[d] })
                        .collect();
                    let bw = bandwidth(&centres, tlo, thi);
                    // Pick a kernel centre, draw a truncated Gaussian.
                    let c = centres[self.rng.gen_range(0..centres.len())];
                    let mut v;
                    loop {
                        v = c + bw * gauss(&mut self.rng);
                        if v >= tlo && v <= thi {
                            break;
                        }
                    }
                    if log_scale {
                        v.exp()
                    } else {
                        v
                    }
                }
                ParamKind::Choice { n } => {
                    // Smoothed categorical sampled from good frequencies.
                    let mut counts = vec![1.0f64; n];
                    for x in good {
                        counts[x[d] as usize] += 1.0;
                    }
                    let total: f64 = counts.iter().sum();
                    let mut u = self.rng.gen::<f64>() * total;
                    let mut pick = n - 1;
                    for (k, &c) in counts.iter().enumerate() {
                        if u < c {
                            pick = k;
                            break;
                        }
                        u -= c;
                    }
                    pick as f64
                }
            })
            .collect()
    }

    /// Log density of `x` under the group's per-dimension Parzen model
    /// (dimensions treated independently — the "tree" factorisation).
    fn log_density(&self, x: &[f64], group: &[Vec<f64>]) -> f64 {
        let mut logp = 0.0;
        for (d, spec) in self.space.specs().iter().enumerate() {
            match spec.kind {
                ParamKind::Uniform { lo, hi } | ParamKind::LogUniform { lo, hi } => {
                    let log_scale = matches!(spec.kind, ParamKind::LogUniform { .. });
                    let (tlo, thi) = if log_scale {
                        (lo.ln(), hi.ln())
                    } else {
                        (lo, hi)
                    };
                    let xv = if log_scale { x[d].ln() } else { x[d] };
                    let centres: Vec<f64> = group
                        .iter()
                        .map(|g| if log_scale { g[d].ln() } else { g[d] })
                        .collect();
                    let bw = bandwidth(&centres, tlo, thi);
                    let mut p = 0.0;
                    for &c in &centres {
                        let z = (xv - c) / bw;
                        p += (-0.5 * z * z).exp();
                    }
                    p /= centres.len() as f64 * bw * (2.0 * std::f64::consts::PI).sqrt();
                    logp += (p + 1e-300).ln();
                }
                ParamKind::Choice { n } => {
                    let mut counts = vec![1.0f64; n];
                    for g in group {
                        counts[g[d] as usize] += 1.0;
                    }
                    let total: f64 = counts.iter().sum();
                    logp += (counts[x[d] as usize] / total).ln();
                }
            }
        }
        logp
    }
}

/// Scott-style bandwidth with a floor tied to the domain width.
fn bandwidth(centres: &[f64], lo: f64, hi: f64) -> f64 {
    let n = centres.len() as f64;
    let mean = centres.iter().sum::<f64>() / n;
    let var = centres.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / n;
    let scott = var.sqrt() * n.powf(-0.2);
    let floor = (hi - lo) / (1.0 + n);
    scott.max(floor).max(1e-12)
}

/// Standard normal draw (Box–Muller).
fn gauss<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ParamKind;

    fn toy_space() -> SearchSpace {
        SearchSpace::new()
            .add("x", ParamKind::Uniform { lo: 0.0, hi: 1.0 })
            .add("y", ParamKind::Uniform { lo: 0.0, hi: 1.0 })
            .add("c", ParamKind::Choice { n: 2 })
    }

    /// Loss: bowl at (0.2, 0.7), with category 1 adding a penalty.
    fn loss(x: &[f64]) -> f64 {
        (x[0] - 0.2).powi(2) + (x[1] - 0.7).powi(2) + 0.3 * x[2]
    }

    #[test]
    fn startup_phase_samples_randomly() {
        let mut tpe = TpeSampler::new(toy_space(), TpeConfig::default());
        for _ in 0..5 {
            let s = tpe.suggest();
            assert_eq!(s.len(), 3);
        }
        assert!(tpe.is_empty());
    }

    #[test]
    fn tpe_beats_random_search_on_toy_problem() {
        // Median-of-seeds comparison: single runs of either method are too
        // noisy on an easy 2-D bowl to order reliably.
        let budget = 60;
        let median = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let tpe_bests: Vec<f64> = (0..7u64)
            .map(|seed| {
                let mut tpe = TpeSampler::new(
                    toy_space(),
                    TpeConfig {
                        seed,
                        ..Default::default()
                    },
                );
                let mut best = f64::INFINITY;
                for _ in 0..budget {
                    let s = tpe.suggest();
                    let l = loss(&s);
                    best = best.min(l);
                    tpe.observe(s, l);
                }
                best
            })
            .collect();
        let rand_bests: Vec<f64> = (0..7u64)
            .map(|seed| {
                let mut rng = ChaCha8Rng::seed_from_u64(100 + seed);
                let sp = toy_space();
                let mut best = f64::INFINITY;
                for _ in 0..budget {
                    best = best.min(loss(&sp.sample(&mut rng)));
                }
                best
            })
            .collect();
        let (tm, rm) = (median(tpe_bests), median(rand_bests));
        assert!(
            tm <= rm * 1.1,
            "TPE median {tm} should not lose to random median {rm}"
        );
    }

    #[test]
    fn suggestions_concentrate_near_optimum_after_observations() {
        let mut tpe = TpeSampler::new(
            toy_space(),
            TpeConfig {
                seed: 9,
                ..Default::default()
            },
        );
        for _ in 0..80 {
            let s = tpe.suggest();
            let l = loss(&s);
            tpe.observe(s, l);
        }
        // Average the next 20 suggestions: should sit near (0.2, 0.7, cat 0).
        let mut mx = 0.0;
        let mut my = 0.0;
        let mut c0 = 0;
        for _ in 0..20 {
            let s = tpe.suggest();
            mx += s[0];
            my += s[1];
            if s[2] == 0.0 {
                c0 += 1;
            }
            let l = loss(&s);
            tpe.observe(s, l);
        }
        mx /= 20.0;
        my /= 20.0;
        assert!((mx - 0.2).abs() < 0.25, "mean x = {mx}");
        assert!((my - 0.7).abs() < 0.25, "mean y = {my}");
        assert!(c0 >= 12, "category 0 picked only {c0}/20 times");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut tpe = TpeSampler::new(
                toy_space(),
                TpeConfig {
                    seed,
                    ..Default::default()
                },
            );
            let mut hist = Vec::new();
            for _ in 0..30 {
                let s = tpe.suggest();
                let l = loss(&s);
                hist.push(s.clone());
                tpe.observe(s, l);
            }
            hist
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
