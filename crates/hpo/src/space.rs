//! Search-space description shared by the samplers.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Kind of one tunable dimension.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ParamKind {
    /// Uniform on [lo, hi].
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Log-uniform on [lo, hi] (both > 0) — learning rates, weight decay.
    LogUniform {
        /// Lower bound (> 0).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Categorical with `n` choices, encoded as 0.0..n as f64.
    Choice {
        /// Number of categories.
        n: usize,
    },
}

/// One named dimension.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Human-readable name ("lr", "hidden_dim", …).
    pub name: String,
    /// Distribution.
    pub kind: ParamKind,
}

/// A full search space (ordered list of dimensions).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SearchSpace {
    specs: Vec<ParamSpec>,
}

impl SearchSpace {
    /// Empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a dimension (builder style).
    pub fn add(mut self, name: impl Into<String>, kind: ParamKind) -> Self {
        match kind {
            ParamKind::Uniform { lo, hi } => assert!(lo < hi, "Uniform: lo < hi required"),
            ParamKind::LogUniform { lo, hi } => {
                assert!(lo > 0.0 && lo < hi, "LogUniform: 0 < lo < hi required")
            }
            ParamKind::Choice { n } => assert!(n >= 1, "Choice: need at least one option"),
        }
        self.specs.push(ParamSpec {
            name: name.into(),
            kind,
        });
        self
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.specs.len()
    }

    /// Dimension specs.
    pub fn specs(&self) -> &[ParamSpec] {
        &self.specs
    }

    /// Sample a configuration uniformly from the prior.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Vec<f64> {
        self.specs
            .iter()
            .map(|s| match s.kind {
                ParamKind::Uniform { lo, hi } => rng.gen_range(lo..=hi),
                ParamKind::LogUniform { lo, hi } => (rng.gen_range(lo.ln()..=hi.ln())).exp(),
                ParamKind::Choice { n } => rng.gen_range(0..n) as f64,
            })
            .collect()
    }

    /// Validate that a configuration lies inside the space.
    pub fn contains(&self, x: &[f64]) -> bool {
        x.len() == self.dim()
            && self.specs.iter().zip(x).all(|(s, &v)| match s.kind {
                ParamKind::Uniform { lo, hi } | ParamKind::LogUniform { lo, hi } => {
                    v >= lo && v <= hi
                }
                ParamKind::Choice { n } => v >= 0.0 && v < n as f64 && v.fract() == 0.0,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn space() -> SearchSpace {
        SearchSpace::new()
            .add("lr", ParamKind::LogUniform { lo: 1e-4, hi: 1e-1 })
            .add("dropout", ParamKind::Uniform { lo: 0.0, hi: 0.2 })
            .add("conv", ParamKind::Choice { n: 3 })
    }

    #[test]
    fn samples_stay_in_space() {
        let sp = space();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            let x = sp.sample(&mut rng);
            assert!(sp.contains(&x), "{x:?}");
        }
    }

    #[test]
    fn log_uniform_spreads_over_decades() {
        let sp = SearchSpace::new().add("lr", ParamKind::LogUniform { lo: 1e-4, hi: 1e-1 });
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut small = 0;
        let mut large = 0;
        for _ in 0..500 {
            let v = sp.sample(&mut rng)[0];
            if v < 1e-3 {
                small += 1;
            }
            if v > 1e-2 {
                large += 1;
            }
        }
        // Log-uniform: each decade gets roughly a third of the mass.
        assert!(small > 100, "small = {small}");
        assert!(large > 100, "large = {large}");
    }

    #[test]
    fn contains_rejects_bad_configs() {
        let sp = space();
        assert!(!sp.contains(&[1e-4, 0.1])); // wrong dim
        assert!(!sp.contains(&[1.0, 0.1, 0.0])); // lr out of range
        assert!(!sp.contains(&[1e-3, 0.1, 3.0])); // choice out of range
        assert!(!sp.contains(&[1e-3, 0.1, 0.5])); // non-integral choice
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn rejects_inverted_bounds() {
        let _ = SearchSpace::new().add("x", ParamKind::Uniform { lo: 1.0, hi: 0.0 });
    }
}
