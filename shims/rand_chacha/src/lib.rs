//! Offline stand-in for `rand_chacha`.
//!
//! Exposes [`ChaCha8Rng`] with the same construction API the workspace uses
//! (`SeedableRng::seed_from_u64`). The generator is xoshiro256**, seeded
//! through SplitMix64 — a different keystream than real ChaCha8, but every
//! consumer in this workspace only depends on the stream being a
//! deterministic, statistically solid function of the seed (per-row MCMC
//! streams, train/val splits, dropout masks), which this guarantees.

use rand::{RngCore, SeedableRng};

/// Deterministic seeded generator (xoshiro256** core).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro256** must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e3779b97f4a7c15;
        }
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn roughly_uniform_unit_floats() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
