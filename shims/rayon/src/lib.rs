//! Offline, API-compatible subset of `rayon`.
//!
//! Implements the slice of the rayon API this workspace uses —
//! `par_iter_mut().enumerate().for_each(..)` over slices,
//! `(0..n).into_par_iter().map(..).collect()`, `map_init` (one reusable
//! state per worker, the zero-allocation hook the MCMC builder's row
//! workspaces rely on), `Vec::into_par_iter().for_each(..)`,
//! `ThreadPoolBuilder`, `ThreadPool::install`, and `current_num_threads` —
//! with genuine parallelism on `std::thread::scope`. Work is split into one
//! contiguous chunk per thread, so results are assembled in input order and
//! the output is bit-identical for any thread count (the property the MCMC
//! builder's determinism contract relies on).
//!
//! Thread-count resolution order: innermost `ThreadPool::install` >
//! `RAYON_NUM_THREADS` > `std::thread::available_parallelism()`.

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

thread_local! {
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Process-wide default thread count, resolved once (like real rayon's
/// global pool): the environment scan and the `available_parallelism`
/// syscall are too expensive for per-call hot paths such as `spmv_auto`.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

/// Number of threads parallel operations started from this thread will use.
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED_THREADS.with(|c| c.get()) {
        return n;
    }
    *DEFAULT_THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => current_num_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "pool" is a thread-count scope: `install` pins the count for the
/// duration of the closure on the calling thread. Threads themselves are
/// spawned per parallel operation (scoped), not kept resident.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }
}

/// Evenly split `len` items into `parts` contiguous chunk lengths.
fn chunk_lengths(len: usize, parts: usize) -> Vec<usize> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    (0..parts)
        .map(|i| base + usize::from(i < extra))
        .filter(|&c| c > 0)
        .collect()
}

/// Run `f(start..end)` for each chunk on its own scoped thread and collect
/// the per-chunk outputs in chunk order.
fn run_chunked<T: Send>(len: usize, f: impl Fn(Range<usize>) -> T + Sync) -> Vec<T> {
    let threads = current_num_threads();
    if threads <= 1 || len <= 1 {
        return if len == 0 {
            Vec::new()
        } else {
            vec![f(0..len)]
        };
    }
    let lens = chunk_lengths(len, threads);
    let mut bounds = Vec::with_capacity(lens.len());
    let mut start = 0usize;
    for l in &lens {
        bounds.push(start..start + l);
        start += l;
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .into_iter()
            .map(|range| scope.spawn(|| f(range)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

// ---------------------------------------------------------------------------
// Index-space parallel iterator: (0..n).into_par_iter().map(f).collect()
// ---------------------------------------------------------------------------

pub trait IntoParallelIterator {
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange(self)
    }
}

pub struct ParRange(Range<usize>);

impl ParRange {
    pub fn map<T, F>(self, f: F) -> ParRangeMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParRangeMap { range: self.0, f }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let start = self.0.start;
        let len = self.0.len();
        run_chunked(len, |chunk| {
            for i in chunk {
                f(start + i);
            }
        });
    }

    /// `map` with one reusable worker state per contiguous chunk: `init` is
    /// called once per worker thread and the resulting state is threaded
    /// through every item of that worker's chunk. Upstream rayon calls
    /// `init` once per *split*; here a split is exactly one contiguous
    /// chunk, so the semantics coincide. Output order is input order.
    pub fn map_init<S, T, INIT, F>(self, init: INIT, f: F) -> ParRangeMapInit<INIT, F>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
        T: Send,
    {
        ParRangeMapInit {
            range: self.0,
            init,
            f,
        }
    }
}

pub struct ParRangeMapInit<INIT, F> {
    range: Range<usize>,
    init: INIT,
    f: F,
}

impl<S, T, INIT, F> ParRangeMapInit<INIT, F>
where
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
    T: Send,
{
    pub fn collect<C: FromParallelIterator<T>>(self) -> C {
        let start = self.range.start;
        let len = self.range.len();
        let (init, f) = (&self.init, &self.f);
        let chunks = run_chunked(len, |chunk| {
            let mut state = init();
            chunk.map(|i| f(&mut state, start + i)).collect::<Vec<T>>()
        });
        C::from_chunks(chunks)
    }
}

pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

pub trait FromParallelIterator<T> {
    fn from_chunks(chunks: Vec<Vec<T>>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_chunks(chunks: Vec<Vec<T>>) -> Self {
        let total = chunks.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for c in chunks {
            out.extend(c);
        }
        out
    }
}

impl<T: Send, F: Fn(usize) -> T + Sync> ParRangeMap<F> {
    pub fn collect<C: FromParallelIterator<T>>(self) -> C {
        let start = self.range.start;
        let len = self.range.len();
        let f = &self.f;
        let chunks = run_chunked(len, |chunk| chunk.map(|i| f(start + i)).collect::<Vec<T>>());
        C::from_chunks(chunks)
    }

    pub fn sum<S: std::iter::Sum<T> + std::iter::Sum<S> + Send>(self) -> S {
        let start = self.range.start;
        let len = self.range.len();
        let f = &self.f;
        let partials = run_chunked(len, |chunk| chunk.map(|i| f(start + i)).sum::<S>());
        partials.into_iter().sum()
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec(self)
    }
}

/// Owned-vector parallel iterator: items are moved into one contiguous chunk
/// per worker thread. Supports the `for_each`/`map().collect()` subset.
pub struct ParVec<T>(Vec<T>);

impl<T: Send> ParVec<T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let threads = current_num_threads();
        let len = self.0.len();
        if threads <= 1 || len <= 1 {
            self.0.into_iter().for_each(f);
            return;
        }
        let lens = chunk_lengths(len, threads);
        let mut items = self.0;
        // Split off chunks back-to-front so each drains without reshuffling.
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(lens.len());
        for &l in lens.iter().rev() {
            let tail = items.split_off(items.len() - l);
            chunks.push(tail);
        }
        std::thread::scope(|scope| {
            for chunk in chunks {
                let f = &f;
                scope.spawn(move || chunk.into_iter().for_each(f));
            }
        });
    }

    pub fn map<U, F>(self, f: F) -> ParVecMap<T, F>
    where
        F: Fn(T) -> U + Sync,
        U: Send,
    {
        ParVecMap { items: self.0, f }
    }
}

pub struct ParVecMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParVecMap<T, F> {
    pub fn collect<C: FromParallelIterator<U>>(self) -> C {
        let threads = current_num_threads();
        let len = self.items.len();
        let f = &self.f;
        if threads <= 1 || len <= 1 {
            return C::from_chunks(vec![self.items.into_iter().map(f).collect()]);
        }
        let lens = chunk_lengths(len, threads);
        let mut items = self.items;
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(lens.len());
        for &l in lens.iter().rev() {
            chunks.push(items.split_off(items.len() - l));
        }
        chunks.reverse();
        let out = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        C::from_chunks(out)
    }
}

// ---------------------------------------------------------------------------
// Mutable slice parallel iterator: v.par_iter_mut().enumerate().for_each(..)
// ---------------------------------------------------------------------------

pub trait ParallelSliceMut<T> {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
}

pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    pub fn enumerate(self) -> ParEnumerateMut<'a, T> {
        ParEnumerateMut { slice: self.slice }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        self.enumerate().for_each(|(_, item)| f(item));
    }
}

pub struct ParEnumerateMut<'a, T> {
    slice: &'a mut [T],
}

impl<T: Send> ParEnumerateMut<'_, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        let len = self.slice.len();
        let threads = current_num_threads();
        if threads <= 1 || len <= 1 {
            for (i, item) in self.slice.iter_mut().enumerate() {
                f((i, item));
            }
            return;
        }
        let lens = chunk_lengths(len, threads);
        std::thread::scope(|scope| {
            let mut rest = self.slice;
            let mut base = 0usize;
            for l in lens {
                let (head, tail) = rest.split_at_mut(l);
                rest = tail;
                let start = base;
                base += l;
                let f = &f;
                scope.spawn(move || {
                    for (off, item) in head.iter_mut().enumerate() {
                        f((start + off, item));
                    }
                });
            }
        });
    }
}

pub mod prelude {
    pub use super::{FromParallelIterator, IntoParallelIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_enumerate_touches_every_index_once() {
        let mut v = vec![0usize; 777];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i + 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| assert_eq!(nested.install(current_num_threads), 1));
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let reference: Vec<f64> = (0..500).map(|i| (i as f64).sin()).collect();
        for threads in [1usize, 2, 7] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got: Vec<f64> =
                pool.install(|| (0..500).into_par_iter().map(|i| (i as f64).sin()).collect());
            assert_eq!(got, reference);
        }
    }

    #[test]
    fn map_init_reuses_state_and_preserves_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        for threads in [1usize, 2, 6] {
            inits.store(0, Ordering::SeqCst);
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got: Vec<usize> = pool.install(|| {
                (0..200)
                    .into_par_iter()
                    .map_init(
                        || {
                            inits.fetch_add(1, Ordering::SeqCst);
                            vec![0usize; 8] // reusable scratch
                        },
                        |scratch, i| {
                            scratch[i % 8] += 1;
                            i * 3
                        },
                    )
                    .collect()
            });
            assert_eq!(got, (0..200).map(|i| i * 3).collect::<Vec<_>>());
            // One state per worker chunk, never per item.
            assert!(inits.load(Ordering::SeqCst) <= threads);
        }
    }

    #[test]
    fn vec_into_par_iter_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in [1usize, 3, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let sum = AtomicUsize::new(0);
            let items: Vec<usize> = (1..=100).collect();
            pool.install(|| {
                items.into_par_iter().for_each(|v| {
                    sum.fetch_add(v, Ordering::Relaxed);
                })
            });
            assert_eq!(sum.load(Ordering::SeqCst), 5050);

            let doubled: Vec<usize> = pool.install(|| {
                (1..=50usize)
                    .collect::<Vec<_>>()
                    .into_par_iter()
                    .map(|v| v * 2)
                    .collect()
            });
            assert_eq!(doubled, (1..=50).map(|v| v * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunk_lengths_cover_exactly() {
        for len in [0usize, 1, 5, 16, 97] {
            for parts in [1usize, 2, 3, 8, 100] {
                let lens = chunk_lengths(len, parts);
                assert_eq!(lens.iter().sum::<usize>(), len);
                assert!(lens.iter().all(|&l| l > 0) || len == 0);
            }
        }
    }
}
