//! Offline, API-compatible subset of `proptest`.
//!
//! Implements the surface this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`Just`], `proptest::collection::vec`, `ProptestConfig`, and
//! the [`proptest!`] macro with `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest, deliberate for an offline shim: cases
//! are sampled from a deterministic per-test RNG (seeded from the test
//! name), and failing inputs are *not* shrunk — the failure message simply
//! carries the case number, which reproduces exactly on re-run.

pub mod test_runner {
    /// Failure raised by `prop_assert!` family macros; property bodies run
    /// inside a `Result<(), TestCaseError>` context so helpers can
    /// propagate failures with `?` exactly as with real proptest.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    impl From<String> for TestCaseError {
        fn from(s: String) -> Self {
            TestCaseError(s)
        }
    }

    impl From<&str> for TestCaseError {
        fn from(s: &str) -> Self {
            TestCaseError(s.to_string())
        }
    }

    /// Deterministic generator used to drive strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(stream: u64, case: u64) -> Self {
            TestRng {
                state: stream
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add(case.wrapping_mul(0xd1b54a32d192ed03))
                    ^ 0x5851f42d4c957f2d,
            }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// FNV-1a over the test name: a stable per-test stream id.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for ::core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for ::core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for ::core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for ::core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

pub mod collection {
    use super::{Strategy, TestRng};

    /// Accepted size arguments for [`vec`].
    pub trait IntoSizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for ::core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for ::core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64 + 1;
            let len = self.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-block configuration; only `cases` is interpreted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(concat!("assertion failed: ", stringify!($cond), ": {}"), format!($($fmt)+)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __l, __r, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __stream = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::deterministic(__stream, __case as u64);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome = (|| -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(__e) = __outcome {
                        panic!("property failed at case {__case}: {__e}");
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, Vec<f64>)> {
        (1usize..10)
            .prop_flat_map(|n| collection::vec(-1.0f64..1.0, n..=n).prop_map(move |v| (n, v)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn flat_map_links_sizes((n, v) in arb_pair()) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|t| (-1.0..1.0).contains(t)));
        }

        #[test]
        fn just_is_constant(k in Just(7usize)) {
            prop_assert_eq!(k, 7);
        }
    }

    #[test]
    fn deterministic_per_test() {
        use super::test_runner::TestRng;
        use super::Strategy;
        let s = (0usize..100, 0.0f64..1.0);
        let mut r1 = TestRng::deterministic(1, 2);
        let mut r2 = TestRng::deterministic(1, 2);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
