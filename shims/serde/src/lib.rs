//! Offline, API-compatible subset of `serde`.
//!
//! Real serde is format-agnostic; the only consumer in this workspace is
//! `serde_json`, so this shim collapses the data model to a JSON [`Value`]
//! tree: `Serialize` lowers a type to a `Value`, `Deserialize` lifts it
//! back. The derive macros (from the sibling `serde_derive` shim) generate
//! exactly those impls for structs with named fields and for enums with
//! unit, tuple, and struct variants (externally tagged, as in real serde).
//!
//! Integers are kept exact (`i64`/`u64` payloads, not lossy `f64`), so
//! round-tripping seeds and indices through JSON is lossless.

pub use serde_derive::{Deserialize, Serialize};

/// A parsed/serializable JSON tree. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(u) => i64::try_from(u).ok(),
            Value::Int(i) => Some(i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }

    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error(format!("missing field `{field}` while deserializing {ty}"))
    }

    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Error(format!("expected {expected}, got {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lower `self` to a JSON [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Lift `Self` back from a JSON [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::type_mismatch("bool", v)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::type_mismatch("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| Error::custom(format!(
                    "integer {u} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::type_mismatch("integer", v))?;
                <$t>::try_from(i).map_err(|_| Error::custom(format!(
                    "integer {i} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::type_mismatch("number", v))
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::type_mismatch("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::type_mismatch("single-character string", v)),
        }
    }
}

// --- composite impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::type_mismatch("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error::type_mismatch("tuple array", v)),
                }
            }
        }
    )+};
}
impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort for stable output (HashMap iteration order is not).
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::type_mismatch("object", v)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::type_mismatch("object", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
