//! Minimal thread-per-connection HTTP/1.1 server and client over
//! `std::net` — the transport shim behind `mcmcmi-serve`.
//!
//! The build environment has no crates.io, so instead of axum/tokio (or
//! `tiny_http`, whose surface this loosely follows) the serving daemon
//! runs on this deliberately small implementation: blocking sockets, one
//! thread per connection, `Connection: close` semantics. The subset
//! implemented is exactly what a JSON RPC-over-POST service needs:
//!
//! - request line + headers + `Content-Length` body parsing (no chunked
//!   encoding, no keep-alive, no TLS);
//! - graceful shutdown: the accept loop is non-blocking and polls a stop
//!   flag, and [`ServerHandle::join`] waits for in-flight connection
//!   threads to finish so no response is cut off mid-write;
//! - a matching blocking [`client`] for tests and smoke drivers.
//!
//! The handler is a plain `Fn(Request) -> Response`, so the application
//! layer (routing, JSON envelopes, admission control) is completely
//! separable from this transport: swapping in a real async stack is a
//! drop-in replacement of this crate only.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Cap on header block + body sizes the parser will accept; a malformed or
/// hostile client cannot make the server buffer unboundedly.
pub const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Default body cap (callers can raise it via [`HttpServer::max_body`]).
pub const DEFAULT_MAX_BODY_BYTES: usize = 256 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method verb, uppercased (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query string included, if any).
    pub path: String,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (`Content-Length`-delimited).
    pub body: Vec<u8>,
}

impl Request {
    /// Header lookup by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// An HTTP response the handler returns.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (the reason phrase is derived from it).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json".to_string(),
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain".to_string(),
            body: body.into().into_bytes(),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A bound-but-not-yet-serving listener.
pub struct HttpServer {
    listener: TcpListener,
    addr: SocketAddr,
    max_body: usize,
}

impl HttpServer {
    /// Bind to `addr` (use port 0 for an ephemeral port; see
    /// [`HttpServer::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            addr,
            max_body: DEFAULT_MAX_BODY_BYTES,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Override the request-body size cap.
    pub fn max_body(mut self, bytes: usize) -> Self {
        self.max_body = bytes;
        self
    }

    /// Start serving on a background accept thread; one spawned thread per
    /// connection. The handler runs on the connection thread and must
    /// answer every request (blocking is fine — that is the model).
    pub fn serve<H>(self, handler: H) -> io::Result<ServerHandle>
    where
        H: Fn(Request) -> Response + Send + Sync + 'static,
    {
        self.listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let handler = Arc::new(handler);
        let max_body = self.max_body;
        let accept_stop = Arc::clone(&stop);
        let accept_active = Arc::clone(&active);
        let listener = self.listener;
        let thread = std::thread::Builder::new()
            .name("httpd-accept".to_string())
            .spawn(move || loop {
                if accept_stop.load(Ordering::Acquire) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let h = Arc::clone(&handler);
                        let guard = ConnGuard::enter(&accept_active);
                        // Detached: the handle tracks the count, not the
                        // JoinHandle — join() waits on the counter.
                        let _ = std::thread::Builder::new()
                            .name("httpd-conn".to_string())
                            .spawn(move || {
                                let _guard = guard;
                                let _ = handle_connection(stream, &*h, max_body);
                            });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            })?;
        Ok(ServerHandle {
            stop,
            active,
            addr: self.addr,
            thread: Some(thread),
        })
    }
}

/// RAII connection counter used by [`ServerHandle::join`].
struct ConnGuard(Arc<AtomicUsize>);

impl ConnGuard {
    fn enter(counter: &Arc<AtomicUsize>) -> Self {
        counter.fetch_add(1, Ordering::AcqRel);
        Self(Arc::clone(counter))
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Handle to a running server: stop it, wait for it to wind down.
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    addr: SocketAddr,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal the accept loop to stop taking new connections. In-flight
    /// connection threads keep running; use [`ServerHandle::join`] to wait
    /// for them.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Stop accepting and wait (bounded by `drain`) for in-flight
    /// connections to finish. Returns `true` if everything drained inside
    /// the deadline.
    pub fn join(mut self, drain: Duration) -> bool {
        self.stop();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        let deadline = std::time::Instant::now() + drain;
        while self.active.load(Ordering::Acquire) > 0 {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Read one request, run the handler, write the response, close.
fn handle_connection(
    mut stream: TcpStream,
    handler: &dyn Fn(Request) -> Response,
    max_body: usize,
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let req = match read_request(&mut stream, max_body) {
        Ok(r) => r,
        Err(e) => {
            let status = match e.kind() {
                io::ErrorKind::InvalidData => 400,
                io::ErrorKind::OutOfMemory => 413,
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => 408,
                _ => return Err(e),
            };
            let resp = Response::text(status, format!("{e}"));
            return write_response(&mut stream, &resp);
        }
    };
    let resp = handler(req);
    write_response(&mut stream, &resp)
}

/// Parse request line + headers + `Content-Length` body.
fn read_request(stream: &mut TcpStream, max_body: usize) -> io::Result<Request> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    // Accumulate until the blank line; anything past it is body prefix.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_crlfcrlf(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(bad("header block too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed before headers completed"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end]).map_err(|_| bad("non-UTF-8 headers"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_ascii_uppercase();
    let path = parts.next().ok_or_else(|| bad("missing path"))?.to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse().map_err(|_| bad("bad Content-Length")))
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        // Drain (a bounded amount of) the declared body before erroring so
        // the client finishes its write and can read the 413 instead of
        // hitting a connection reset mid-send.
        let mut remaining = content_length
            .saturating_sub(buf.len() - header_end - 4)
            .min(4 * 1024 * 1024);
        while remaining > 0 {
            let want = remaining.min(chunk.len());
            match stream.read(&mut chunk[..want]) {
                Ok(0) | Err(_) => break,
                Ok(n) => remaining -= n,
            }
        }
        return Err(io::Error::new(
            io::ErrorKind::OutOfMemory,
            "body exceeds size cap",
        ));
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed before body completed"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn find_crlfcrlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// Blocking HTTP/1.1 client for tests and smoke drivers: one request per
/// connection, mirroring the server's `Connection: close` model.
pub mod client {
    use super::*;

    /// Issue one request; returns `(status, body)`.
    pub fn request(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &str,
    ) -> io::Result<(u16, String)> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        parse_response(&raw)
    }

    /// `POST path` with a JSON body.
    pub fn post(addr: SocketAddr, path: &str, body: &str) -> io::Result<(u16, String)> {
        request(addr, "POST", path, body)
    }

    /// `GET path`.
    pub fn get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
        request(addr, "GET", path, "")
    }

    fn parse_response(raw: &[u8]) -> io::Result<(u16, String)> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let header_end = find_crlfcrlf(raw).ok_or_else(|| bad("no header terminator"))?;
        let head = std::str::from_utf8(&raw[..header_end]).map_err(|_| bad("non-UTF-8 head"))?;
        let status_line = head.split("\r\n").next().ok_or_else(|| bad("empty head"))?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad status line"))?;
        let body = String::from_utf8_lossy(&raw[header_end + 4..]).into_owned();
        Ok((status, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> ServerHandle {
        HttpServer::bind("127.0.0.1:0")
            .unwrap()
            .serve(|req| {
                Response::json(
                    200,
                    format!(
                        "{{\"method\":\"{}\",\"path\":\"{}\",\"len\":{}}}",
                        req.method,
                        req.path,
                        req.body.len()
                    ),
                )
            })
            .unwrap()
    }

    #[test]
    fn round_trip_post_and_get() {
        let server = echo_server();
        let addr = server.addr();
        let (status, body) = client::post(addr, "/solve", "{\"x\":1}").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"method\":\"POST\""));
        assert!(body.contains("\"len\":7"));
        let (status, body) = client::get(addr, "/stats").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"path\":\"/stats\""));
        assert!(server.join(Duration::from_secs(2)));
    }

    #[test]
    fn concurrent_clients_all_answered() {
        let server = echo_server();
        let addr = server.addr();
        let threads: Vec<_> = (0..16)
            .map(|i| {
                std::thread::spawn(move || {
                    let body = format!("{{\"i\":{i}}}");
                    client::post(addr, "/solve", &body).unwrap().0
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), 200);
        }
        assert!(server.join(Duration::from_secs(2)));
    }

    #[test]
    fn large_body_round_trips() {
        let server = echo_server();
        let addr = server.addr();
        let body = "x".repeat(1 << 20);
        let (status, resp) = client::post(addr, "/big", &body).unwrap();
        assert_eq!(status, 200);
        assert!(resp.contains(&format!("\"len\":{}", 1 << 20)));
        assert!(server.join(Duration::from_secs(2)));
    }

    #[test]
    fn oversized_body_is_rejected_not_buffered() {
        let server = HttpServer::bind("127.0.0.1:0")
            .unwrap()
            .max_body(1024)
            .serve(|_| Response::text(200, "ok"))
            .unwrap();
        let addr = server.addr();
        let (status, _) = client::post(addr, "/x", &"y".repeat(4096)).unwrap();
        assert_eq!(status, 413);
        assert!(server.join(Duration::from_secs(2)));
    }

    #[test]
    fn stopped_server_refuses_new_connections() {
        let server = echo_server();
        let addr = server.addr();
        assert!(server.join(Duration::from_secs(2)));
        // The listener is closed once the handle is consumed; a fresh
        // connection now fails or is never answered.
        match TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
            Err(_) => {}
            Ok(mut s) => {
                let _ = s.write_all(b"GET / HTTP/1.1\r\n\r\n");
                let mut buf = Vec::new();
                s.set_read_timeout(Some(Duration::from_millis(300)))
                    .unwrap();
                let n = s.read_to_end(&mut buf).unwrap_or(0);
                assert_eq!(n, 0, "no handler should answer after join()");
            }
        }
    }
}
