//! Offline, API-compatible subset of `criterion`.
//!
//! Benches compile and run with `cargo bench`; each `Bencher::iter` target
//! is warmed up, then timed over an adaptive number of iterations, and a
//! `name  median-per-iter` line is printed. There is no statistical
//! machinery, HTML report, or baseline comparison — this shim exists so the
//! real benchmark *code* in `crates/bench/benches` stays exactly as it
//! would be against upstream criterion.
//!
//! Quick mode (upstream's `--quick`): pass `-- --quick` to `cargo bench` or
//! set `CRITERION_QUICK=1`. Each target then runs one short measurement
//! after warm-up — numbers are noisy but every bench body is exercised,
//! which is what the CI bench-smoke step needs to keep benches compiling
//! *and running*.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// Quick-smoke mode: single short sample per target (CI rot guard), enabled
/// by `-- --quick` on the bench command line or `CRITERION_QUICK=1`.
fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

pub struct Bencher {
    /// Median nanoseconds per iteration, recorded by `iter`.
    ns_per_iter: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: run once, then scale the batch so one
        // measurement takes on the order of 10 ms (1 ms in quick mode).
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let (target, n_samples) = if quick_mode() {
            (Duration::from_millis(1), 1)
        } else {
            (Duration::from_millis(10), 5)
        };
        let batch = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut samples = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        ns_per_iter: f64::NAN,
    };
    f(&mut b);
    let ns = b.ns_per_iter;
    let human = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    };
    println!("{label:<50} time: {human}/iter");
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.to_string(), f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..100 * k).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
