//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this workspace has no reachable crates.io
//! registry, so the traits the codebase consumes (`RngCore`, `Rng`,
//! `SeedableRng`, `seq::SliceRandom`) are vendored here. Semantics match
//! `rand 0.8` for everything the workspace relies on: `gen::<f64>()` is
//! uniform on `[0, 1)`, `gen_range` accepts half-open and inclusive ranges
//! over the primitive numeric types, and `shuffle` is a Fisher–Yates pass.
//! The exact output *streams* are not those of the upstream crate — every
//! consumer in this workspace only requires determinism per seed, which
//! this shim provides.

/// Low-level source of randomness: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Samplable-by-`gen` marker (the `Standard` distribution in real rand).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types `gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as StandardSample>::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Slice extensions: deterministic Fisher–Yates shuffle and choosing.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SplitMix(u64);
    impl RngCore for SplitMix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = SplitMix(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SplitMix(3);
        for _ in 0..1000 {
            let a = rng.gen_range(5usize..17);
            assert!((5..17).contains(&a));
            let b = rng.gen_range(-2.5f64..=1.5);
            assert!((-2.5..=1.5).contains(&b));
            let c = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&c));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = SplitMix(11);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
