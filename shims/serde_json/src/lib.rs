//! Offline, API-compatible subset of `serde_json`, built on the vendored
//! serde shim's [`Value`] model.
//!
//! Provides the calls the workspace makes — `to_string[_pretty]`,
//! `to_writer[_pretty]`, `from_str`, `from_reader` — with a conforming JSON
//! parser and printer. Numbers round-trip exactly: integers stay integers,
//! floats print via Rust's shortest-roundtrip `Display` so
//! `parse(print(x)) == x` bit-for-bit for every finite `f64`.

pub use serde::Value;

use serde::{Deserialize, Serialize};

#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// --- serialization ---------------------------------------------------------

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; real serde_json errors here. A null is
        // the friendliest lossy encoding for diagnostics output.
        out.push_str("null");
    } else {
        let s = format!("{f}");
        out.push_str(&s);
        // Keep a float marker so integral floats parse back as numbers with
        // the same semantic type class ("3.0" rather than "3").
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (k, (key, item)) in pairs.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
}

// --- deserialization -------------------------------------------------------

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

/// Parse a complete JSON document (surrounding whitespace allowed).
pub fn parse_value_str(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<()> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!(
            "expected `{}` at byte {}, found {:?}",
            c as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                skip_ws(bytes, pos);
                let val = parse_value(bytes, pos)?;
                pairs.push((key, val));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&c) => Err(Error::new(format!(
            "unexpected character `{}` at byte {}",
            c as char, *pos
        ))),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, kw: &str, value: Value) -> Result<Value> {
    if bytes[*pos..].starts_with(kw.as_bytes()) {
        *pos += kw.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        // Surrogate pairs: \uD800-\uDBFF followed by \uDC00-\uDFFF.
                        if (0xd800..0xdc00).contains(&code) {
                            let lo_hex = bytes
                                .get(*pos + 7..*pos + 11)
                                .ok_or_else(|| Error::new("truncated surrogate pair"))?;
                            let lo_hex = std::str::from_utf8(lo_hex)
                                .map_err(|_| Error::new("invalid surrogate pair"))?;
                            let lo = u32::from_str_radix(lo_hex, 16)
                                .map_err(|_| Error::new("invalid surrogate pair"))?;
                            let combined = 0x10000 + ((code - 0xd800) << 10) + (lo - 0xdc00);
                            out.push(
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                            );
                            *pos += 10;
                        } else {
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                            *pos += 4;
                        }
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar.
                let start = *pos;
                let s = std::str::from_utf8(&bytes[start..])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    if !is_float {
        if text.starts_with('-') {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        } else if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\\u00e9\"").unwrap(), "a\nbé");
    }

    #[test]
    fn roundtrip_float_exact() {
        for &x in &[0.1f64, 1.0 / 3.0, 6.02214076e23, -1e-300, 3.0, 0.0] {
            let s = to_string(&x).unwrap();
            let y: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), y.to_bits(), "{s}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v: Vec<(usize, Vec<f64>)> = vec![(1, vec![1.0, 2.5]), (2, vec![])];
        let s = to_string(&v).unwrap();
        let w: Vec<(usize, Vec<f64>)> = from_str(&s).unwrap();
        assert_eq!(v, w);
    }

    #[test]
    fn roundtrip_option() {
        let v: Vec<Option<f64>> = vec![Some(2.0), None];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[2.0,null]");
        let w: Vec<Option<f64>> = from_str(&s).unwrap();
        assert_eq!(v, w);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::UInt(1), Value::Bool(false)]),
            ),
            ("b".into(), Value::Str("x \"y\"".into())),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let w: Value = parse_value_str(&s).unwrap();
        assert_eq!(v, w);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.5x").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(parse_value_str("{\"a\":}").is_err());
    }
}
