//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! shim.
//!
//! The build environment has no crates.io access, so there is no `syn` or
//! `quote`; the input item is parsed directly from the `proc_macro` token
//! stream. Supported shapes — which cover every derived type in this
//! workspace — are structs with named fields and enums whose variants are
//! unit, tuple, or struct-like. Enums serialize externally tagged exactly
//! like real serde: `Unit` → `"Unit"`, `Tuple(a, b)` → `{"Tuple": [a, b]}`,
//! `Struct { x }` → `{"Struct": {"x": …}}`. Generic types are rejected with
//! a compile error rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match (item, mode) {
        (Item::Struct { name, fields }, Mode::Serialize) => serialize_struct(&name, &fields),
        (Item::Struct { name, fields }, Mode::Deserialize) => deserialize_struct(&name, &fields),
        (Item::Enum { name, variants }, Mode::Serialize) => serialize_enum(&name, &variants),
        (Item::Enum { name, variants }, Mode::Deserialize) => deserialize_enum(&name, &variants),
    };
    match code.parse() {
        Ok(ts) => ts,
        Err(e) => compile_error(&format!("serde_derive shim produced invalid code: {e}")),
    }
}

// --- parsing ---------------------------------------------------------------

/// Skip attribute tokens (`#` or `#!` followed by a bracket group) starting
/// at `i`; returns the index of the first non-attribute token.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                if let Some(TokenTree::Punct(p2)) = tokens.get(i) {
                    if p2.as_char() == '!' {
                        i += 1;
                    }
                }
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i..], [TokenTree::Ident(id), ..] if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Split a token list on top-level commas, tracking `<...>` depth so commas
/// inside generic arguments don't split. Groups are atomic tokens, so
/// parentheses/brackets/braces need no tracking.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// First identifier in a field chunk after attributes and visibility: the
/// field name.
fn field_name(chunk: &[TokenTree]) -> Result<String, String> {
    let i = skip_vis(chunk, skip_attrs(chunk, 0));
    match chunk.get(i) {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!(
            "serde shim derive: expected field name, found {other:?}"
        )),
    }
}

fn parse_named_fields(group_tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    split_top_level_commas(group_tokens)
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| field_name(chunk))
        .collect()
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                i += 1;
            }
            Some(_) => i += 1,
            None => return Err("serde shim derive: no struct/enum keyword found".into()),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected type name, found {other:?}"
            ))
        }
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported; write the impls by hand"
        ));
    }
    // `where` clauses without generics don't occur; next token is the body.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde shim derive: tuple struct `{name}` is not supported; use named fields"
                ));
            }
            Some(_) => i += 1,
            None => return Err(format!("serde shim derive: `{name}` has no body")),
        }
    };
    let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    if kind == "struct" {
        Ok(Item::Struct {
            name,
            fields: parse_named_fields(&body_tokens)?,
        })
    } else {
        let variants = split_top_level_commas(&body_tokens)
            .iter()
            .filter(|chunk| !chunk.is_empty())
            .map(|chunk| parse_variant(chunk))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Item::Enum { name, variants })
    }
}

fn parse_variant(chunk: &[TokenTree]) -> Result<Variant, String> {
    let i = skip_attrs(chunk, 0);
    let name = match chunk.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected variant name, found {other:?}"
            ))
        }
    };
    let kind = match chunk.get(i + 1) {
        None => VariantKind::Unit,
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantKind::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let toks: Vec<TokenTree> = g.stream().into_iter().collect();
            VariantKind::Struct(parse_named_fields(&toks)?)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let toks: Vec<TokenTree> = g.stream().into_iter().collect();
            let arity = split_top_level_commas(&toks)
                .iter()
                .filter(|c| !c.is_empty())
                .count();
            VariantKind::Tuple(arity)
        }
        other => {
            return Err(format!(
                "serde shim derive: unexpected token {other:?} after variant `{name}`"
            ))
        }
    };
    Ok(Variant { name, kind })
}

// --- code generation -------------------------------------------------------

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!("__obj.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n")
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut __obj: Vec<(String, ::serde::Value)> = Vec::with_capacity({n});\n\
                 {pushes}\
                 ::serde::Value::Object(__obj)\n\
             }}\n\
         }}\n",
        n = fields.len()
    )
}

fn field_from_value(ty_name: &str, field: &str, source: &str) -> String {
    format!(
        "{field}: ::serde::Deserialize::from_value({source}.get({field:?})\
             .ok_or_else(|| ::serde::Error::missing_field({ty_name:?}, {field:?}))?)?,\n"
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let inits: String = fields
        .iter()
        .map(|f| field_from_value(name, f, "v"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 if !matches!(v, ::serde::Value::Object(_)) {{\n\
                     return Err(::serde::Error::type_mismatch(\"object\", v));\n\
                 }}\n\
                 Ok({name} {{\n{inits}}})\n\
             }}\n\
         }}\n"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => format!(
                    "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),\n"
                ),
                VariantKind::Tuple(1) => format!(
                    "{name}::{vname}(__f0) => ::serde::Value::Object(vec![({vname:?}.to_string(), \
                     ::serde::Serialize::to_value(__f0))]),\n"
                ),
                VariantKind::Tuple(n) => {
                    let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                    let items: String = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b}),"))
                        .collect();
                    format!(
                        "{name}::{vname}({bind}) => ::serde::Value::Object(vec![({vname:?}.to_string(), \
                         ::serde::Value::Array(vec![{items}]))]),\n",
                        bind = binders.join(", ")
                    )
                }
                VariantKind::Struct(fields) => {
                    let bind = fields.join(", ");
                    let items: String = fields
                        .iter()
                        .map(|f| {
                            format!("({f:?}.to_string(), ::serde::Serialize::to_value({f})),")
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {bind} }} => ::serde::Value::Object(vec![({vname:?}.to_string(), \
                         ::serde::Value::Object(vec![{items}]))]),\n"
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
             }}\n\
         }}\n"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("{vn:?} => Ok({name}::{vn}),\n", vn = v.name))
        .collect();
    let data_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_value(__payload)?)),\n"
                )),
                VariantKind::Tuple(n) => {
                    let items: String = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?,"))
                        .collect();
                    Some(format!(
                        "{vname:?} => match __payload {{\n\
                             ::serde::Value::Array(__items) if __items.len() == {n} => \
                                 Ok({name}::{vname}({items})),\n\
                             __other => Err(::serde::Error::type_mismatch(\"tuple array\", __other)),\n\
                         }},\n"
                    ))
                }
                VariantKind::Struct(fields) => {
                    let inits: String = fields
                        .iter()
                        .map(|f| field_from_value(name, f, "__payload"))
                        .collect();
                    Some(format!(
                        "{vname:?} => Ok({name}::{vname} {{\n{inits}}}),\n"
                    ))
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => Err(::serde::Error::custom(format!(\
                             \"unknown {name} variant `{{__other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                         let (__tag, __payload) = &__pairs[0];\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\
                             __other => Err(::serde::Error::custom(format!(\
                                 \"unknown {name} variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(::serde::Error::type_mismatch(\"enum representation\", v)),\n\
                 }}\n\
             }}\n\
         }}\n"
    )
}
